//! `FastLock()`/`FastUnlock()` — the paper's Listing 19, in safe Rust.
//!
//! # Model
//!
//! On hardware, a transaction is an ambient property of the executing
//! thread: `FastLock` runs `xbegin`, `FastUnlock` runs `xend`, and an abort
//! anywhere rolls control back to the outermost `xbegin`, re-executing the
//! user code in between. Safe Rust cannot jump backwards into a caller, so
//! the ambient transaction is reified as an [`HtmScope`] and the
//! re-execution loop lives either in the caller (transformed code style) or
//! in the [`critical_mutex`]/[`critical_read`]/[`critical_write`] helpers.
//!
//! [`OptiLock`] mirrors the paper's two-field struct (`slowPath` +
//! `lkMutex`): one instance serves one lock/unlock pair, memorizes the
//! mutex used at the lock point, and recovers from analyzer mis-pairings
//! (e.g. hand-over-hand traversals, §5.2.3) by aborting on a mutex
//! mismatch at the unlock point and enforcing the slow path on the retry.
//!
//! Nested pairs compose through the shared scope the way nested `xbegin`s
//! compose in TSX: flat subsumption, one commit at the outermost unlock.
//! Two deliberate simplifications relative to running real RTM, both noted
//! in DESIGN.md: a nested `FastLock` inside an active fast-path scope
//! always speculates (no per-nesting perceptron query), and a nested
//! `FastLock` inside a slow-path scope acquires pessimistically.

use std::time::Instant;

use gocc_gosync::procs;
use gocc_htm::{Abort, Elision, LockWord, Tx, TxResult, MUTEX_MISMATCH_CODE};
use gocc_telemetry::trace::{
    self, PERCEPTRON_PENALIZE, PERCEPTRON_PREDICT_HTM, PERCEPTRON_PREDICT_SLOW, PERCEPTRON_REWARD,
};
use gocc_telemetry::{Event, EventOutcome, Span, SpanKind};

use crate::elidable::{ElidableMutex, ElidableRwMutex};
use crate::perceptron::Features;
use crate::runtime::GoccRuntime;
use crate::stats::OptiStats;

/// A reference to an elidable lock plus the acquisition kind.
#[derive(Clone, Copy, Debug)]
pub enum LockRef<'a> {
    /// `m.Lock()` on a `sync.Mutex`.
    Mutex(&'a ElidableMutex),
    /// `m.RLock()` on a `sync.RWMutex`.
    Read(&'a ElidableRwMutex),
    /// `m.Lock()` on a `sync.RWMutex`.
    Write(&'a ElidableRwMutex),
}

/// Identity of a lock acquisition for `lkMutex` matching: the lock's
/// address plus the acquisition kind.
pub(crate) type LockKey = (usize, u8);

impl<'a> LockRef<'a> {
    fn word(&self) -> &'a LockWord {
        match self {
            LockRef::Mutex(m) => m.word(),
            LockRef::Read(rw) | LockRef::Write(rw) => rw.word(),
        }
    }

    fn kind(&self) -> Elision {
        match self {
            LockRef::Mutex(_) | LockRef::Write(_) => Elision::Write,
            LockRef::Read(_) => Elision::Read,
        }
    }

    pub(crate) fn key(&self) -> LockKey {
        match self {
            LockRef::Mutex(m) => (m.id(), 0),
            LockRef::Read(rw) => (rw.id(), 1),
            LockRef::Write(rw) => (rw.id(), 2),
        }
    }

    fn lock_id(&self) -> usize {
        self.key().0
    }

    fn slow_acquire(&self) {
        match self {
            LockRef::Mutex(m) => m.lock_raw(),
            LockRef::Read(rw) => rw.rlock_raw(),
            LockRef::Write(rw) => rw.lock_raw(),
        }
    }

    fn slow_release(&self) {
        match self {
            LockRef::Mutex(m) => m.unlock_raw(),
            LockRef::Read(rw) => rw.runlock_raw(),
            LockRef::Write(rw) => rw.unlock_raw(),
        }
    }

    fn available(&self) -> bool {
        let snapshot = self.word().observe();
        match self.kind() {
            Elision::Read => !LockWord::snapshot_blocks_read(snapshot),
            Elision::Write => !LockWord::snapshot_blocks_write(snapshot),
        }
    }
}

enum ScopeState<'a> {
    Idle,
    Fast { tx: Tx<'a>, depth: u32 },
    Slow { tx: Tx<'a>, depth: u32 },
}

/// The ambient transactional state of one critical-section execution.
///
/// Plays the role the thread's hardware transaction plays on real RTM:
/// `OptiLock`s of nested pairs share it, and an abort discards it wholesale.
pub struct HtmScope<'a> {
    rt: &'a GoccRuntime,
    state: ScopeState<'a>,
}

impl<'a> HtmScope<'a> {
    /// Creates an idle scope bound to a runtime.
    #[must_use]
    pub fn new(rt: &'a GoccRuntime) -> Self {
        HtmScope {
            rt,
            state: ScopeState::Idle,
        }
    }

    /// The runtime this scope executes against.
    #[must_use]
    pub fn runtime(&self) -> &'a GoccRuntime {
        self.rt
    }

    /// Whether a critical section is currently executing.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self.state, ScopeState::Idle)
    }

    /// Whether the active section speculates.
    #[must_use]
    pub fn is_fastpath(&self) -> bool {
        matches!(self.state, ScopeState::Fast { .. })
    }

    /// The transaction context for data access inside the section.
    ///
    /// # Panics
    ///
    /// Panics if no critical section is active (no `FastLock` succeeded).
    pub fn tx(&mut self) -> &mut Tx<'a> {
        match &mut self.state {
            ScopeState::Fast { tx, .. } | ScopeState::Slow { tx, .. } => tx,
            ScopeState::Idle => panic!("optilock: data access outside a critical section"),
        }
    }

    /// Discards an aborted section so the caller can re-execute it.
    ///
    /// This is the equivalent of the hardware rollback landing back at the
    /// outermost `xbegin`: buffered writes are dropped and the scope
    /// becomes idle. Pessimistically held locks are *not* released — the
    /// slow path cannot abort, so an active slow scope is a caller bug.
    ///
    /// # Panics
    ///
    /// Panics if the active section runs on the slow path.
    pub fn abort_restart(&mut self) {
        match std::mem::replace(&mut self.state, ScopeState::Idle) {
            ScopeState::Idle => {}
            ScopeState::Fast { tx, .. } => {
                if tx.inline_overflowed() {
                    if let Some(t) = self.rt.telemetry() {
                        t.note_inline_overflow();
                    }
                }
                tx.rollback();
            }
            ScopeState::Slow { .. } => {
                panic!("optilock: abort_restart on a slow-path section")
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    Htm,
    SlowPerceptron,
    SlowBypass,
    SlowExhausted,
    /// The livelock watchdog tripped: this section aborted
    /// `watchdog_abort_bound` times and is hard-forced onto the lock.
    SlowWatchdog,
}

/// The paper's `OptiLock`: per lock/unlock pair state.
///
/// Mirrors the two published fields — `slowPath` (did this pair fall back?)
/// and `lkMutex` (the mutex memorized at the lock point for mismatch
/// detection) — plus the retry budget that hardware keeps in registers
/// across rollbacks, and the perceptron features of this call site.
pub struct OptiLock {
    site: usize,
    slow_path: bool,
    lk: Option<LockKey>,
    attempts_left: u32,
    attempted_htm: bool,
    /// Aborts observed by the *current* section across all its
    /// re-executions — the monotone counter the livelock watchdog trips
    /// on. Unlike `attempts_left` (which callers can configure arbitrarily
    /// large), this only resets when the section completes.
    section_aborts: u32,
    decision: Option<Decision>,
    /// Perceptron indices for the current section, hashed once at the
    /// first prediction and reused by every later predict/train touch —
    /// the decision itself then costs exactly two weight-table reads.
    features: Option<Features>,
    /// Latest predictor verdict, traced into the telemetry event ring.
    predicted_fast: bool,
    /// When the section's first execution began; set only with telemetry
    /// on, so the disabled hot path never reads the clock.
    section_start: Option<Instant>,
    /// Flight recorder: when the in-flight HTM attempt began (trace
    /// nanoseconds; 0 = no attempt being traced). Set only for sampled
    /// requests, so the untraced hot path never reads the clock.
    trace_attempt_start: u64,
}

impl OptiLock {
    /// Creates the state object for one lock/unlock pair.
    ///
    /// `site` is the calling-context feature; use [`crate::call_site!`].
    #[must_use]
    pub fn new(site: usize) -> Self {
        OptiLock {
            site,
            slow_path: false,
            lk: None,
            attempts_left: u32::MAX,
            attempted_htm: false,
            section_aborts: 0,
            decision: None,
            features: None,
            predicted_fast: false,
            section_start: None,
            trace_attempt_start: 0,
        }
    }

    /// Flight recorder: closes the in-flight HTM attempt span. `outcome`
    /// is 0 for a commit, `1 + cause_index` for an abort; the `b` payload
    /// carries the TL2 version-clock snapshot the attempt resolved at.
    #[inline]
    fn trace_attempt_outcome(&mut self, rt: &GoccRuntime, outcome: u64) {
        let id = trace::current();
        if id == 0 {
            return;
        }
        let now = trace::now_ns();
        let start = if self.trace_attempt_start == 0 {
            now
        } else {
            self.trace_attempt_start
        };
        self.trace_attempt_start = 0;
        rt.tracer().push(Span {
            trace_id: id,
            kind: SpanKind::HtmAttempt,
            start_ns: start,
            dur_ns: now.saturating_sub(start),
            a: outcome,
            b: rt.htm().clock_now(),
        });
    }

    /// Flight recorder: marks a perceptron touch (predict or train) as an
    /// instant span on the current trace.
    #[inline]
    fn trace_perceptron(rt: &GoccRuntime, site: usize, action: u64) {
        let id = trace::current();
        if id == 0 {
            return;
        }
        rt.tracer().push(Span {
            trace_id: id,
            kind: SpanKind::Perceptron,
            start_ns: trace::now_ns(),
            dur_ns: 0,
            a: action,
            b: site as u64,
        });
    }

    /// The perceptron indices for this section, computed on first use.
    fn section_features(&mut self, rt: &GoccRuntime, lock: LockRef<'_>) -> Features {
        *self
            .features
            .get_or_insert_with(|| rt.perceptron().features(lock.lock_id(), self.site))
    }

    /// Whether the last `FastLock` fell back to the real lock.
    #[must_use]
    pub fn on_slow_path(&self) -> bool {
        self.slow_path
    }

    /// The lock point: Listing 19's `FastLock`.
    ///
    /// Decides HTM vs. lock (perceptron, single-thread bypass, retry
    /// budget), spin-waits for the lock to look free, then either starts /
    /// joins a speculation or acquires the lock pessimistically.
    ///
    /// At the outermost level this never fails. Inside an active fast-path
    /// scope it may return an abort (e.g. nesting depth, inner lock held);
    /// the scope is then rolled back and the caller must re-execute the
    /// section from its outermost `fast_lock`.
    pub fn fast_lock<'a>(&mut self, scope: &mut HtmScope<'a>, lock: LockRef<'a>) -> TxResult<()> {
        // A lock point (re)starts this pair's section: drop any feature
        // indices cached for a previous lock so training cannot touch a
        // stale cell when the pair is reused with a different mutex.
        self.features = None;
        let nested_outcome = match &mut scope.state {
            ScopeState::Fast { tx, depth } => {
                // Nested pair inside a speculation: flat nesting.
                let result = tx
                    .enter_nested()
                    .and_then(|()| tx.subscribe_lock(lock.word(), lock.kind()));
                if result.is_ok() {
                    *depth += 1;
                }
                Some(result)
            }
            ScopeState::Slow { depth, .. } => {
                // Nested pair inside a slow section: acquire pessimistically.
                lock.slow_acquire();
                *depth += 1;
                self.slow_path = true;
                self.lk = Some(lock.key());
                Some(Ok(()))
            }
            ScopeState::Idle => None,
        };
        match nested_outcome {
            Some(Ok(())) => {
                if scope.is_fastpath() {
                    self.slow_path = false;
                    self.lk = Some(lock.key());
                }
                Ok(())
            }
            Some(Err(abort)) => {
                self.note_abort(scope.rt, lock, &abort);
                scope.abort_restart();
                Err(abort)
            }
            None => {
                self.begin_section(scope, lock);
                Ok(())
            }
        }
    }

    fn begin_section<'a>(&mut self, scope: &mut HtmScope<'a>, lock: LockRef<'a>) {
        let rt = scope.rt;
        if self.decision.is_none() {
            // First execution of this section by this OptiLock: take the
            // retry budget and ask the predictor.
            self.attempts_left = rt.policy().max_attempts;
            self.attempted_htm = false;
        }
        if self.section_start.is_none() && rt.telemetry().is_some() {
            // First execution only: retries and fallbacks are part of the
            // section's total latency, attributed to the completing path.
            self.section_start = Some(Instant::now());
        }
        let decision = self.decide(rt, lock);
        self.decision = Some(decision);
        self.predicted_fast = decision == Decision::Htm;
        if decision == Decision::Htm {
            // Spin with pause until the lock looks free (Listing 19).
            let mut spins = rt.policy().lock_wait_spins;
            while !lock.available() && spins > 0 {
                if spins.is_multiple_of(32) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                spins -= 1;
            }
            OptiStats::add(&rt.stats().htm_attempts);
            self.attempted_htm = true;
            if trace::current() != 0 {
                self.trace_attempt_start = trace::now_ns();
            }
            let mut tx = Tx::fast(rt.htm());
            tx.set_fault_site(self.site);
            if let Some(t) = rt.telemetry() {
                t.sites.record_start(self.site, lock.lock_id());
                if tx.ctx_reused() {
                    t.note_ctx_reused();
                }
            }
            match tx.subscribe_lock(lock.word(), lock.kind()) {
                Ok(()) => {
                    scope.state = ScopeState::Fast { tx, depth: 1 };
                    self.slow_path = false;
                    self.lk = Some(lock.key());
                    return;
                }
                Err(abort) => {
                    if tx.inline_overflowed() {
                        if let Some(t) = rt.telemetry() {
                            t.note_inline_overflow();
                        }
                    }
                    tx.rollback();
                    self.note_abort(rt, lock, &abort);
                    // Immediately re-decide; exhausted budgets fall through
                    // to the slow path below via `decide`.
                    if self.decide(rt, lock) == Decision::Htm {
                        return self.begin_section(scope, lock);
                    }
                }
            }
        }
        // Slow path: the original lock.
        lock.slow_acquire();
        scope.state = ScopeState::Slow {
            tx: Tx::direct(rt.htm()),
            depth: 1,
        };
        self.slow_path = true;
        self.lk = Some(lock.key());
    }

    fn decide(&mut self, rt: &GoccRuntime, lock: LockRef<'_>) -> Decision {
        if self.section_aborts >= rt.policy().watchdog_abort_bound {
            // Bounded-retry guarantee: whatever the configured budget,
            // this section has re-executed enough. Force the lock path —
            // it cannot abort, so the section completes on this execution.
            OptiStats::add(&rt.stats().watchdog_forced);
            if let Some(t) = rt.telemetry() {
                t.note_watchdog_forced();
            }
            return Decision::SlowWatchdog;
        }
        if self.attempts_left == 0 {
            return Decision::SlowExhausted;
        }
        if procs() == 1 {
            // §5.4.2: never speculate in a single-OS-thread process.
            OptiStats::add(&rt.stats().single_thread_bypass);
            return Decision::SlowBypass;
        }
        if !rt.perceptron_enabled() {
            return Decision::Htm;
        }
        let features = self.section_features(rt, lock);
        if rt.perceptron().predict(features) {
            OptiStats::add(&rt.stats().perceptron_htm);
            Self::trace_perceptron(rt, self.site, PERCEPTRON_PREDICT_HTM);
            Decision::Htm
        } else {
            OptiStats::add(&rt.stats().perceptron_slow);
            Self::trace_perceptron(rt, self.site, PERCEPTRON_PREDICT_SLOW);
            Decision::SlowPerceptron
        }
    }

    fn note_abort(&mut self, rt: &GoccRuntime, lock: LockRef<'_>, abort: &Abort) {
        self.attempts_left = self.attempts_left.saturating_sub(1);
        self.section_aborts = self.section_aborts.saturating_add(1);
        if !abort.cause.is_transient() {
            // Deterministic causes exhaust the budget immediately.
            self.attempts_left = 0;
        }
        self.trace_attempt_outcome(rt, 1 + abort.cause.index() as u64);
        if let Some(t) = rt.telemetry() {
            let cause = abort.cause.index();
            t.sites.record_abort(self.site, lock.lock_id(), cause);
            t.events.push(Event {
                site: self.site,
                lock: lock.lock_id(),
                predicted_fast: self.predicted_fast,
                outcome: EventOutcome::Abort(cause as u8),
            });
        }
    }

    /// The unlock point: Listing 19's `FastUnlock`.
    ///
    /// On the slow path this releases the lock *passed in* (exactly like
    /// the published pseudo-code). On the fast path it verifies the mutex
    /// against the one memorized by `fast_lock`; a mismatch — the signature
    /// of an analyzer mis-pairing such as hand-over-hand locking — aborts
    /// the speculation and enforces the slow path for the re-execution.
    ///
    /// Returns `Err` when the section must be re-executed by the caller
    /// (mismatch abort or commit-time conflict).
    pub fn fast_unlock<'a>(&mut self, scope: &mut HtmScope<'a>, lock: LockRef<'a>) -> TxResult<()> {
        let rt = scope.rt;
        match std::mem::replace(&mut scope.state, ScopeState::Idle) {
            ScopeState::Idle => panic!("optilock: FastUnlock without FastLock"),
            ScopeState::Slow { tx, depth } => {
                lock.slow_release();
                if depth > 1 {
                    scope.state = ScopeState::Slow {
                        tx,
                        depth: depth - 1,
                    };
                } else {
                    drop(tx);
                    self.complete_section(rt, lock, false);
                }
                Ok(())
            }
            ScopeState::Fast { mut tx, depth } => {
                if self.lk != Some(lock.key()) {
                    // Mutex mismatch: roll everything back, enforce slow.
                    OptiStats::add(&rt.stats().mismatch_recoveries);
                    let abort = tx.explicit_abort(MUTEX_MISMATCH_CODE);
                    tx.rollback();
                    self.note_abort(rt, lock, &abort);
                    return Err(abort);
                }
                if depth > 1 {
                    tx.exit_nested();
                    // Inner pair finished speculatively; train optimistically
                    // like the hardware version, whose nested XEND also runs
                    // the weight update.
                    self.train_fast_completion(rt, lock);
                    scope.state = ScopeState::Fast {
                        tx,
                        depth: depth - 1,
                    };
                    return Ok(());
                }
                match tx.commit() {
                    Ok(()) => {
                        OptiStats::add(&rt.stats().fast_commits);
                        self.trace_attempt_outcome(rt, 0);
                        if let Some(t) = rt.telemetry() {
                            t.sites.record_commit(self.site, lock.lock_id());
                            match self.section_start.take() {
                                Some(start) => {
                                    t.fast_latency.record(start.elapsed().as_nanos() as u64);
                                }
                                None => t.note_dropped(),
                            }
                            t.events.push(Event {
                                site: self.site,
                                lock: lock.lock_id(),
                                predicted_fast: self.predicted_fast,
                                outcome: EventOutcome::FastCommit,
                            });
                        }
                        self.train_fast_completion(rt, lock);
                        self.finish();
                        Ok(())
                    }
                    Err(abort) => {
                        self.note_abort(rt, lock, &abort);
                        Err(abort)
                    }
                }
            }
        }
    }

    fn train_fast_completion(&mut self, rt: &GoccRuntime, lock: LockRef<'_>) {
        if rt.perceptron_enabled() {
            let features = self.section_features(rt, lock);
            rt.perceptron().reward(features);
            Self::trace_perceptron(rt, self.site, PERCEPTRON_REWARD);
        }
    }

    fn complete_section(&mut self, rt: &GoccRuntime, lock: LockRef<'_>, _on_fast: bool) {
        OptiStats::add(&rt.stats().slow_sections);
        if let Some(t) = rt.telemetry() {
            t.sites.record_slow(self.site, lock.lock_id());
            match self.section_start.take() {
                Some(start) => t.slow_latency.record(start.elapsed().as_nanos() as u64),
                None => t.note_dropped(),
            }
            t.events.push(Event {
                site: self.site,
                lock: lock.lock_id(),
                predicted_fast: self.predicted_fast,
                outcome: EventOutcome::SlowSection,
            });
        }
        if self.attempted_htm && rt.perceptron_enabled() {
            // HTM was tried but the section finished on the lock: penalize.
            let features = self.section_features(rt, lock);
            rt.perceptron().penalize(features);
            Self::trace_perceptron(rt, self.site, PERCEPTRON_PENALIZE);
        }
        self.finish();
    }

    fn finish(&mut self) {
        self.slow_path = false;
        self.lk = None;
        self.decision = None;
        self.features = None;
        self.attempted_htm = false;
        self.attempts_left = u32::MAX;
        self.section_aborts = 0;
        self.section_start = None;
        self.trace_attempt_start = 0;
    }
}

/// Runs `body` as a critical section eliding `lock`, re-executing on
/// aborts exactly as hardware re-executes after rolling back to `xbegin`.
///
/// The body receives the ambient [`Tx`]; it must route every access to the
/// protected data through it and propagate aborts with `?`.
pub fn critical<'a, R>(
    rt: &'a GoccRuntime,
    site: usize,
    lock: LockRef<'a>,
    mut body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
) -> R {
    let mut ol = OptiLock::new(site);
    loop {
        let mut scope = HtmScope::new(rt);
        if ol.fast_lock(&mut scope, lock).is_err() {
            continue;
        }
        match body(scope.tx()) {
            Ok(value) => match ol.fast_unlock(&mut scope, lock) {
                Ok(()) => return value,
                Err(_) => continue,
            },
            Err(abort) => {
                debug_assert!(
                    scope.is_fastpath(),
                    "critical-section bodies must not fail in direct mode (cause: {})",
                    abort.cause
                );
                ol.note_abort(rt, lock, &abort);
                scope.abort_restart();
            }
        }
    }
}

/// [`critical`] specialized to a `sync.Mutex`.
pub fn critical_mutex<'a, R>(
    rt: &'a GoccRuntime,
    site: usize,
    m: &'a ElidableMutex,
    body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
) -> R {
    critical(rt, site, LockRef::Mutex(m), body)
}

/// [`critical`] specialized to a `sync.RWMutex` read acquisition.
pub fn critical_read<'a, R>(
    rt: &'a GoccRuntime,
    site: usize,
    rw: &'a ElidableRwMutex,
    body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
) -> R {
    critical(rt, site, LockRef::Read(rw), body)
}

/// [`critical`] specialized to a `sync.RWMutex` write acquisition.
pub fn critical_write<'a, R>(
    rt: &'a GoccRuntime,
    site: usize,
    rw: &'a ElidableRwMutex,
    body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
) -> R {
    critical(rt, site, LockRef::Write(rw), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::GoccConfig;
    use gocc_htm::TxVar;

    fn rt() -> GoccRuntime {
        // Force multi-proc so the single-thread bypass does not mask HTM.
        gocc_gosync::set_procs(8);
        GoccRuntime::new_default()
    }

    #[test]
    fn critical_mutex_increments_on_fast_path() {
        let rt = rt();
        let m = ElidableMutex::new();
        let v = TxVar::new(0u64);
        for _ in 0..10 {
            critical_mutex(&rt, crate::call_site!(), &m, |tx| {
                let cur = tx.read(&v)?;
                tx.write(&v, cur + 1)
            });
        }
        let snap = rt.stats().snapshot();
        assert_eq!(snap.fast_commits, 10, "uncontended sections must elide");
        assert_eq!(snap.slow_sections, 0);
        let mut check = Tx::direct(rt.htm());
        assert_eq!(check.read(&v).unwrap(), 10);
    }

    #[test]
    fn held_lock_forces_slow_path_eventually() {
        let rt = rt();
        let m = ElidableMutex::new();
        let v = TxVar::new(0u64);
        // Hold the lock pessimistically from this thread?  Cannot — the
        // slow path would deadlock. Instead verify interop: a pessimistic
        // owner in another thread forces either waiting or fallback, and
        // the count stays exact.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        critical_mutex(&rt, crate::call_site!(), &m, |tx| {
                            let cur = tx.read(&v)?;
                            tx.write(&v, cur + 1)
                        });
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..50 {
                    m.lock_raw();
                    std::hint::spin_loop();
                    m.unlock_raw();
                }
            });
        });
        let mut check = Tx::direct(rt.htm());
        assert_eq!(check.read(&v).unwrap(), 400);
    }

    #[test]
    fn unfriendly_section_falls_back_and_perceptron_learns() {
        let rt = rt();
        let m = ElidableMutex::new();
        let site = crate::call_site!();
        let mut outputs = 0u64;
        for _ in 0..50 {
            critical_mutex(&rt, site, &m, |tx| {
                tx.unfriendly()?; // models an IO operation in the section
                outputs += 1;
                Ok(())
            });
        }
        assert_eq!(
            outputs, 50,
            "every section must complete exactly once on the slow path"
        );
        let snap = rt.stats().snapshot();
        assert_eq!(snap.slow_sections, 50);
        // The perceptron must stop predicting HTM after a few penalties:
        // far fewer than 50 HTM attempts happened.
        assert!(
            snap.htm_attempts < 20,
            "perceptron failed to learn: {} attempts",
            snap.htm_attempts
        );
        assert!(snap.perceptron_slow > 0);
    }

    #[test]
    fn np_mode_always_attempts_htm() {
        let rt = GoccRuntime::new(GoccConfig::no_perceptron());
        gocc_gosync::set_procs(8);
        let m = ElidableMutex::new();
        let site = crate::call_site!();
        for _ in 0..20 {
            critical_mutex(&rt, site, &m, |tx| tx.unfriendly());
        }
        let snap = rt.stats().snapshot();
        assert_eq!(snap.slow_sections, 20);
        assert_eq!(snap.htm_attempts, 20, "NP mode must attempt HTM every time");
    }

    #[test]
    fn single_thread_bypass() {
        let prev = gocc_gosync::set_procs(1);
        let rt = GoccRuntime::new_default();
        let m = ElidableMutex::new();
        critical_mutex(&rt, crate::call_site!(), &m, |_tx| Ok(()));
        let snap = rt.stats().snapshot();
        gocc_gosync::set_procs(if prev == 0 { 8 } else { prev });
        assert_eq!(snap.htm_attempts, 0);
        assert_eq!(snap.single_thread_bypass, 1);
        assert_eq!(snap.slow_sections, 1);
    }

    #[test]
    fn perfectly_nested_pairs_commit_once() {
        let rt = rt();
        let a = ElidableMutex::new();
        let b = ElidableMutex::new();
        let v = TxVar::new(0u64);
        let mut scope = HtmScope::new(&rt);
        let mut ol1 = OptiLock::new(crate::call_site!());
        let mut ol2 = OptiLock::new(crate::call_site!());
        // Listing 17: a.Lock(); b.Lock(); b.Unlock(); a.Unlock().
        ol1.fast_lock(&mut scope, LockRef::Mutex(&a)).unwrap();
        ol2.fast_lock(&mut scope, LockRef::Mutex(&b)).unwrap();
        let cur = scope.tx().read(&v).unwrap();
        scope.tx().write(&v, cur + 1).unwrap();
        ol2.fast_unlock(&mut scope, LockRef::Mutex(&b)).unwrap();
        ol1.fast_unlock(&mut scope, LockRef::Mutex(&a)).unwrap();
        assert!(!scope.is_active());
        let snap = rt.htm().stats().snapshot();
        assert_eq!(snap.commits, 1, "flat nesting commits exactly once");
        let mut check = Tx::direct(rt.htm());
        assert_eq!(check.read(&v).unwrap(), 1);
    }

    #[test]
    fn imperfectly_nested_pairs_commit_when_both_transformed() {
        // Listing 18 with both pairs transformed: each OptiLock's lkMutex
        // matches its own pair, so no mismatch fires.
        let rt = rt();
        let a = ElidableMutex::new();
        let b = ElidableMutex::new();
        let mut scope = HtmScope::new(&rt);
        let mut ol1 = OptiLock::new(crate::call_site!());
        let mut ol2 = OptiLock::new(crate::call_site!());
        ol1.fast_lock(&mut scope, LockRef::Mutex(&a)).unwrap();
        ol2.fast_lock(&mut scope, LockRef::Mutex(&b)).unwrap();
        ol1.fast_unlock(&mut scope, LockRef::Mutex(&a)).unwrap();
        ol2.fast_unlock(&mut scope, LockRef::Mutex(&b)).unwrap();
        assert!(!scope.is_active());
        assert_eq!(rt.stats().snapshot().mismatch_recoveries, 0);
    }

    #[test]
    fn hand_over_hand_mismatch_recovers_to_slow_path() {
        // Listing 6: the analyzer paired b.Lock() with a.Unlock(). The
        // runtime must detect the mismatch, abort, and redo on the slow
        // path, preserving correctness.
        let rt = rt();
        let a = ElidableMutex::new();
        let b = ElidableMutex::new();
        let v = TxVar::new(0u64);
        let mut ol = OptiLock::new(crate::call_site!());
        // Outer a.Lock() was left untransformed.
        a.lock_raw();
        loop {
            let mut scope = HtmScope::new(&rt);
            // Transformed inner pair: FastLock(b) ... FastUnlock(a).
            if ol.fast_lock(&mut scope, LockRef::Mutex(&b)).is_err() {
                continue;
            }
            let write_ok = (|| {
                let cur = scope.tx().read(&v)?;
                scope.tx().write(&v, cur + 1)
            })();
            if write_ok.is_err() {
                scope.abort_restart();
                continue;
            }
            match ol.fast_unlock(&mut scope, LockRef::Mutex(&a)) {
                Ok(()) => break,
                Err(abort) => {
                    assert_eq!(
                        abort.cause,
                        gocc_htm::AbortCause::Explicit(MUTEX_MISMATCH_CODE)
                    );
                    if scope.is_active() {
                        scope.abort_restart();
                    }
                    continue;
                }
            }
        }
        // The slow-path retry released `a` (as the paper's slowpath
        // FastUnlock(l) releases the passed-in lock) and acquired `b`,
        // which the outer untransformed b.Unlock() now releases.
        b.unlock_raw();
        assert!(!a.is_locked());
        assert!(!b.is_locked());
        let snap = rt.stats().snapshot();
        assert_eq!(snap.mismatch_recoveries, 1);
        assert_eq!(snap.slow_sections, 1);
        let mut check = Tx::direct(rt.htm());
        assert_eq!(
            check.read(&v).unwrap(),
            1,
            "the aborted speculation must not have published its write"
        );
    }

    #[test]
    fn rw_read_elision_tolerates_slow_readers() {
        let rt = rt();
        let rw = ElidableRwMutex::new();
        let v = TxVar::new(7u64);
        // A pessimistic reader is inside the lock.
        rw.rlock_raw();
        let got = critical_read(&rt, crate::call_site!(), &rw, |tx| tx.read(&v));
        rw.runlock_raw();
        assert_eq!(got, 7);
        assert_eq!(
            rt.stats().snapshot().fast_commits,
            1,
            "read elision must not abort on slow readers"
        );
    }

    #[test]
    fn rw_write_elision_aborts_on_slow_readers() {
        let rt = rt();
        let rw = ElidableRwMutex::new();
        let v = TxVar::new(0u64);
        rw.rlock_raw();
        // Release the read lock from another thread after a delay so the
        // slow path can make progress.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                rw.runlock_raw();
            });
            critical_write(&rt, crate::call_site!(), &rw, |tx| tx.write(&v, 1));
        });
        let mut check = Tx::direct(rt.htm());
        assert_eq!(check.read(&v).unwrap(), 1);
        let snap = rt.stats().snapshot();
        assert_eq!(
            snap.fast_commits, 0,
            "write elision must not speculate past an active slow reader"
        );
        assert_eq!(snap.slow_sections, 1);
    }

    #[test]
    fn concurrent_disjoint_sections_scale_without_aborts() {
        let rt = rt();
        let m = ElidableMutex::new();
        // Each thread updates its own padded cell: conflict-free under HTM.
        let cells: Vec<gocc_htm::Padded<TxVar<u64>>> =
            (0..4).map(|_| gocc_htm::Padded(TxVar::new(0))).collect();
        std::thread::scope(|s| {
            for cell in &cells {
                s.spawn(|| {
                    for _ in 0..200 {
                        critical_mutex(&rt, crate::call_site!(), &m, |tx| {
                            let cur = tx.read(&cell.0)?;
                            tx.write(&cell.0, cur + 1)
                        });
                    }
                });
            }
        });
        for cell in &cells {
            let mut check = Tx::direct(rt.htm());
            assert_eq!(check.read(&cell.0).unwrap(), 200);
        }
        let snap = rt.stats().snapshot();
        assert_eq!(snap.fast_commits + snap.slow_sections, 800);
        assert!(
            snap.fast_commits > 700,
            "disjoint sections should mostly elide, got {} fast",
            snap.fast_commits
        );
    }

    #[test]
    fn conflicting_sections_remain_correct() {
        let rt = rt();
        let m = ElidableMutex::new();
        let v = TxVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        critical_mutex(&rt, crate::call_site!(), &m, |tx| {
                            let cur = tx.read(&v)?;
                            tx.write(&v, cur + 1)
                        });
                    }
                });
            }
        });
        let mut check = Tx::direct(rt.htm());
        assert_eq!(check.read(&v).unwrap(), 1000, "lost updates under elision");
    }

    #[test]
    fn sampled_sections_record_attempt_and_perceptron_spans() {
        let rt = rt();
        rt.tracer().configure(1, 7);
        let id = rt.tracer().begin_request();
        assert_ne!(id, 0, "sample-every-request must sample");
        trace::set_current(id);
        let m = ElidableMutex::new();
        let v = TxVar::new(0u64);
        for _ in 0..5 {
            critical_mutex(&rt, crate::call_site!(), &m, |tx| {
                let cur = tx.read(&v)?;
                tx.write(&v, cur + 1)
            });
        }
        trace::clear_current();
        let spans = rt.tracer().drain();
        rt.tracer().configure(0, 0);
        let attempts: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::HtmAttempt)
            .collect();
        assert_eq!(attempts.len(), 5, "one attempt span per committed section");
        assert!(
            attempts.iter().all(|s| s.a == 0),
            "uncontended attempts commit"
        );
        assert!(spans.iter().all(|s| s.trace_id == id));
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::Perceptron),
            "predict/train activity must be traced"
        );
    }

    #[test]
    fn traced_aborts_name_their_cause() {
        let rt = rt();
        rt.tracer().configure(1, 11);
        let id = rt.tracer().begin_request();
        trace::set_current(id);
        let m = ElidableMutex::new();
        let site = crate::call_site!();
        critical_mutex(&rt, site, &m, |tx| tx.unfriendly());
        trace::clear_current();
        let spans = rt.tracer().drain();
        rt.tracer().configure(0, 0);
        let aborted: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::HtmAttempt && s.a != 0)
            .collect();
        assert!(!aborted.is_empty(), "the unfriendly abort must be traced");
        assert_eq!(aborted[0].detail(), Some("unfriendly"));
    }

    #[test]
    #[should_panic(expected = "FastUnlock without FastLock")]
    fn unlock_without_lock_panics() {
        let rt = rt();
        let m = ElidableMutex::new();
        let mut scope = HtmScope::new(&rt);
        let mut ol = OptiLock::new(crate::call_site!());
        let _ = ol.fast_unlock(&mut scope, LockRef::Mutex(&m));
    }
}
