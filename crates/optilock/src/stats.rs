//! `optiLib`-level statistics (decisions, paths taken, recoveries).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing `optiLib` decisions and outcomes.
#[derive(Debug, Default)]
pub struct OptiStats {
    pub(crate) htm_attempts: AtomicU64,
    pub(crate) fast_commits: AtomicU64,
    pub(crate) slow_sections: AtomicU64,
    pub(crate) perceptron_htm: AtomicU64,
    pub(crate) perceptron_slow: AtomicU64,
    pub(crate) single_thread_bypass: AtomicU64,
    pub(crate) mismatch_recoveries: AtomicU64,
    pub(crate) watchdog_forced: AtomicU64,
}

/// A point-in-time copy of [`OptiStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptiStatsSnapshot {
    /// Transactions started by `FastLock`.
    pub htm_attempts: u64,
    /// Critical sections completed on the fast path.
    pub fast_commits: u64,
    /// Critical sections completed on the slow path (any reason).
    pub slow_sections: u64,
    /// Perceptron decisions in favor of HTM.
    pub perceptron_htm: u64,
    /// Perceptron decisions in favor of the lock.
    pub perceptron_slow: u64,
    /// Slow-path decisions due to the single-OS-thread bypass (§5.4.2).
    pub single_thread_bypass: u64,
    /// Mis-paired mutex recoveries (Appendix C hand-over-hand handling).
    pub mismatch_recoveries: u64,
    /// Sections the livelock watchdog hard-forced onto the lock path
    /// after `RetryPolicy::watchdog_abort_bound` aborts.
    pub watchdog_forced: u64,
}

impl OptiStats {
    pub(crate) fn add(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    #[must_use]
    pub fn snapshot(&self) -> OptiStatsSnapshot {
        OptiStatsSnapshot {
            htm_attempts: self.htm_attempts.load(Ordering::Relaxed),
            fast_commits: self.fast_commits.load(Ordering::Relaxed),
            slow_sections: self.slow_sections.load(Ordering::Relaxed),
            perceptron_htm: self.perceptron_htm.load(Ordering::Relaxed),
            perceptron_slow: self.perceptron_slow.load(Ordering::Relaxed),
            single_thread_bypass: self.single_thread_bypass.load(Ordering::Relaxed),
            mismatch_recoveries: self.mismatch_recoveries.load(Ordering::Relaxed),
            watchdog_forced: self.watchdog_forced.load(Ordering::Relaxed),
        }
    }
}

impl OptiStatsSnapshot {
    /// Fraction of critical sections that completed on the fast path.
    ///
    /// Empty snapshots return 1.0 (vacuous success), matching
    /// `StatsSnapshot::commit_ratio` in `gocc-htm`: both ratios answer
    /// "did anything go wrong?", and with zero sections nothing did.
    /// Consumers that need to distinguish "perfect" from "idle" should
    /// check `fast_commits + slow_sections` directly.
    #[must_use]
    pub fn fast_ratio(&self) -> f64 {
        let total = self.fast_commits + self.slow_sections;
        if total == 0 {
            return 1.0;
        }
        self.fast_commits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = OptiStats::default();
        OptiStats::add(&s.fast_commits);
        OptiStats::add(&s.slow_sections);
        OptiStats::add(&s.mismatch_recoveries);
        let snap = s.snapshot();
        assert_eq!(snap.fast_commits, 1);
        assert_eq!(snap.slow_sections, 1);
        assert_eq!(snap.mismatch_recoveries, 1);
        assert!((snap.fast_ratio() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_fast_ratio_is_one() {
        // Same convention as StatsSnapshot::commit_ratio: no sections
        // means nothing failed, so the ratio is vacuously perfect.
        let snap = OptiStats::default().snapshot();
        assert_eq!(snap.fast_ratio(), 1.0);
    }
}
