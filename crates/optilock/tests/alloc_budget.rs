//! Allocation budget for the steady-state hot path.
//!
//! The whole point of the reusable `TxContext` arena (DESIGN.md §10) is
//! that a `FastLock`→reads/writes→`FastUnlock` cycle performs **zero**
//! heap allocations once a thread is warm. This test pins that property
//! with a counting `#[global_allocator]`; it lives in its own
//! integration-test binary so the allocator swap cannot pollute any other
//! test's measurements.
//!
//! The counter is a per-thread cell: other test threads in this binary
//! (or the runtime's own background machinery, if any ever appears) do
//! not perturb the thread under measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use gocc_htm::TxVar;
use gocc_optilock::{call_site, critical_mutex, ElidableMutex, GoccRuntime};

struct CountingAllocator;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only adds bookkeeping.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the allocator can be called while this thread's TLS is
        // being torn down, where `with` would abort the process.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Runs `iters` sections and returns how many heap allocations this
/// thread performed across them.
fn allocs_over<F: FnMut()>(iters: u64, mut section: F) -> u64 {
    let before = allocations_on_this_thread();
    for _ in 0..iters {
        section();
    }
    allocations_on_this_thread() - before
}

#[test]
fn steady_state_fast_sections_do_not_allocate() {
    let prev = gocc_gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let site = call_site!();
    let run = || {
        critical_mutex(&rt, site, &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        })
    };
    // Warmup: the first section on this thread allocates its context.
    for _ in 0..64 {
        run();
    }
    let allocs = allocs_over(10_000, run);
    gocc_gosync::set_procs(prev);
    assert_eq!(
        allocs, 0,
        "speculative sections must be allocation-free after warmup"
    );
    // Sanity: the sections actually ran on the fast path and committed.
    let snap = rt.stats().snapshot();
    assert!(snap.fast_commits >= 10_000, "not elided: {snap:?}");
    let htm = rt.htm().stats().snapshot();
    assert!(htm.ctx_reused >= 10_000, "arena not reused: {htm:?}");
    assert!(htm.ctx_fresh <= 2, "steady state kept allocating: {htm:?}");
}

#[test]
fn steady_state_direct_sections_do_not_allocate() {
    // procs = 1 engages the single-OS-thread bypass: every section takes
    // the real lock and runs in direct mode, which must be equally free
    // of allocations.
    let prev = gocc_gosync::set_procs(1);
    let rt = GoccRuntime::new_default();
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let site = call_site!();
    let run = || {
        critical_mutex(&rt, site, &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        })
    };
    for _ in 0..64 {
        run();
    }
    let allocs = allocs_over(10_000, run);
    gocc_gosync::set_procs(prev);
    assert_eq!(
        allocs, 0,
        "slow-path sections must be allocation-free after warmup"
    );
    let snap = rt.stats().snapshot();
    assert!(snap.slow_sections >= 10_000, "bypass not engaged: {snap:?}");
    assert_eq!(snap.htm_attempts, 0, "speculated at procs=1: {snap:?}");
}

#[test]
fn fully_traced_sections_do_not_allocate() {
    // The flight recorder rides the same hot path: with every request
    // sampled (N = 1), the sampling decision, the id propagation and the
    // per-attempt span pushes must all stay within the zero-allocation
    // budget — the span ring is fixed-size atomics by construction.
    let prev = gocc_gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    rt.tracer().configure(1, 0xA110_C8);
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let site = call_site!();
    let run = || {
        let id = rt.tracer().begin_request();
        if id != 0 {
            gocc_telemetry::trace::set_current(id);
        }
        critical_mutex(&rt, site, &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        });
        if id != 0 {
            gocc_telemetry::trace::clear_current();
        }
    };
    for _ in 0..64 {
        run();
    }
    let allocs = allocs_over(10_000, run);
    gocc_gosync::set_procs(prev);
    assert_eq!(
        allocs, 0,
        "fully-traced sections must be allocation-free after warmup"
    );
    // Sanity: the recorder actually saw the traffic.
    assert!(
        rt.tracer().pushed() >= 10_000,
        "tracing was not engaged: {} spans",
        rt.tracer().pushed()
    );
    rt.tracer().configure(0, 0);
}

#[test]
fn aborted_sections_do_not_allocate_either() {
    // Conflict-free aborts exercise rollback + context release + retry;
    // the unfriendly abort below forces slow-path completion every time.
    // None of that machinery may allocate in steady state.
    let prev = gocc_gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let m = ElidableMutex::new();
    let site = call_site!();
    let run = || {
        critical_mutex(&rt, site, &m, |tx| {
            tx.unfriendly()?;
            Ok(())
        })
    };
    for _ in 0..64 {
        run();
    }
    let allocs = allocs_over(5_000, run);
    gocc_gosync::set_procs(prev);
    assert_eq!(
        allocs, 0,
        "abort/rollback/fallback must be allocation-free after warmup"
    );
}
