//! Deterministic fault injection driven through the full `optiLib` stack:
//! every retry-policy branch, the livelock watchdog, and end-to-end
//! mutex-mismatch reporting.

use std::sync::Arc;

use gocc_faultplane::{AbortMix, HtmFaultPlan, PairingFaultPlan};
use gocc_htm::{AbortCause, Tx, TxVar, MUTEX_MISMATCH_CODE};
use gocc_optilock::{
    call_site, critical_mutex, ElidableMutex, GoccConfig, GoccRuntime, HtmScope, LockRef, OptiLock,
};
use gocc_telemetry::EventOutcome;

fn np_runtime_with(mix: AbortMix, seed: u64) -> (GoccRuntime, Arc<HtmFaultPlan>) {
    gocc_gosync::set_procs(8);
    let plan = Arc::new(HtmFaultPlan::new(seed, mix));
    let mut cfg = GoccConfig::no_perceptron();
    cfg.htm.fault_plan = Some(Arc::clone(&plan));
    (GoccRuntime::new(cfg), plan)
}

#[test]
fn injected_transient_aborts_degrade_gracefully_under_load() {
    // 30% of attempts abort with an injected Conflict; sections must still
    // all complete with exact counts (retry, then fall back).
    let (rt, plan) = np_runtime_with(
        AbortMix {
            conflict: 0.3,
            ..AbortMix::default()
        },
        11,
    );
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..200 {
                    critical_mutex(&rt, call_site!(), &m, |tx| {
                        let cur = tx.read(&v)?;
                        tx.write(&v, cur + 1)
                    });
                }
            });
        }
    });
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&v).unwrap(), 800, "lost updates under injection");
    assert!(plan.total_injected() > 100, "injection must actually fire");
    let snap = rt.stats().snapshot();
    assert_eq!(snap.fast_commits + snap.slow_sections, 800);
    assert!(snap.slow_sections > 0, "some sections must exhaust retries");
}

#[test]
fn injected_capacity_exhausts_budget_immediately() {
    // Capacity is deterministic: one abort must zero the budget and send
    // the section straight to the lock (no wasted re-attempts).
    let (rt, plan) = np_runtime_with(
        AbortMix {
            capacity: 1.0,
            ..AbortMix::default()
        },
        12,
    );
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    for _ in 0..20 {
        critical_mutex(&rt, call_site!(), &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        });
    }
    let snap = rt.stats().snapshot();
    assert_eq!(snap.slow_sections, 20);
    assert_eq!(snap.fast_commits, 0);
    assert_eq!(
        snap.htm_attempts, 20,
        "exactly one doomed attempt per section: capacity must not be retried"
    );
    assert_eq!(plan.total_injected(), 20);
    assert_eq!(rt.htm().stats().snapshot().aborts_capacity, 20);
}

#[test]
fn injected_lock_held_burns_the_full_retry_budget() {
    // Explicit(LOCK_HELD_CODE) is transient: with injection at rate 1.0
    // each section must retry exactly `max_attempts` times, then fall back.
    let (rt, _plan) = np_runtime_with(
        AbortMix {
            lock_held: 1.0,
            ..AbortMix::default()
        },
        13,
    );
    let max_attempts = rt.policy().max_attempts as u64;
    let m = ElidableMutex::new();
    for _ in 0..10 {
        critical_mutex(&rt, call_site!(), &m, |_tx| Ok(()));
    }
    let snap = rt.stats().snapshot();
    assert_eq!(snap.slow_sections, 10);
    assert_eq!(snap.htm_attempts, 10 * max_attempts);
    assert_eq!(
        snap.watchdog_forced, 0,
        "budget must give up before the watchdog"
    );
}

#[test]
fn injected_spurious_aborts_follow_the_retry_branch() {
    let (rt, plan) = np_runtime_with(
        AbortMix {
            spurious: 0.5,
            ..AbortMix::default()
        },
        14,
    );
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    for _ in 0..100 {
        critical_mutex(&rt, call_site!(), &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        });
    }
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&v).unwrap(), 100);
    assert!(plan.total_injected() > 20);
    assert_eq!(
        rt.htm().stats().snapshot().aborts_retry,
        plan.total_injected(),
        "every injected spurious abort must surface as AbortCause::Retry"
    );
}

#[test]
fn injected_aborts_leave_reused_contexts_clean() {
    // The same thread-local `TxContext` arena serves every attempt on this
    // thread; injected aborts tear attempts down mid-section. No staged
    // write from an aborted attempt may leak into a later one — the final
    // count proves it (a stale write-set entry would publish a stale value
    // or double-apply an increment at some commit).
    let (rt, plan) = np_runtime_with(
        AbortMix {
            conflict: 0.4,
            ..AbortMix::default()
        },
        21,
    );
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    const SECTIONS: u64 = 300;
    for i in 0..SECTIONS {
        critical_mutex(&rt, call_site!(), &m, |tx| {
            let cur = tx.read(&v)?;
            // Also stage a value that each attempt overwrites, so a stale
            // entry from an aborted attempt would be observable.
            tx.write(&v, cur + 1)?;
            assert_eq!(tx.read(&v)?, i + 1, "own staged write must win");
            Ok(())
        });
    }
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&v).unwrap(), SECTIONS, "stale context state");
    assert!(plan.total_injected() > 50, "injection must actually fire");
    let htm = rt.htm().stats().snapshot();
    // Every attempt — including each aborted one — reused the one arena
    // this thread allocated; rollback must hand it back clean.
    assert!(htm.ctx_fresh <= 2, "contexts leaked across aborts: {htm:?}");
    assert!(htm.ctx_reused >= SECTIONS, "reuse not engaged: {htm:?}");
    assert_eq!(htm.inline_overflows, 0);
}

#[test]
fn inline_table_overflow_aborts_with_capacity_and_completes_slow() {
    // A section writing more distinct cache lines than the arena can hold
    // must abort with Capacity (the cause the perceptron learns from),
    // count as a physical inline overflow, and complete on the lock path.
    gocc_gosync::set_procs(8);
    let mut cfg = GoccConfig::no_perceptron();
    cfg.telemetry_enabled = true;
    let rt = GoccRuntime::new(cfg);
    let m = ElidableMutex::new();
    // 600 cache lines of u64 cells: past the 512-line physical bound.
    let cells: Vec<TxVar<u64>> = (0..600 * 8).map(|_| TxVar::new(0)).collect();
    critical_mutex(&rt, call_site!(), &m, |tx| {
        for (i, c) in cells.iter().enumerate() {
            tx.write(c, i as u64)?;
        }
        Ok(())
    });
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&cells[4799]).unwrap(), 4799, "section lost");
    let htm = rt.htm().stats().snapshot();
    assert!(htm.aborts_capacity >= 1, "no capacity abort: {htm:?}");
    assert!(htm.inline_overflows >= 1, "overflow not counted: {htm:?}");
    let snap = rt.stats().snapshot();
    assert_eq!(snap.slow_sections, 1);
    assert_eq!(
        snap.htm_attempts, 1,
        "capacity is deterministic: one doomed attempt, then the lock"
    );
    assert!(
        rt.telemetry().unwrap().inline_overflows() >= 1,
        "telemetry must surface the overflow"
    );
    // The oversized section must not have poisoned the thread's arena.
    let v = TxVar::new(0u64);
    critical_mutex(&rt, call_site!(), &m, |tx| tx.write(&v, 7));
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&v).unwrap(), 7);
}

#[test]
fn watchdog_bounds_a_pathological_retry_policy() {
    // A policy with an effectively unbounded budget plus a 100% transient
    // abort rate is a livelock machine. The watchdog must cap it: each
    // section re-executes exactly `watchdog_abort_bound` times on the fast
    // path, then completes under the lock, visibly counted.
    gocc_gosync::set_procs(8);
    let plan = Arc::new(HtmFaultPlan::new(
        15,
        AbortMix {
            conflict: 1.0,
            ..AbortMix::default()
        },
    ));
    let mut cfg = GoccConfig::no_perceptron();
    cfg.htm.fault_plan = Some(Arc::clone(&plan));
    cfg.policy.max_attempts = u32::MAX; // pathological
    cfg.policy.watchdog_abort_bound = 8;
    cfg.telemetry_enabled = true;
    let rt = GoccRuntime::new(cfg);
    let m = ElidableMutex::new();
    let v = TxVar::new(0u64);
    const SECTIONS: u64 = 25;
    for _ in 0..SECTIONS {
        critical_mutex(&rt, call_site!(), &m, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1)
        });
    }
    let mut check = Tx::direct(rt.htm());
    assert_eq!(check.read(&v).unwrap(), SECTIONS);
    let snap = rt.stats().snapshot();
    assert_eq!(
        snap.slow_sections, SECTIONS,
        "every section completes, on the lock"
    );
    assert_eq!(
        snap.watchdog_forced, SECTIONS,
        "the watchdog must fire once per livelocked section"
    );
    assert_eq!(
        snap.htm_attempts,
        SECTIONS * 8,
        "exactly watchdog_abort_bound fast attempts per section"
    );
    // The guarantee is visible in telemetry, not just internal stats.
    let report = rt.telemetry().expect("telemetry on").report();
    assert_eq!(report.watchdog_forced, SECTIONS);
    assert!(report.to_json().contains("\"watchdog_forced\":25"));
}

#[test]
fn mismatch_is_reported_not_swallowed() {
    // A mis-paired unlock must surface in *every* observable channel:
    // the returned abort, OptiStats, and telemetry (site attribution +
    // event trace) — not just silently recover.
    gocc_gosync::set_procs(8);
    let mut cfg = GoccConfig::standard();
    cfg.telemetry_enabled = true;
    let rt = GoccRuntime::new(cfg);
    let a = ElidableMutex::new();
    let b = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let mut ol = OptiLock::new(call_site!());
    let mut mismatch_aborts = 0u32;
    a.lock_raw();
    loop {
        let mut scope = HtmScope::new(&rt);
        if ol.fast_lock(&mut scope, LockRef::Mutex(&b)).is_err() {
            continue;
        }
        let write_ok = (|| {
            let cur = scope.tx().read(&v)?;
            scope.tx().write(&v, cur + 1)
        })();
        if write_ok.is_err() {
            scope.abort_restart();
            continue;
        }
        match ol.fast_unlock(&mut scope, LockRef::Mutex(&a)) {
            Ok(()) => break,
            Err(abort) => {
                assert_eq!(abort.cause, AbortCause::Explicit(MUTEX_MISMATCH_CODE));
                mismatch_aborts += 1;
                if scope.is_active() {
                    scope.abort_restart();
                }
            }
        }
    }
    b.unlock_raw();
    assert!(!a.is_locked() && !b.is_locked(), "no leaked locks");
    assert_eq!(
        mismatch_aborts, 1,
        "the abort must be returned to the caller"
    );
    assert_eq!(rt.stats().snapshot().mismatch_recoveries, 1);
    let report = rt.telemetry().unwrap().report();
    // Explicit aborts land in cause slot 0 ("explicit") of the site row.
    let explicit_idx = AbortCause::Explicit(MUTEX_MISMATCH_CODE).index();
    let attributed: u64 = report.sites.iter().map(|s| s.aborts[explicit_idx]).sum();
    assert!(attributed >= 1, "site attribution must record the mismatch");
    assert!(
        report
            .events
            .iter()
            .any(|e| e.outcome == EventOutcome::Abort(explicit_idx as u8)),
        "the event trace must contain the mismatch abort"
    );
}

#[test]
fn pairing_plan_drives_mismatch_detection_end_to_end() {
    // The seeded pairing plan decides, per iteration, whether the driver
    // emits a hand-over-hand mis-paired sequence. Every injected mispair
    // must be detected and recovered; clean iterations must elide.
    // No perceptron: a trained predictor could route a mispaired iteration
    // straight to the slow path, where no mismatch check exists to count.
    gocc_gosync::set_procs(8);
    let rt = GoccRuntime::new(GoccConfig::no_perceptron());
    let pairing = PairingFaultPlan::new(77, 0.4);
    let a = ElidableMutex::new();
    let b = ElidableMutex::new();
    let v = TxVar::new(0u64);
    let site = call_site!();
    const ITERS: u64 = 50;
    for _ in 0..ITERS {
        if pairing.mispair(site) {
            // Mis-paired: FastLock(b) … FastUnlock(a), under raw-held a.
            let mut ol = OptiLock::new(site);
            a.lock_raw();
            loop {
                let mut scope = HtmScope::new(&rt);
                if ol.fast_lock(&mut scope, LockRef::Mutex(&b)).is_err() {
                    continue;
                }
                let write_ok = (|| {
                    let cur = scope.tx().read(&v)?;
                    scope.tx().write(&v, cur + 1)
                })();
                if write_ok.is_err() {
                    scope.abort_restart();
                    continue;
                }
                match ol.fast_unlock(&mut scope, LockRef::Mutex(&a)) {
                    Ok(()) => break,
                    Err(_) => {
                        if scope.is_active() {
                            scope.abort_restart();
                        }
                    }
                }
            }
            b.unlock_raw();
        } else {
            critical_mutex(&rt, site, &b, |tx| {
                let cur = tx.read(&v)?;
                tx.write(&v, cur + 1)
            });
        }
        assert!(
            !a.is_locked() && !b.is_locked(),
            "locks must balance per iter"
        );
    }
    let injected = pairing.count();
    assert!(
        injected > 5 && injected < ITERS,
        "rate 0.4 of {ITERS}: {injected}"
    );
    assert_eq!(
        rt.stats().snapshot().mismatch_recoveries,
        injected,
        "every injected mispair must be detected, and nothing else"
    );
    let mut check = Tx::direct(rt.htm());
    assert_eq!(
        check.read(&v).unwrap(),
        ITERS,
        "no lost or duplicated updates"
    );
}
