//! Property tests on the perceptron: weight saturation, decision
//! monotonicity, and decay liveness under arbitrary training histories.
//!
//! Histories come from a seeded [`SplitMix64`] stream so the suite is
//! deterministic without external crates.

use gocc_optilock::{Perceptron, PerceptronConfig};
use gocc_telemetry::SplitMix64;

#[test]
fn weight_sum_stays_bounded() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::new(0xB0DED + case);
        let p = Perceptron::default();
        let f = p.features(rng.next_u64() as usize, rng.next_u64() as usize);
        let ops = rng.below(500);
        for _ in 0..ops {
            match rng.below(3) {
                0 => p.reward(f),
                1 => p.penalize(f),
                _ => {
                    let _ = p.predict(f);
                }
            }
            let sum = p.weight_sum(f);
            assert!(
                (-32..=30).contains(&sum),
                "case {case}: sum out of range: {sum}"
            );
        }
    }
}

#[test]
fn enough_rewards_always_turn_prediction_on() {
    // Exhaustive over the old proptest range 0..40.
    for penalties in 0usize..40 {
        let p = Perceptron::default();
        let f = p.features(0xAAAA, 0xBBBB);
        for _ in 0..penalties {
            p.penalize(f);
        }
        // Saturation bounds guarantee at most 32+? rewards flip it back.
        for _ in 0..64 {
            p.reward(f);
        }
        assert!(p.predict(f), "{penalties} penalties never recovered");
    }
}

#[test]
fn decay_always_revives_a_buried_site() {
    // Exhaustive over the old proptest range 2..64.
    for decay in 2u32..64 {
        let p = Perceptron::new(PerceptronConfig {
            decay_threshold: decay,
            threshold: 0,
        });
        let f = p.features(0x1234, 0x5678);
        for _ in 0..64 {
            p.penalize(f);
        }
        // No matter how buried, within `decay` slow decisions the weights
        // reset and the next prediction tries HTM again.
        let mut revived = false;
        for _ in 0..=decay {
            if p.predict(f) {
                revived = true;
                break;
            }
        }
        if !revived {
            // The reset fired on the last allowed decision; the next
            // prediction must be positive.
            assert!(p.predict(f), "decay {decay} failed to revive the site");
        }
    }
}

#[test]
fn distinct_feature_pairs_are_usually_independent() {
    let mut tested = 0u32;
    let mut rng = SplitMix64::new(0xFEA7);
    while tested < 64 {
        let m1 = rng.next_u64() as usize;
        let m2 = rng.next_u64() as usize;
        let site = rng.next_u64() as usize;
        if m1 == m2 {
            continue;
        }
        let p = Perceptron::default();
        let f1 = p.features(m1, site);
        let f2 = p.features(m2, site);
        if f1 == f2 {
            continue; // hash collisions are legal, just rare
        }
        tested += 1;
        for _ in 0..64 {
            p.penalize(f1);
        }
        // Burying f1's mutex cell must not pull f2's *mutex* weight down.
        // (They share the site cell by construction, which contributes at
        // most -16 of the -32 range, so f2 can still be non-negative after
        // rewards.)
        for _ in 0..64 {
            p.reward(f2);
        }
        assert!(p.predict(f2), "independent mutex must recover");
    }
}
