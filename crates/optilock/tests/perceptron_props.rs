//! Property tests on the perceptron: weight saturation, decision
//! monotonicity, and decay liveness under arbitrary training histories.

use gocc_optilock::{Perceptron, PerceptronConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Train {
    Reward,
    Penalize,
    Predict,
}

fn train() -> impl Strategy<Value = Train> {
    prop_oneof![
        Just(Train::Reward),
        Just(Train::Penalize),
        Just(Train::Predict)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn weight_sum_stays_bounded(ops in proptest::collection::vec(train(), 0..500),
                                mutex in any::<usize>(), site in any::<usize>()) {
        let p = Perceptron::default();
        let f = p.features(mutex, site);
        for op in &ops {
            match op {
                Train::Reward => p.reward(f),
                Train::Penalize => p.penalize(f),
                Train::Predict => { let _ = p.predict(f); }
            }
            let sum = p.weight_sum(f);
            prop_assert!((-32..=30).contains(&sum), "sum out of range: {}", sum);
        }
    }

    #[test]
    fn enough_rewards_always_turn_prediction_on(penalties in 0usize..40) {
        let p = Perceptron::default();
        let f = p.features(0xAAAA, 0xBBBB);
        for _ in 0..penalties {
            p.penalize(f);
        }
        // Saturation bounds guarantee at most 32+? rewards flip it back.
        for _ in 0..64 {
            p.reward(f);
        }
        prop_assert!(p.predict(f));
    }

    #[test]
    fn decay_always_revives_a_buried_site(decay in 2u32..64) {
        let p = Perceptron::new(PerceptronConfig { decay_threshold: decay, threshold: 0 });
        let f = p.features(0x1234, 0x5678);
        for _ in 0..64 {
            p.penalize(f);
        }
        // No matter how buried, within `decay` slow decisions the weights
        // reset and the next prediction tries HTM again.
        let mut revived = false;
        for _ in 0..=decay {
            if p.predict(f) {
                revived = true;
                break;
            }
        }
        if !revived {
            // The reset fired on the last allowed decision; the next
            // prediction must be positive.
            prop_assert!(p.predict(f), "decay failed to revive the site");
        }
    }

    #[test]
    fn distinct_feature_pairs_are_usually_independent(
        m1 in any::<usize>(), m2 in any::<usize>(), site in any::<usize>()
    ) {
        prop_assume!(m1 != m2);
        let p = Perceptron::default();
        let f1 = p.features(m1, site);
        let f2 = p.features(m2, site);
        prop_assume!(f1 != f2); // hash collisions are legal, just rare
        for _ in 0..64 {
            p.penalize(f1);
        }
        // Burying f1's mutex cell must not pull f2's *mutex* weight down.
        // (They share the site cell by construction, which contributes at
        // most -16 of the -32 range, so f2 can still be non-negative after
        // rewards.)
        for _ in 0..64 {
            p.reward(f2);
        }
        prop_assert!(p.predict(f2), "independent mutex must recover");
    }
}
