//! Telemetry attribution must reconcile with the global counters.
//!
//! The per-site registry records at exactly the points where the global
//! `OptiStats` counters increment (outermost HTM attempt, outermost fast
//! commit, slow-path completion), so summing every site row must
//! reproduce the global totals — across threads, aborts and retries.

use gocc_optilock::{call_site, critical_mutex, ElidableMutex, GoccConfig, GoccRuntime};
use gocc_telemetry::ABORT_CAUSE_NAMES;
use gocc_txds::TxCounter;

fn rt_with_telemetry() -> GoccRuntime {
    gocc_gosync::set_procs(8);
    GoccRuntime::new(GoccConfig::with_telemetry())
}

#[test]
fn per_site_sums_match_global_stats_under_contention() {
    let rt = rt_with_telemetry();
    let m1 = ElidableMutex::new();
    let m2 = ElidableMutex::new();
    let c1 = TxCounter::new(0);
    let c2 = TxCounter::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let (rt, m1, m2, c1, c2) = (&rt, &m1, &m2, &c1, &c2);
            s.spawn(move || {
                for i in 0..300u64 {
                    if (t + i) % 2 == 0 {
                        // Contended: all threads update one counter.
                        critical_mutex(rt, call_site!(), m1, |tx| c1.add(tx, 1));
                    } else {
                        critical_mutex(rt, call_site!(), m2, |tx| c2.add(tx, i));
                    }
                }
            });
        }
    });

    let report = rt.telemetry().expect("telemetry enabled").report();
    let opti = rt.stats().snapshot();
    let htm = rt.htm().stats().snapshot();

    assert_eq!(opti.fast_commits + opti.slow_sections, 4 * 300);

    let site_starts: u64 = report.sites.iter().map(|s| s.starts).sum();
    let site_commits: u64 = report.sites.iter().map(|s| s.commits).sum();
    let site_slow: u64 = report.sites.iter().map(|s| s.slow_sections).sum();
    assert_eq!(report.aliased_sites, 0, "4 sites cannot alias a 4K table");
    assert_eq!(site_starts, opti.htm_attempts, "starts == global attempts");
    assert_eq!(site_commits, opti.fast_commits, "commits == fast commits");
    assert_eq!(site_slow, opti.slow_sections, "slow == slow sections");

    // Per-cause abort attribution reconciles with the HTM layer's own
    // per-cause counters. Sections the perceptron routed straight to the
    // slow path never start a transaction, so telemetry sees exactly the
    // aborts the HTM runtime sees.
    let htm_by_cause = [
        htm.aborts_explicit,
        htm.aborts_retry,
        htm.aborts_conflict,
        htm.aborts_capacity,
        htm.aborts_debug,
        htm.aborts_nested,
        htm.aborts_unfriendly,
    ];
    for (i, name) in ABORT_CAUSE_NAMES.iter().enumerate() {
        let site_total: u64 = report.sites.iter().map(|s| s.aborts[i]).sum();
        assert_eq!(site_total, htm_by_cause[i], "abort cause {name}");
    }

    // Latency samples: one per completed section, attributed to the path
    // that completed it, nothing silently lost.
    assert_eq!(report.dropped_samples, 0);
    assert_eq!(report.fast_latency.count, opti.fast_commits);
    assert_eq!(report.slow_latency.count, opti.slow_sections);
}

#[test]
fn report_json_round_trips_through_the_parser() {
    let rt = rt_with_telemetry();
    let m = ElidableMutex::new();
    let c = TxCounter::new(0);
    for _ in 0..50 {
        critical_mutex(&rt, call_site!(), &m, |tx| c.add(tx, 1));
    }
    let report = rt.telemetry().unwrap().report();
    let json = report.to_json();
    let v = gocc_telemetry::JsonValue::parse(&json).expect("emitted JSON parses");
    let sites = v.get("sites").unwrap().as_array().unwrap();
    assert_eq!(sites.len(), 1, "one call site, one lock");
    let starts = sites[0].get("starts").unwrap().as_f64().unwrap();
    let commits = sites[0].get("commits").unwrap().as_f64().unwrap();
    let slow = sites[0].get("slow_sections").unwrap().as_f64().unwrap();
    assert_eq!(commits + slow, 50.0);
    assert!(starts >= commits);
    // The text rendering carries the same totals.
    let text = report.to_text();
    assert!(text.contains("fast latency"), "{text}");
}

#[test]
fn disabled_runtime_reports_nothing() {
    gocc_gosync::set_procs(8);
    let rt = GoccRuntime::new(GoccConfig::standard());
    let m = ElidableMutex::new();
    let c = TxCounter::new(0);
    for _ in 0..10 {
        critical_mutex(&rt, call_site!(), &m, |tx| c.add(tx, 1));
    }
    assert!(rt.telemetry().is_none(), "telemetry is strictly opt-in");
    // But the always-on global stats still accumulated.
    let s = rt.stats().snapshot();
    assert_eq!(s.fast_commits + s.slow_sections, 10);
}
