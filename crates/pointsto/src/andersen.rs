//! Inclusion-based points-to analysis for mutex receivers.

use std::collections::{BTreeSet, HashMap, HashSet};

use gocc_flowgraph::{AccessPath, PathSeg};
use golite::ast::{Block, Decl, Expr, Field, File, FuncDecl, Stmt, Type, UnaryOp};
use golite::types::TypeInfo;

/// An interned abstract mutex object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u32);

/// The points-to model (see the crate docs for the object taxonomy).
#[derive(Debug, Default)]
pub struct PointsTo {
    /// Interned object names.
    objects: Vec<String>,
    obj_ids: HashMap<String, ObjId>,
    /// Constraint-node points-to sets (pointer variables / pointer fields
    /// / returns / formals), keyed by node name.
    node_pts: HashMap<String, BTreeSet<ObjId>>,
    /// Copy edges `from ⊆ to` between nodes.
    edges: HashMap<String, HashSet<String>>,
    /// Per top-level function: flat type environment.
    envs: HashMap<String, HashMap<String, Type>>,
    /// Per top-level function: names declared locally (vs package scope).
    locals: HashMap<String, HashSet<String>>,
    /// Package-level variable names.
    globals: HashSet<String>,
    /// Struct name → fields (for owner-of-field lookups).
    struct_fields: HashMap<String, Vec<Field>>,
}

impl PointsTo {
    /// Runs the analysis over the files of one package.
    #[must_use]
    pub fn analyze(files: &[&File], info: &TypeInfo) -> Self {
        let mut pt = PointsTo::default();
        pt.install_structs(files);
        for file in files {
            for decl in &file.decls {
                if let Decl::Var(vd) | Decl::Const(vd) = decl {
                    for n in &vd.names {
                        pt.globals.insert(n.clone());
                    }
                }
            }
        }
        // Pass 1: environments and locally declared names, for every
        // function, before any constraint references them.
        for file in files {
            for fd in file.funcs() {
                let fname = func_key(fd);
                let env = info.local_env(fd);
                let mut declared: HashSet<String> = HashSet::new();
                if let Some(r) = &fd.recv {
                    declared.insert(r.name.clone());
                }
                for p in &fd.params {
                    if let Some(n) = &p.name {
                        declared.insert(n.clone());
                    }
                }
                collect_declared(&fd.body, &mut declared);
                pt.envs.insert(fname.clone(), env);
                pt.locals.insert(fname, declared);
            }
        }
        // Pass 2: inclusion constraints.
        for file in files {
            for fd in file.funcs() {
                let fname = func_key(fd);
                let mut gen = ConstraintGen {
                    pt: &mut pt,
                    info,
                    fname: &fname,
                };
                gen.block(&fd.body);
                // Bind call-site argument nodes to parameter variables.
                for (i, p) in fd.params.iter().enumerate() {
                    if let Some(n) = &p.name {
                        let arg_node = format!("param{i}:{fname}");
                        let param_var = format!("pv:{fname}.{n}");
                        pt.add_edge(&arg_node, &param_var);
                    }
                }
            }
        }
        // Seed every pointer node with its formal (unknown-caller) object
        // so two uses of the same pointer variable always intersect.
        let nodes: Vec<String> = pt
            .edges
            .keys()
            .chain(pt.edges.values().flatten())
            .chain(pt.node_pts.keys())
            .cloned()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for node in nodes {
            if node.starts_with("pv:") || node.starts_with("pf:") {
                let formal = pt.intern(&format!("formal:{node}"));
                pt.node_pts.entry(node).or_default().insert(formal);
            }
        }
        pt.solve();
        pt
    }

    fn intern(&mut self, name: &str) -> ObjId {
        if let Some(&id) = self.obj_ids.get(name) {
            return id;
        }
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(name.to_string());
        self.obj_ids.insert(name.to_string(), id);
        id
    }

    /// Human-readable name of an object (diagnostics, Table 1 reporting).
    #[must_use]
    pub fn obj_name(&self, id: ObjId) -> &str {
        &self.objects[id.0 as usize]
    }

    fn add_edge(&mut self, from: &str, to: &str) {
        self.edges
            .entry(from.to_string())
            .or_default()
            .insert(to.to_string());
        self.node_pts.entry(from.to_string()).or_default();
        self.node_pts.entry(to.to_string()).or_default();
    }

    fn seed(&mut self, node: &str, obj: ObjId) {
        self.node_pts
            .entry(node.to_string())
            .or_default()
            .insert(obj);
    }

    fn solve(&mut self) {
        // Worklist propagation of inclusion constraints.
        let mut changed = true;
        while changed {
            changed = false;
            let froms: Vec<String> = self.edges.keys().cloned().collect();
            for from in froms {
                let src = self.node_pts.get(&from).cloned().unwrap_or_default();
                let tos: Vec<String> = self
                    .edges
                    .get(&from)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                for to in tos {
                    let dst = self.node_pts.entry(to).or_default();
                    let before = dst.len();
                    dst.extend(src.iter().copied());
                    if dst.len() != before {
                        changed = true;
                    }
                }
            }
        }
    }

    /// Resolves the points-to set `M(·)` of a lock receiver in `unit`
    /// (a function name, possibly with a `$k` closure suffix).
    #[must_use]
    pub fn resolve(&mut self, unit: &str, path: &AccessPath) -> BTreeSet<ObjId> {
        let func = unit.split('$').next().unwrap_or(unit).to_string();
        match path {
            AccessPath::Opaque(node) => {
                let id = self.intern(&format!("opaque:{}", node.0));
                BTreeSet::from([id])
            }
            AccessPath::Rooted { base, segs } => {
                let env = match self.envs.get(&func) {
                    Some(e) => e.clone(),
                    None => HashMap::new(),
                };
                let Some(base_ty) = env.get(base).cloned() else {
                    let id = self.intern(&format!("unresolved:{func}:{path}"));
                    return BTreeSet::from([id]);
                };
                if segs.is_empty() {
                    return self.resolve_root(&func, base, &base_ty);
                }
                self.resolve_path(&func, path, &base_ty, segs)
            }
        }
    }

    fn resolve_root(&mut self, func: &str, base: &str, ty: &Type) -> BTreeSet<ObjId> {
        match ty {
            t if is_mutex_value(t) => {
                let is_local = self
                    .locals
                    .get(func)
                    .map(|l| l.contains(base))
                    .unwrap_or(false);
                let name = if is_local {
                    format!("local:{func}.{base}")
                } else {
                    format!("global:{base}")
                };
                let id = self.intern(&name);
                BTreeSet::from([id])
            }
            Type::Pointer(inner) if inner.is_mutex() => {
                let node = format!("pv:{func}.{base}");
                self.node_or_formal(&node)
            }
            // A struct (or struct pointer) with an embedded mutex used as
            // the receiver of a promoted Lock/Unlock.
            Type::Named { pkg: None, name } => self.embedded_object(name),
            Type::Pointer(inner) => {
                if let Type::Named { pkg: None, name } = inner.as_ref() {
                    self.embedded_object(&name.clone())
                } else {
                    let id = self.intern(&format!("unresolved:{func}:{base}"));
                    BTreeSet::from([id])
                }
            }
            _ => {
                let id = self.intern(&format!("unresolved:{func}:{base}"));
                BTreeSet::from([id])
            }
        }
    }

    fn embedded_object(&mut self, struct_name: &str) -> BTreeSet<ObjId> {
        let id = self.intern(&format!("field:{struct_name}.$embedded"));
        BTreeSet::from([id])
    }

    fn node_or_formal(&mut self, node: &str) -> BTreeSet<ObjId> {
        if let Some(s) = self.node_pts.get(node) {
            if !s.is_empty() {
                return s.clone();
            }
        }
        let formal = self.intern(&format!("formal:{node}"));
        BTreeSet::from([formal])
    }

    fn resolve_path(
        &mut self,
        func: &str,
        full: &AccessPath,
        base_ty: &Type,
        segs: &[PathSeg],
    ) -> BTreeSet<ObjId> {
        // Walk the static type chain to the owning struct of the final
        // field.
        let mut cur = strip_ptr(base_ty).clone();
        for (i, seg) in segs.iter().enumerate() {
            let last = i == segs.len() - 1;
            match seg {
                PathSeg::Index => {
                    cur = match cur {
                        Type::Slice(e) | Type::Array(e) => strip_ptr(&e).clone(),
                        Type::Map(_, v) => strip_ptr(&v).clone(),
                        other => other,
                    };
                }
                PathSeg::Field(fname) => {
                    let Type::Named {
                        pkg: None,
                        name: sname,
                    } = &cur
                    else {
                        let id = self.intern(&format!("unresolved:{func}:{full}"));
                        return BTreeSet::from([id]);
                    };
                    let sname = sname.clone();
                    if last {
                        return self.resolve_final_field(func, full, &sname, fname);
                    }
                    // Intermediate step: follow the field's type.
                    let Some(next) = self.field_type_of(&sname, fname) else {
                        let id = self.intern(&format!("unresolved:{func}:{full}"));
                        return BTreeSet::from([id]);
                    };
                    cur = strip_ptr(&next).clone();
                }
            }
        }
        // Path ended on an Index (e.g. `locks[i].Lock()` where elements
        // are mutexes): one abstract object per container element type.
        match &cur {
            t if is_mutex_value(t) => {
                let id = self.intern(&format!("elems:{func}:{full}"));
                BTreeSet::from([id])
            }
            _ => {
                let id = self.intern(&format!("unresolved:{func}:{full}"));
                BTreeSet::from([id])
            }
        }
    }

    fn resolve_final_field(
        &mut self,
        func: &str,
        full: &AccessPath,
        struct_name: &str,
        field: &str,
    ) -> BTreeSet<ObjId> {
        // Find the owning struct (the field may be promoted through
        // embedding).
        let Some((owner, fty)) = self.owner_of_field(struct_name, field) else {
            let id = self.intern(&format!("unresolved:{func}:{full}"));
            return BTreeSet::from([id]);
        };
        match &fty {
            t if is_mutex_value(t) => {
                let id = self.intern(&format!("field:{owner}.{field}"));
                BTreeSet::from([id])
            }
            Type::Pointer(inner) if inner.is_mutex() => {
                let node = format!("pf:{owner}.{field}");
                self.node_or_formal(&node)
            }
            // Receiver is a struct-typed field with an embedded mutex
            // (promoted Lock on a nested struct).
            Type::Named { pkg: None, name } => self.embedded_object(&name.clone()),
            _ => {
                let id = self.intern(&format!("unresolved:{func}:{full}"));
                BTreeSet::from([id])
            }
        }
    }

    fn owner_of_field(&self, struct_name: &str, field: &str) -> Option<(String, Type)> {
        let fields = self.struct_fields.get(struct_name)?;
        for f in fields {
            if f.access_name() == field {
                return Some((struct_name.to_string(), f.ty.clone()));
            }
        }
        for f in fields {
            if f.is_embedded() {
                if let Type::Named { pkg: None, name } = strip_ptr(&f.ty) {
                    if let Some(found) = self.owner_of_field(name, field) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }

    fn field_type_of(&self, struct_name: &str, field: &str) -> Option<Type> {
        self.owner_of_field(struct_name, field).map(|(_, t)| t)
    }

    /// Whether two points-to sets may alias (non-empty intersection —
    /// condition (1) of Definition 5.4).
    #[must_use]
    pub fn intersects(a: &BTreeSet<ObjId>, b: &BTreeSet<ObjId>) -> bool {
        a.iter().any(|x| b.contains(x))
    }
}

// The struct table lives outside the impl state machine above; stored on
// the struct for `owner_of_field`.
impl PointsTo {
    /// Installs struct layouts (called from `analyze`).
    fn install_structs(&mut self, files: &[&File]) {
        for file in files {
            for decl in &file.decls {
                if let Decl::TypeStruct(sd) = decl {
                    self.struct_fields
                        .insert(sd.name.clone(), sd.fields.clone());
                }
            }
        }
    }
}

fn is_mutex_value(t: &Type) -> bool {
    matches!(t, Type::Named { pkg: Some(p), name } if p == "sync" && (name == "Mutex" || name == "RWMutex"))
}

fn strip_ptr(t: &Type) -> &Type {
    match t {
        Type::Pointer(inner) => strip_ptr(inner),
        other => other,
    }
}

fn func_key(fd: &FuncDecl) -> String {
    match &fd.recv {
        Some(r) => format!("{}.{}", r.type_name, fd.name),
        None => fd.name.clone(),
    }
}

fn collect_declared(block: &Block, out: &mut HashSet<String>) {
    for s in &block.stmts {
        match s {
            Stmt::Var(vd) => out.extend(vd.names.iter().cloned()),
            Stmt::Assign {
                lhs, define: true, ..
            } => {
                for l in lhs {
                    if let Expr::Ident { name, .. } = l {
                        out.insert(name.clone());
                    }
                }
            }
            Stmt::If {
                init, then, els, ..
            } => {
                if let Some(i) = init {
                    collect_declared_stmt(i, out);
                }
                collect_declared(then, out);
                if let Some(e) = els {
                    collect_declared_stmt(e, out);
                }
            }
            Stmt::Block(b) => collect_declared(b, out),
            Stmt::For {
                init,
                post,
                body,
                range_vars,
                ..
            } => {
                if let Some(i) = init {
                    collect_declared_stmt(i, out);
                }
                if let Some(p) = post {
                    collect_declared_stmt(p, out);
                }
                out.extend(range_vars.iter().cloned());
                collect_declared(body, out);
            }
            Stmt::Switch { cases, .. } => {
                for (_, b) in cases {
                    collect_declared(b, out);
                }
            }
            Stmt::Select { cases, .. } => {
                for b in cases {
                    collect_declared(b, out);
                }
            }
            _ => {}
        }
    }
}

fn collect_declared_stmt(s: &Stmt, out: &mut HashSet<String>) {
    let block = Block {
        stmts: vec![s.clone()],
        span: s.span(),
    };
    collect_declared(&block, out);
}

/// Generates inclusion constraints from one function body.
struct ConstraintGen<'a> {
    pt: &'a mut PointsTo,
    info: &'a TypeInfo,
    fname: &'a str,
}

impl ConstraintGen<'_> {
    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Var(vd) => {
                for (i, name) in vd.names.iter().enumerate() {
                    if let Some(value) = vd.values.get(i) {
                        self.assign_ident(name, value);
                    }
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for (l, r) in lhs.iter().zip(rhs.iter()) {
                    match l {
                        Expr::Ident { name, .. } => self.assign_ident(name, r),
                        Expr::Selector { base, field, .. } => self.assign_field(base, field, r),
                        _ => {}
                    }
                    self.walk_calls(r);
                }
            }
            Stmt::Expr(e) | Stmt::Defer { call: e, .. } | Stmt::Go { call: e, .. } => {
                self.walk_calls(e);
            }
            Stmt::If {
                init, then, els, ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                self.block(then);
                if let Some(e) = els {
                    self.stmt(e);
                }
            }
            Stmt::Block(b) => self.block(b),
            Stmt::For {
                init, post, body, ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(p) = post {
                    self.stmt(p);
                }
                self.block(body);
            }
            Stmt::Switch { cases, .. } => {
                for (_, b) in cases {
                    self.block(b);
                }
            }
            Stmt::Select { cases, .. } => {
                for b in cases {
                    self.block(b);
                }
            }
            Stmt::Return { values, .. } => {
                for (i, v) in values.iter().enumerate() {
                    let node = format!("ret{}:{}", i, self.fname);
                    self.flow_into(&node, v);
                }
            }
            _ => {}
        }
    }

    /// `name = rhs` where name may be a mutex pointer.
    fn assign_ident(&mut self, name: &str, rhs: &Expr) {
        let node = format!("pv:{}.{}", self.fname, name);
        self.flow_into(&node, rhs);
    }

    /// `base.field = rhs` where the field may be a mutex pointer.
    fn assign_field(&mut self, base: &Expr, field: &str, rhs: &Expr) {
        let env = self.pt.envs.get(self.fname).cloned().unwrap_or_default();
        if let Some(struct_name) = self.info.receiver_struct(base, &env) {
            let node = format!("pf:{struct_name}.{field}");
            self.flow_into(&node, rhs);
        }
    }

    /// Adds constraints making the value of `rhs` flow into `node`.
    fn flow_into(&mut self, node: &str, rhs: &Expr) {
        match rhs {
            Expr::Unary {
                op: UnaryOp::Addr,
                operand,
                ..
            } => {
                // `node ⊇ { obj(operand) }`.
                let path = AccessPath::of_expr(operand);
                let objs = self.pt.resolve(self.fname, &path);
                for o in objs {
                    self.pt.seed(node, o);
                }
            }
            Expr::Ident { name, .. } => {
                let src = format!("pv:{}.{}", self.fname, name);
                self.pt.add_edge(&src, node);
            }
            Expr::Selector { base, field, .. } => {
                let env = self.pt.envs.get(self.fname).cloned().unwrap_or_default();
                if let Some(struct_name) = self.info.receiver_struct(base, &env) {
                    let src = format!("pf:{struct_name}.{field}");
                    self.pt.add_edge(&src, node);
                }
            }
            Expr::Call { callee, .. } => {
                if let Expr::Ident { name, .. } = callee.as_ref() {
                    let src = format!("ret0:{name}");
                    self.pt.add_edge(&src, node);
                }
                self.walk_calls(rhs);
            }
            Expr::Composite {
                ty:
                    Type::Named {
                        pkg: None,
                        name: sname,
                    },
                elems,
                ..
            } => {
                // Field initializers may store mutex pointers.
                for (key, value) in elems {
                    if let Some(k) = key {
                        let field_node = format!("pf:{sname}.{k}");
                        self.flow_into(&field_node, value);
                    }
                }
            }
            _ => {}
        }
    }

    /// Binds call arguments to callee parameters (context-insensitive).
    fn walk_calls(&mut self, e: &Expr) {
        match e {
            Expr::Call { callee, args, .. } => {
                for a in args {
                    self.walk_calls(a);
                }
                if let Expr::Ident { name, .. } = callee.as_ref() {
                    for (i, arg) in args.iter().enumerate() {
                        let node = format!("param{i}:{name}");
                        self.flow_into(&node, arg);
                    }
                }
            }
            Expr::Unary { operand, .. } => self.walk_calls(operand),
            Expr::Binary { left, right, .. } => {
                self.walk_calls(left);
                self.walk_calls(right);
            }
            Expr::Selector { base, .. } => self.walk_calls(base),
            Expr::Index { base, index, .. } => {
                self.walk_calls(base);
                self.walk_calls(index);
            }
            Expr::Composite { elems, .. } => {
                for (_, v) in elems {
                    self.walk_calls(v);
                }
            }
            Expr::FuncLit { body, .. } => self.block(body),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parser::parse_file;

    const SRC: &str = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	pm *sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
}

type Anon struct {
	sync.Mutex
	val int
}

var gmu sync.Mutex
var gptr *sync.Mutex

func take(p *sync.Mutex) {
	p.Lock()
	p.Unlock()
}

func flows() {
	var local sync.Mutex
	q := &local
	take(q)
	r := &gmu
	take(r)
	gptr = &gmu
}

func (c *C) method(d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func anon(a *Anon) {
	a.Lock()
	a.Unlock()
}
"#;

    fn setup() -> PointsTo {
        let f = parse_file(SRC).expect("parse");
        let files = [&f];
        let info = TypeInfo::new(&files);
        PointsTo::analyze(&files, &info)
    }

    fn rooted(base: &str, fields: &[&str]) -> AccessPath {
        AccessPath::Rooted {
            base: base.into(),
            segs: fields
                .iter()
                .map(|f| PathSeg::Field((*f).to_string()))
                .collect(),
        }
    }

    #[test]
    fn distinct_struct_fields_do_not_alias() {
        let mut pt = setup();
        let c_mu = pt.resolve("C.method", &rooted("c", &["mu"]));
        let d_mu = pt.resolve("C.method", &rooted("d", &["mu"]));
        assert!(
            !PointsTo::intersects(&c_mu, &d_mu),
            "C.mu and D.mu must not alias"
        );
        // Same field of the same struct type aliases across variables
        // (type-based may-alias).
        let c_mu2 = pt.resolve("C.method", &rooted("c", &["mu"]));
        assert!(PointsTo::intersects(&c_mu, &c_mu2));
    }

    #[test]
    fn global_and_local_mutexes_are_distinct() {
        let mut pt = setup();
        let g = pt.resolve("flows", &rooted("gmu", &[]));
        let l = pt.resolve("flows", &rooted("local", &[]));
        assert!(!PointsTo::intersects(&g, &l));
        assert_eq!(g.len(), 1);
        assert!(pt
            .obj_name(*g.iter().next().unwrap())
            .starts_with("global:"));
    }

    #[test]
    fn pointer_flows_through_call() {
        let mut pt = setup();
        // Inside `take`, parameter p may point to both &local (flows) and
        // &gmu (flows) — the call-site bindings union.
        let p = pt.resolve("take", &rooted("p", &[]));
        let names: Vec<&str> = p.iter().map(|o| pt_obj(&pt, *o)).collect();
        assert!(
            names.iter().any(|n| n.contains("local:flows.local")),
            "p must may-point to the local mutex: {names:?}"
        );
        assert!(
            names.iter().any(|n| n.contains("global:gmu")),
            "p must may-point to the global mutex: {names:?}"
        );
    }

    fn pt_obj(pt: &PointsTo, id: ObjId) -> &str {
        pt.obj_name(id)
    }

    #[test]
    fn same_pointer_var_always_intersects_itself() {
        let mut pt = setup();
        let a = pt.resolve("take", &rooted("p", &[]));
        let b = pt.resolve("take", &rooted("p", &[]));
        assert!(PointsTo::intersects(&a, &b));
    }

    #[test]
    fn pointer_field_flows() {
        let mut pt = setup();
        // gptr = &gmu makes the global pointer var include global:gmu.
        let g = pt.resolve("flows", &rooted("gptr", &[]));
        let names: Vec<&str> = g.iter().map(|o| pt.obj_name(*o)).collect::<Vec<_>>();
        assert!(names.iter().any(|n| n.contains("global:gmu")), "{names:?}");
    }

    #[test]
    fn embedded_mutex_receiver() {
        let mut pt = setup();
        let a = pt.resolve("anon", &rooted("a", &[]));
        assert_eq!(a.len(), 1);
        assert!(pt
            .obj_name(*a.iter().next().unwrap())
            .contains("field:Anon.$embedded"));
    }

    #[test]
    fn opaque_paths_never_alias() {
        let mut pt = setup();
        let o1 = pt.resolve("flows", &AccessPath::Opaque(golite::ast::NodeId(1)));
        let o2 = pt.resolve("flows", &AccessPath::Opaque(golite::ast::NodeId(2)));
        assert!(!PointsTo::intersects(&o1, &o2));
        let o1again = pt.resolve("flows", &AccessPath::Opaque(golite::ast::NodeId(1)));
        assert!(PointsTo::intersects(&o1, &o1again));
    }
}
