//! Static call graph (the subset's rapid type analysis, §5.2.4).

use std::collections::{BTreeSet, HashMap};

use gocc_flowgraph::{CalleeRef, Cfg, FuncUnit, InstKind};

/// The result of a transitive-closure walk from a critical section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Closure {
    /// Units reachable through calls (names as in [`FuncUnit::name`]).
    pub reached: BTreeSet<String>,
    /// Whether an unresolvable call (function value, unknown function)
    /// was encountered — treated conservatively as HTM-unfit.
    pub hits_unknown: bool,
    /// External `pkg.Fn` calls encountered (classified by the analyzer's
    /// package lists; already-unfriendly ones never reach the graph).
    pub externals: BTreeSet<(String, String)>,
}

/// A package-wide call graph over analyzer units.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Unit name → callee unit names.
    edges: HashMap<String, BTreeSet<String>>,
    /// Unit name → calls that could not be resolved to a unit.
    unknown: HashMap<String, bool>,
    /// Unit name → external calls.
    externals: HashMap<String, BTreeSet<(String, String)>>,
    /// Known unit names.
    units: BTreeSet<String>,
}

impl CallGraph {
    /// Builds the graph from all units of a package.
    #[must_use]
    pub fn build(units: &[&FuncUnit]) -> Self {
        let mut cg = CallGraph::default();
        // Closure literal node → unit name.
        let mut lit_units: HashMap<u32, String> = HashMap::new();
        for u in units {
            cg.units.insert(u.name.clone());
            if let Some(node) = u.lit_node {
                lit_units.insert(node.0, u.name.clone());
            }
        }
        for u in units {
            let entry = cg.edges.entry(u.name.clone()).or_default();
            let ext = cg.externals.entry(u.name.clone()).or_default();
            let mut unknown = false;
            for callee in callees_of(&u.cfg) {
                match callee {
                    CalleeRef::Func(name) => {
                        if cg.units.contains(&name) || units.iter().any(|x| x.name == name) {
                            entry.insert(name);
                        } else {
                            // Unknown free function in another package or
                            // undeclared: conservative.
                            unknown = true;
                        }
                    }
                    CalleeRef::Method {
                        recv_struct: Some(s),
                        name,
                    } => {
                        let key = format!("{s}.{name}");
                        if units.iter().any(|x| x.name == key) {
                            entry.insert(key);
                        } else {
                            unknown = true;
                        }
                    }
                    CalleeRef::Method {
                        recv_struct: None, ..
                    } => unknown = true,
                    CalleeRef::FuncLit(node) => {
                        if let Some(name) = lit_units.get(&node.0) {
                            entry.insert(name.clone());
                        } else {
                            unknown = true;
                        }
                    }
                    CalleeRef::Builtin(_) => {}
                    CalleeRef::External { pkg, name } => {
                        ext.insert((pkg, name));
                    }
                    CalleeRef::Indirect => unknown = true,
                }
            }
            cg.unknown.insert(u.name.clone(), unknown);
        }
        cg
    }

    /// Direct callees of a unit.
    #[must_use]
    pub fn callees(&self, unit: &str) -> Option<&BTreeSet<String>> {
        self.edges.get(unit)
    }

    /// Transitive closure `F*` of the calls made by `roots` (§5.2.4).
    #[must_use]
    pub fn closure(&self, roots: impl IntoIterator<Item = String>) -> Closure {
        let mut out = Closure::default();
        let mut stack: Vec<String> = roots.into_iter().collect();
        while let Some(unit) = stack.pop() {
            if !out.reached.insert(unit.clone()) {
                continue;
            }
            if self
                .unknown
                .get(&unit)
                .copied()
                .unwrap_or(!self.units.contains(&unit))
            {
                out.hits_unknown = true;
            }
            if let Some(ext) = self.externals.get(&unit) {
                out.externals.extend(ext.iter().cloned());
            }
            if let Some(callees) = self.edges.get(&unit) {
                stack.extend(callees.iter().cloned());
            }
        }
        out
    }
}

fn callees_of(cfg: &Cfg) -> Vec<CalleeRef> {
    cfg.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter_map(|i| match &i.kind {
            InstKind::Call(c) => Some(c.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_flowgraph::{build_cfg, BuildCtx};
    use golite::parser::parse_file;
    use golite::types::TypeInfo;

    fn units(src: &str) -> Vec<FuncUnit> {
        let f = parse_file(src).expect("parse");
        let files = [&f];
        let info = TypeInfo::new(&files);
        let mut all = Vec::new();
        for fd in f.funcs() {
            let env = info.local_env(fd);
            let ctx = BuildCtx {
                info: &info,
                env: &env,
            };
            all.extend(build_cfg(fd, &ctx));
        }
        all
    }

    const SRC: &str = r#"
package p

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) top() {
	c.mu.Lock()
	c.middle()
	c.mu.Unlock()
}

func (c *C) middle() {
	c.leaf()
	helper()
}

func (c *C) leaf() {
	c.n++
}

func helper() {
}

func indirectUser(f func()) {
	f()
}
"#;

    #[test]
    fn direct_and_method_edges() {
        let us = units(SRC);
        let refs: Vec<&FuncUnit> = us.iter().collect();
        let cg = CallGraph::build(&refs);
        let c = cg.closure(["C.top".to_string()]);
        assert!(c.reached.contains("C.middle"));
        assert!(c.reached.contains("C.leaf"));
        assert!(c.reached.contains("helper"));
        assert!(!c.hits_unknown);
    }

    #[test]
    fn leaf_closure_is_small() {
        let us = units(SRC);
        let refs: Vec<&FuncUnit> = us.iter().collect();
        let cg = CallGraph::build(&refs);
        let c = cg.closure(["C.leaf".to_string()]);
        assert_eq!(c.reached.len(), 1);
    }

    #[test]
    fn indirect_calls_are_unknown() {
        let us = units(SRC);
        let refs: Vec<&FuncUnit> = us.iter().collect();
        let cg = CallGraph::build(&refs);
        let c = cg.closure(["indirectUser".to_string()]);
        assert!(c.hits_unknown, "function-value calls must be conservative");
    }

    #[test]
    fn closures_resolve_by_literal() {
        let src = r#"
package p

func outer() {
	f := helperMaker()
	_ = f
	run(func() {
		inner()
	})
}

func inner() {}
func run(f func()) { f() }
func helperMaker() int { return 0 }
"#;
        let us = units(src);
        let refs: Vec<&FuncUnit> = us.iter().collect();
        let cg = CallGraph::build(&refs);
        // The literal passed to run becomes unit outer$1 and its body
        // calls inner.
        let c = cg.closure(["outer$1".to_string()]);
        assert!(c.reached.contains("inner"));
    }
}
