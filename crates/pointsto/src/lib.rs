//! May-alias points-to analysis and call graph for GOCC.
//!
//! §5.2.2 of the paper employs "Anderson's flow-insensitive may-alias
//! analysis" to compute the points-to set `M(L)` of every lock-point's
//! receiver, and §5.2.4 builds a static call graph "using rapid type
//! analysis" for the inter-procedural closure of critical sections.
//!
//! [`PointsTo`] implements an inclusion-based (Andersen-style) solver over
//! the Go subset with a type-directed abstract-object model:
//!
//! * every mutex-typed struct field is one abstract object per
//!   `(struct, field)` — all instances of a struct may alias, a sound
//!   over-approximation exactly in the spirit of may-alias;
//! * every package-level or local mutex variable is its own object;
//! * pointer variables (`*sync.Mutex` locals, params, pointer fields)
//!   carry inclusion constraints from assignments, address-of seeds,
//!   call-site parameter bindings and returns, solved to fixpoint;
//! * receivers the analysis cannot name resolve to fresh opaque objects
//!   that never alias anything (their LU-points never pair).
//!
//! [`CallGraph`] resolves calls statically (the subset has no interface
//! dispatch): free functions by name, methods by receiver struct, closures
//! by literal identity; calls through function values are conservatively
//! marked *unknown*, which downstream analysis treats as HTM-unfit.

mod andersen;
mod callgraph;

pub use andersen::{ObjId, PointsTo};
pub use callgraph::{CallGraph, Closure};
