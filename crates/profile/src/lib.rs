//! Execution profiles for §5.2.6's hot-section filtering.
//!
//! Go programs are profiled with pprof: callstack samples aggregated into a
//! weighted call graph whose nodes carry inclusive (cumulative) and
//! exclusive (flat) times. GOCC uses only a sliver of that structure —
//! per-function inclusive time as a fraction of total execution — to skip
//! transforming critical sections "where the aggregated execution time is
//! less than 1% of the total execution time".
//!
//! This crate models that sliver: a [`Profile`] maps function names to
//! flat/cumulative nanoseconds plus caller→callee edge weights, parses a
//! small line-oriented text format (see [`Profile::parse`]), and answers
//! the analyzer's only question, [`Profile::is_hot`].

use std::collections::HashMap;
use std::fmt;

/// Default hotness threshold: 1% of total execution time (§5.2.6).
pub const DEFAULT_HOT_THRESHOLD: f64 = 0.01;

/// Per-function sample weights.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuncWeight {
    /// Exclusive (self) time, nanoseconds.
    pub flat_ns: u64,
    /// Inclusive (self + callees) time, nanoseconds.
    pub cum_ns: u64,
}

/// A parse error for the profile text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ProfileParseError {}

/// A weighted call-graph profile.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    total_ns: u64,
    funcs: HashMap<String, FuncWeight>,
    edges: HashMap<(String, String), u64>,
}

impl Profile {
    /// Creates an empty profile with a declared total time.
    #[must_use]
    pub fn with_total(total_ns: u64) -> Self {
        Profile {
            total_ns,
            ..Profile::default()
        }
    }

    /// Parses the text format:
    ///
    /// ```text
    /// # comments and blank lines are skipped
    /// total 1000000
    /// func Counter.Inc 1200 45000
    /// edge main Counter.Inc 45000
    /// ```
    pub fn parse(text: &str) -> Result<Profile, ProfileParseError> {
        let mut p = Profile::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| ProfileParseError {
                line: i + 1,
                message: message.into(),
            };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("total") => {
                    let v = parts.next().ok_or_else(|| err("missing total value"))?;
                    p.total_ns = v
                        .parse()
                        .map_err(|_| err("total must be an integer nanosecond count"))?;
                }
                Some("func") => {
                    let name = parts.next().ok_or_else(|| err("missing function name"))?;
                    let flat: u64 = parts
                        .next()
                        .ok_or_else(|| err("missing flat time"))?
                        .parse()
                        .map_err(|_| err("flat time must be an integer"))?;
                    let cum: u64 = parts
                        .next()
                        .ok_or_else(|| err("missing cumulative time"))?
                        .parse()
                        .map_err(|_| err("cumulative time must be an integer"))?;
                    p.funcs.insert(
                        name.to_string(),
                        FuncWeight {
                            flat_ns: flat,
                            cum_ns: cum,
                        },
                    );
                }
                Some("edge") => {
                    let caller = parts.next().ok_or_else(|| err("missing caller"))?;
                    let callee = parts.next().ok_or_else(|| err("missing callee"))?;
                    let w: u64 = parts
                        .next()
                        .ok_or_else(|| err("missing edge weight"))?
                        .parse()
                        .map_err(|_| err("edge weight must be an integer"))?;
                    *p.edges
                        .entry((caller.to_string(), callee.to_string()))
                        .or_insert(0) += w;
                }
                Some(other) => return Err(err(&format!("unknown record kind `{other}`"))),
                None => {}
            }
        }
        Ok(p)
    }

    /// Serializes back to the text format (round-trips with [`Self::parse`]).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("total {}\n", self.total_ns);
        let mut funcs: Vec<_> = self.funcs.iter().collect();
        funcs.sort_by(|a, b| a.0.cmp(b.0));
        for (name, w) in funcs {
            out.push_str(&format!("func {name} {} {}\n", w.flat_ns, w.cum_ns));
        }
        let mut edges: Vec<_> = self.edges.iter().collect();
        edges.sort_by(|a, b| a.0.cmp(b.0));
        for ((caller, callee), w) in edges {
            out.push_str(&format!("edge {caller} {callee} {w}\n"));
        }
        out
    }

    /// Records inclusive/exclusive time for a function (builder API).
    pub fn record_func(&mut self, name: &str, flat_ns: u64, cum_ns: u64) {
        let w = self.funcs.entry(name.to_string()).or_default();
        w.flat_ns += flat_ns;
        w.cum_ns += cum_ns;
    }

    /// Records a caller→callee edge weight.
    pub fn record_edge(&mut self, caller: &str, callee: &str, ns: u64) {
        *self
            .edges
            .entry((caller.to_string(), callee.to_string()))
            .or_insert(0) += ns;
    }

    /// Total profiled time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// The weight record for a function, if sampled.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<FuncWeight> {
        self.funcs.get(name).copied()
    }

    /// Inclusive-time fraction of a function in [0, 1]. Unknown functions
    /// and closure units (`name$k`) fall back to their enclosing function.
    #[must_use]
    pub fn hot_fraction(&self, name: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let direct = self
            .funcs
            .get(name)
            .or_else(|| self.funcs.get(name.split('$').next().unwrap_or(name)));
        direct
            .map(|w| w.cum_ns as f64 / self.total_ns as f64)
            .unwrap_or(0.0)
    }

    /// §5.2.6's filter: at least `threshold` of total time spent in (or
    /// below) the function. With no profile data loaded, every function is
    /// treated as hot — profiles are an optional input to GOCC.
    #[must_use]
    pub fn is_hot(&self, name: &str, threshold: f64) -> bool {
        if self.is_empty() {
            return true;
        }
        self.hot_fraction(name) >= threshold
    }

    /// Whether the profile carries no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty() && self.total_ns == 0
    }

    /// Edge weight between two functions.
    #[must_use]
    pub fn edge(&self, caller: &str, callee: &str) -> u64 {
        self.edges
            .get(&(caller.to_string(), callee.to_string()))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "\
# synthetic profile
total 1000000

func hot.Path 5000 250000
func warm.Path 100 10000
func cold.Path 10 900
edge main hot.Path 250000
edge hot.Path warm.Path 10000
";

    #[test]
    fn parse_and_query() {
        let p = Profile::parse(TEXT).unwrap();
        assert_eq!(p.total_ns(), 1_000_000);
        assert_eq!(p.func("hot.Path").unwrap().cum_ns, 250_000);
        assert_eq!(p.edge("main", "hot.Path"), 250_000);
        assert!((p.hot_fraction("hot.Path") - 0.25).abs() < 1e-9);
    }

    #[test]
    fn hotness_threshold() {
        let p = Profile::parse(TEXT).unwrap();
        assert!(p.is_hot("hot.Path", DEFAULT_HOT_THRESHOLD));
        assert!(
            p.is_hot("warm.Path", DEFAULT_HOT_THRESHOLD),
            "exactly 1% is hot"
        );
        assert!(!p.is_hot("cold.Path", DEFAULT_HOT_THRESHOLD));
        assert!(!p.is_hot("unknown.Func", DEFAULT_HOT_THRESHOLD));
    }

    #[test]
    fn empty_profile_everything_hot() {
        let p = Profile::default();
        assert!(p.is_hot("anything", DEFAULT_HOT_THRESHOLD));
    }

    #[test]
    fn closure_units_inherit_enclosing_heat() {
        let p = Profile::parse(TEXT).unwrap();
        assert!(p.is_hot("hot.Path$1", DEFAULT_HOT_THRESHOLD));
        assert!(!p.is_hot("cold.Path$2", DEFAULT_HOT_THRESHOLD));
    }

    #[test]
    fn roundtrip_text() {
        let p = Profile::parse(TEXT).unwrap();
        let p2 = Profile::parse(&p.to_text()).unwrap();
        assert_eq!(p2.total_ns(), p.total_ns());
        assert_eq!(p2.func("warm.Path"), p.func("warm.Path"));
        assert_eq!(p2.edge("hot.Path", "warm.Path"), 10_000);
    }

    #[test]
    fn parse_errors() {
        assert!(Profile::parse("bogus line").is_err());
        assert!(Profile::parse("total abc").is_err());
        let err = Profile::parse("func onlyname").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn builder_api() {
        let mut p = Profile::with_total(100);
        p.record_func("f", 10, 60);
        p.record_func("f", 0, 10);
        p.record_edge("main", "f", 70);
        assert_eq!(p.func("f").unwrap().cum_ns, 70);
        assert!(p.is_hot("f", 0.5));
    }
}
