//! Primary/replica replication, built on the paper's own mechanism: a
//! replica applies a batch only if `batch.prev_version` matches its
//! shard's version — the same optimistic check a GOCC section validates
//! with — and a mismatch is a `ConcurrencyConflict`-style NAK that
//! triggers resynchronization instead of a blind overwrite.
//!
//! # Pieces
//!
//! * [`ReplFeed`] — the primary-side hub. It implements
//!   [`gocc_wal::DurableTap`], so the WAL syncer hands it every record
//!   the instant the record enters the durable prefix. Records arrive in
//!   pipe order (staging happens outside the critical section); a
//!   per-shard reorder buffer releases them in `seq` order, and each
//!   subscribed replica connection gets a bounded per-shard queue of the
//!   released stream. A queue that overflows (slow replica) is dropped
//!   and the shard flagged for snapshot resync — replication may never
//!   stall the syncer or grow without bound.
//! * **Acks, leases and fencing** — every `REPL_ACK` updates the
//!   subscriber's per-shard watermark and its lease. With
//!   `min_acks > 0`, a primary write is only releasable once
//!   [`ReplFeed::wait_replicated`] observes `min_acks` subscribers at or
//!   past the write's version; and once fewer than `min_acks`
//!   subscribers have acked within the lease window the primary is
//!   **fenced**: writes fail fast instead of acking into a partition.
//!   That is the split-brain guard — a partitioned old primary stops
//!   acknowledging on its own clock, before the other side promotes.
//! * [`SnapshotAssembler`] — replica-side accumulator for chunked
//!   `REPL_BATCH` frames carrying `SNAP` flags; the assembled image is
//!   applied atomically at `FIN`.
//! * [`resync_backoff`] — bounded, seeded backoff for replica reconnect
//!   and resync loops, deterministic per (seed, stream, attempt).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gocc_telemetry::{JsonWriter, SplitMix64};
use gocc_wal::{DurableTap, Staged, WalKind};
use gocc_wire::{ReplRecord, REPL_FLAG_FIN, REPL_FLAG_RESET, REPL_KIND_DEL};

/// Replication tuning for one primary.
#[derive(Clone, Debug)]
pub struct ReplConfig {
    /// Store shard count; versions, queues and acks are all per shard.
    pub shards: usize,
    /// Subscribers that must ack a write before it is releasable, and
    /// that must stay inside the lease for the primary to keep acking.
    /// `0` = asynchronous replication (no gating, no fencing).
    pub min_acks: usize,
    /// Lease window: a subscriber counts as live while its last ack is
    /// younger than this; with fewer than `min_acks` live subscribers
    /// the primary is fenced.
    pub lease: Duration,
    /// Per-subscriber cap on queued records (across shards). Overflow
    /// drops the slow shard's queue and flags it for snapshot resync.
    pub max_queue: usize,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            shards: 1,
            min_acks: 0,
            lease: Duration::from_millis(500),
            max_queue: 64 * 1024,
        }
    }
}

/// Why [`ReplFeed::wait_replicated`] gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplWaitError {
    /// Fewer than `min_acks` subscribers inside the lease: the primary
    /// is fenced and must not acknowledge.
    Fenced,
    /// Enough subscribers are live but the write did not replicate in
    /// time.
    Timeout,
}

/// One drained batch, ready to encode as a `REPL_BATCH` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutBatch {
    /// Shard the records belong to.
    pub shard: u32,
    /// Version check: the replica applies only if its shard is here.
    pub prev_version: u64,
    /// Primary's logical clock for the shard (TTL coherence).
    pub now: u64,
    /// Records, in commit (`seq`) order; moves the shard
    /// `prev_version → prev_version + records.len()`.
    pub records: Vec<ReplRecord>,
}

/// Where a subscriber's shard stream stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Queue is live and drainable.
    Streaming,
    /// Gap detected (overflow or NAK); awaiting a snapshot resync.
    Needed,
    /// Resync armed: records queue again behind the in-flight snapshot
    /// but must not be drained until the cut.
    Armed,
}

struct SubShard {
    /// Released records not yet drained, with their seqs (contiguous).
    queue: VecDeque<(u64, ReplRecord)>,
    /// Stream version before the first queued record — equivalently, the
    /// version the replica reaches once everything drained so far is
    /// applied. Heartbeats carry this.
    base: u64,
    /// Highest version this subscriber acked.
    acked: u64,
    /// Records with `seq <=` this are covered by a sent snapshot and
    /// skipped on release.
    skip_until: u64,
    phase: Phase,
}

struct SubState {
    shards: Vec<SubShard>,
    last_ack: Instant,
    queued_total: usize,
}

struct ShardState {
    /// Durable, contiguously released version.
    version: u64,
    /// Shard logical clock as of the last released record.
    now: u64,
    /// Out-of-order arrivals waiting for the gap to fill: `seq → record`.
    pending: BTreeMap<u64, ReplRecord>,
}

struct FeedInner {
    shards: Vec<ShardState>,
    subs: Vec<Option<SubState>>,
}

/// Lock-free replication counters for STATS.
#[derive(Debug, Default)]
pub struct ReplCounters {
    batches_sent: AtomicU64,
    records_sent: AtomicU64,
    acks: AtomicU64,
    naks: AtomicU64,
    resyncs: AtomicU64,
    overflows: AtomicU64,
    fenced_rejects: AtomicU64,
}

impl ReplCounters {
    /// Batches handed to connections for encoding.
    #[must_use]
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent.load(Ordering::Relaxed)
    }

    /// Records across those batches.
    #[must_use]
    pub fn records_sent(&self) -> u64 {
        self.records_sent.load(Ordering::Relaxed)
    }

    /// Positive acknowledgements received.
    #[must_use]
    pub fn acks(&self) -> u64 {
        self.acks.load(Ordering::Relaxed)
    }

    /// Version-mismatch NAKs received.
    #[must_use]
    pub fn naks(&self) -> u64 {
        self.naks.load(Ordering::Relaxed)
    }

    /// Snapshot resyncs completed (cut accepted).
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    /// Queues dropped for overflow (each forces a resync).
    #[must_use]
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Writes rejected because the primary was fenced.
    #[must_use]
    pub fn fenced_rejects(&self) -> u64 {
        self.fenced_rejects.load(Ordering::Relaxed)
    }

    /// Counts a write rejected by a fencing check done *outside*
    /// [`ReplFeed::wait_replicated`] (the server's cheap pre-check).
    pub fn note_fenced_reject(&self) {
        self.fenced_rejects.fetch_add(1, Ordering::Relaxed);
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The primary-side replication hub. See the module docs for the model.
pub struct ReplFeed {
    cfg: ReplConfig,
    inner: Mutex<FeedInner>,
    /// Signaled on every ack (for [`ReplFeed::wait_replicated`]).
    ack_cv: Condvar,
    counters: ReplCounters,
}

/// Subscriber handle: an index into the feed's slot table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubId(usize);

impl ReplFeed {
    /// A feed whose per-shard versions start at `initial_versions` — the
    /// primary's recovered cache seqs, so a replica that is exactly
    /// caught up subscribes without a resync.
    #[must_use]
    pub fn new(cfg: ReplConfig, initial_versions: &[u64]) -> Self {
        assert_eq!(cfg.shards, initial_versions.len(), "one version per shard");
        let shards = initial_versions
            .iter()
            .map(|&v| ShardState {
                version: v,
                now: 0,
                pending: BTreeMap::new(),
            })
            .collect();
        ReplFeed {
            cfg,
            inner: Mutex::new(FeedInner {
                shards,
                subs: Vec::new(),
            }),
            ack_cv: Condvar::new(),
            counters: ReplCounters::default(),
        }
    }

    /// The configured replication knobs.
    #[must_use]
    pub fn config(&self) -> &ReplConfig {
        &self.cfg
    }

    /// The counters STATS reports.
    #[must_use]
    pub fn counters(&self) -> &ReplCounters {
        &self.counters
    }

    /// Current released (durable, contiguous) version per shard.
    #[must_use]
    pub fn versions(&self) -> Vec<u64> {
        lock_unpoisoned(&self.inner)
            .shards
            .iter()
            .map(|s| s.version)
            .collect()
    }

    /// Live subscriber count.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        lock_unpoisoned(&self.inner)
            .subs
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Registers a replica that currently holds `versions`. Shards where
    /// the replica matches the feed stream directly; mismatched shards
    /// start in the resync-needed state.
    #[must_use]
    pub fn subscribe(&self, versions: &[u64]) -> SubId {
        let mut inner = lock_unpoisoned(&self.inner);
        let shards = (0..self.cfg.shards)
            .map(|s| {
                let have = versions.get(s).copied().unwrap_or(0);
                let want = inner.shards[s].version;
                SubShard {
                    queue: VecDeque::new(),
                    base: want,
                    acked: have.min(want),
                    skip_until: 0,
                    phase: if have == want {
                        Phase::Streaming
                    } else {
                        Phase::Needed
                    },
                }
            })
            .collect();
        let sub = SubState {
            shards,
            last_ack: Instant::now(),
            queued_total: 0,
        };
        let id = match inner.subs.iter().position(Option::is_none) {
            Some(slot) => {
                inner.subs[slot] = Some(sub);
                slot
            }
            None => {
                inner.subs.push(Some(sub));
                inner.subs.len() - 1
            }
        };
        SubId(id)
    }

    /// Drops a subscriber (its connection closed).
    pub fn unsubscribe(&self, id: SubId) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(slot) = inner.subs.get_mut(id.0) {
            *slot = None;
        }
        // A departed subscriber may have been the one a waiter needed;
        // wake waiters so they re-evaluate fencing.
        self.ack_cv.notify_all();
    }

    /// Feeds released records into every live subscriber's queues.
    /// Caller holds the lock.
    fn release(inner: &mut FeedInner, cfg: &ReplConfig, counters: &ReplCounters, shard: usize) {
        let state = &mut inner.shards[shard];
        let mut released: Vec<(u64, ReplRecord)> = Vec::new();
        while let Some(rec) = state.pending.remove(&(state.version + 1)) {
            state.version += 1;
            released.push((state.version, rec));
        }
        if released.is_empty() {
            return;
        }
        for sub in inner.subs.iter_mut().flatten() {
            let ss = &mut sub.shards[shard];
            match ss.phase {
                Phase::Needed => continue,
                Phase::Streaming | Phase::Armed => {}
            }
            for &(seq, rec) in &released {
                if seq <= ss.skip_until {
                    continue;
                }
                ss.queue.push_back((seq, rec));
                sub.queued_total += 1;
            }
            // Overflow sheds the worst offender, not whichever shard
            // happened to be releasing: drop whole per-shard queues,
            // largest first, until back under the cap. Each dropped
            // shard is flagged for snapshot resync (an armed shard
            // re-flags too; its in-flight cut will fail and restart).
            while sub.queued_total > cfg.max_queue {
                let Some(worst) = sub
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|(_, ss)| !ss.queue.is_empty())
                    .max_by_key(|(_, ss)| ss.queue.len())
                    .map(|(s, _)| s)
                else {
                    break;
                };
                let ss = &mut sub.shards[worst];
                sub.queued_total -= ss.queue.len();
                ss.queue.clear();
                ss.phase = Phase::Needed;
                counters.overflows.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Ingests records for `shard` in any order; contiguous-`seq` runs
    /// past the released version fan out to subscribers. Duplicates
    /// (seq at or below the released version) are dropped.
    pub fn publish(&self, shard: u32, records: &[Staged]) {
        let shard = shard as usize;
        if shard >= self.cfg.shards {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        {
            let state = &mut inner.shards[shard];
            for rec in records {
                if rec.seq <= state.version {
                    continue;
                }
                state.pending.insert(rec.seq, staged_to_record(rec));
            }
        }
        Self::release(&mut inner, &self.cfg, &self.counters, shard);
    }

    /// Re-bases the feed on `versions` — the promotion path. A replica's
    /// feed goes stale while batches apply around it (apply bypasses the
    /// tap), so on promotion the new primary snaps its feed to the store's
    /// current versions. Pending out-of-order records are dropped, and any
    /// existing subscriber whose stream no longer lines up is flagged for
    /// snapshot resync.
    pub fn reset_versions(&self, versions: &[u64]) {
        let mut inner = lock_unpoisoned(&self.inner);
        assert_eq!(versions.len(), inner.shards.len(), "one version per shard");
        for (s, &v) in versions.iter().enumerate() {
            inner.shards[s].version = v;
            inner.shards[s].pending.clear();
        }
        for sub in inner.subs.iter_mut().flatten() {
            for (s, ss) in sub.shards.iter_mut().enumerate() {
                if ss.phase == Phase::Streaming && ss.queue.is_empty() && ss.base == versions[s] {
                    continue;
                }
                sub.queued_total -= ss.queue.len();
                ss.queue.clear();
                ss.phase = Phase::Needed;
            }
        }
    }

    /// Advances shard `shard`'s logical clock (TTL coherence for batches).
    pub fn observe_clock(&self, shard: u32, now: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(s) = inner.shards.get_mut(shard as usize) {
            if now > s.now {
                s.now = now;
            }
        }
    }

    /// Pops up to `max_records` queued records for `id`, grouped into one
    /// version-stamped batch per shard. Only streaming shards drain;
    /// armed shards hold their queue behind the in-flight snapshot.
    #[must_use]
    pub fn drain(&self, id: SubId, max_records: usize) -> Vec<OutBatch> {
        let mut inner = lock_unpoisoned(&self.inner);
        let inner = &mut *inner;
        let Some(Some(sub)) = inner.subs.get_mut(id.0) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut budget = max_records;
        for (s, ss) in sub.shards.iter_mut().enumerate() {
            if budget == 0 {
                break;
            }
            if ss.phase != Phase::Streaming || ss.queue.is_empty() {
                continue;
            }
            let take = ss.queue.len().min(budget);
            let mut records = Vec::with_capacity(take);
            let prev_version = ss.base;
            for _ in 0..take {
                let (seq, rec) = ss.queue.pop_front().expect("len checked");
                debug_assert_eq!(seq, ss.base + records.len() as u64 + 1);
                records.push(rec);
            }
            budget -= take;
            ss.base += take as u64;
            sub.queued_total -= take;
            self.counters.batches_sent.fetch_add(1, Ordering::Relaxed);
            self.counters
                .records_sent
                .fetch_add(take as u64, Ordering::Relaxed);
            out.push(OutBatch {
                shard: s as u32,
                prev_version,
                now: inner.shards[s].now,
                records,
            });
        }
        out
    }

    /// Per-shard versions the subscriber reaches once everything drained
    /// so far is applied — what a heartbeat stamps as `prev_version`.
    /// Shards not currently streaming report `None` (no heartbeat while
    /// a resync is pending; the snapshot is the keepalive).
    #[must_use]
    pub fn heartbeat_versions(&self, id: SubId) -> Vec<Option<u64>> {
        let inner = lock_unpoisoned(&self.inner);
        match inner.subs.get(id.0) {
            Some(Some(sub)) => sub
                .shards
                .iter()
                .map(|ss| {
                    if ss.phase == Phase::Streaming && ss.queue.is_empty() {
                        Some(ss.base)
                    } else {
                        None
                    }
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Records an `REPL_ACK` from `id`: refreshes the lease and, on a
    /// NAK, flags the shard for snapshot resync.
    pub fn note_ack(&self, id: SubId, shard: u32, version: u64, nak: bool) {
        let mut inner = lock_unpoisoned(&self.inner);
        let Some(Some(sub)) = inner.subs.get_mut(id.0) else {
            return;
        };
        sub.last_ack = Instant::now();
        let Some(ss) = sub.shards.get_mut(shard as usize) else {
            return;
        };
        if nak {
            // ConcurrencyConflict on the wire: the replica's version is
            // not what the stream assumed. Drop the queue and resync.
            sub.queued_total -= ss.queue.len();
            ss.queue.clear();
            ss.phase = Phase::Needed;
            self.counters.naks.fetch_add(1, Ordering::Relaxed);
        } else {
            ss.acked = ss.acked.max(version);
            self.counters.acks.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.ack_cv.notify_all();
    }

    /// Shards of `id` waiting for a snapshot resync.
    #[must_use]
    pub fn resync_needed(&self, id: SubId) -> Vec<u32> {
        let inner = lock_unpoisoned(&self.inner);
        match inner.subs.get(id.0) {
            Some(Some(sub)) => sub
                .shards
                .iter()
                .enumerate()
                .filter(|(_, ss)| ss.phase == Phase::Needed)
                .map(|(s, _)| s as u32)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Arms a resync on `(id, shard)`: from now on released records
    /// queue again (held behind the snapshot), so the connection can take
    /// a store snapshot with nothing falling in the gap.
    pub fn arm_resync(&self, id: SubId, shard: u32) {
        let mut inner = lock_unpoisoned(&self.inner);
        let base = inner.shards[shard as usize].version;
        if let Some(Some(sub)) = inner.subs.get_mut(id.0) {
            let ss = &mut sub.shards[shard as usize];
            sub.queued_total -= ss.queue.len();
            ss.queue.clear();
            ss.base = base;
            ss.skip_until = 0;
            ss.phase = Phase::Armed;
        }
    }

    /// Completes a resync after the snapshot (taken at `snap_version`)
    /// was queued for sending: drops queued records the snapshot already
    /// covers and resumes streaming from `snap_version`. Returns `false`
    /// if the shard is no longer armed (a concurrent overflow re-flagged
    /// it) — the caller restarts the resync.
    pub fn resync_cut(&self, id: SubId, shard: u32, snap_version: u64) -> bool {
        let mut inner = lock_unpoisoned(&self.inner);
        let Some(Some(sub)) = inner.subs.get_mut(id.0) else {
            return false;
        };
        let ss = &mut sub.shards[shard as usize];
        if ss.phase != Phase::Armed {
            return false;
        }
        while let Some(&(seq, _)) = ss.queue.front() {
            if seq > snap_version {
                break;
            }
            ss.queue.pop_front();
            sub.queued_total -= 1;
        }
        if ss.queue.is_empty() {
            // Snapshot is ahead of the released stream (it came from the
            // live cache): skip released records it already covers.
            ss.base = snap_version.max(ss.base);
            ss.skip_until = snap_version;
        } else {
            ss.base = snap_version;
        }
        ss.acked = ss.acked.max(snap_version);
        ss.phase = Phase::Streaming;
        self.counters.resyncs.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn live_subs_locked(inner: &FeedInner, lease: Duration) -> usize {
        inner
            .subs
            .iter()
            .flatten()
            .filter(|sub| sub.last_ack.elapsed() <= lease)
            .count()
    }

    /// Whether the primary is fenced: `min_acks > 0` and fewer than that
    /// many subscribers acked within the lease window. A fenced primary
    /// must not acknowledge writes.
    #[must_use]
    pub fn fenced(&self) -> bool {
        if self.cfg.min_acks == 0 {
            return false;
        }
        let inner = lock_unpoisoned(&self.inner);
        Self::live_subs_locked(&inner, self.cfg.lease) < self.cfg.min_acks
    }

    /// Blocks until `min_acks` subscribers acked shard `shard` at or
    /// past `version`, the primary turns out fenced, or `timeout`
    /// elapses. With `min_acks == 0` this returns immediately.
    pub fn wait_replicated(
        &self,
        shard: u32,
        version: u64,
        timeout: Duration,
    ) -> Result<(), ReplWaitError> {
        if self.cfg.min_acks == 0 {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            let acked = inner
                .subs
                .iter()
                .flatten()
                .filter(|sub| {
                    sub.shards
                        .get(shard as usize)
                        .is_some_and(|ss| ss.acked >= version)
                })
                .count();
            if acked >= self.cfg.min_acks {
                return Ok(());
            }
            if Self::live_subs_locked(&inner, self.cfg.lease) < self.cfg.min_acks {
                self.counters.fenced_rejects.fetch_add(1, Ordering::Relaxed);
                return Err(ReplWaitError::Fenced);
            }
            if Instant::now() >= deadline {
                return Err(ReplWaitError::Timeout);
            }
            inner = self
                .ack_cv
                .wait_timeout(inner, Duration::from_millis(2))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// The STATS `repl` object for a primary.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let versions = self.versions();
        let c = &self.counters;
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("role", "primary")
            .field_u64("min_acks", self.cfg.min_acks as u64)
            .field_u64("lease_ms", self.cfg.lease.as_millis() as u64)
            .field_bool("fenced", self.fenced())
            .field_u64("subscribers", self.subscriber_count() as u64)
            .key("versions")
            .begin_array();
        for v in versions {
            w.u64(v);
        }
        w.end_array()
            .field_u64("batches_sent", c.batches_sent())
            .field_u64("records_sent", c.records_sent())
            .field_u64("acks", c.acks())
            .field_u64("naks", c.naks())
            .field_u64("resyncs", c.resyncs())
            .field_u64("overflows", c.overflows())
            .field_u64("fenced_rejects", c.fenced_rejects())
            .end_object();
        w.finish()
    }
}

impl DurableTap for ReplFeed {
    fn publish(&self, shard: u32, records: &[Staged]) {
        ReplFeed::publish(self, shard, records);
    }
}

/// Converts a WAL post-image into its wire record.
#[must_use]
pub fn staged_to_record(rec: &Staged) -> ReplRecord {
    ReplRecord {
        kind: match rec.kind {
            WalKind::Put => gocc_wire::REPL_KIND_PUT,
            WalKind::Del => REPL_KIND_DEL,
            WalKind::PutVal => gocc_wire::REPL_KIND_PUTVAL,
        },
        key: rec.key,
        value: rec.value,
        exp: rec.exp,
    }
}

/// Replica-side accumulator for chunked snapshot resync batches.
///
/// `RESET` starts (or restarts) a shard's image; plain `SNAP` chunks
/// append; `FIN` yields the complete image to apply atomically. Chunks
/// for a shard that never saw `RESET` are ignored (a torn earlier
/// resync), as is a `FIN` without one.
#[derive(Debug, Default)]
pub struct SnapshotAssembler {
    images: BTreeMap<u32, Vec<(u64, u64, u64)>>,
}

impl SnapshotAssembler {
    /// An empty assembler.
    #[must_use]
    pub fn new() -> Self {
        SnapshotAssembler::default()
    }

    /// Feeds one `SNAP` batch. Returns the complete `(entries, version)`
    /// image when `flags` carries `FIN`.
    pub fn feed(
        &mut self,
        shard: u32,
        flags: u8,
        prev_version: u64,
        records: &[ReplRecord],
    ) -> Option<(Vec<(u64, u64, u64)>, u64)> {
        if flags & REPL_FLAG_RESET != 0 {
            self.images.insert(shard, Vec::new());
        }
        if let Some(entries) = self.images.get_mut(&shard) {
            entries.extend(records.iter().map(|r: &ReplRecord| (r.key, r.value, r.exp)));
        } else {
            return None;
        }
        if flags & REPL_FLAG_FIN != 0 {
            return self
                .images
                .remove(&shard)
                .map(|entries| (entries, prev_version));
        }
        None
    }

    /// Shards with a resync currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.images.len()
    }
}

/// Bounded seeded backoff for reconnect/resync loops: deterministic per
/// `(seed, stream, attempt)`, growing 2^attempt up to `cap`, with ±25%
/// seeded jitter so lockstep replicas do not thundering-herd a promoted
/// primary.
#[must_use]
pub fn resync_backoff(
    seed: u64,
    stream: u64,
    attempt: u32,
    base: Duration,
    cap: Duration,
) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap).as_nanos() as u64;
    // One independent draw per (seed, stream, attempt), same xor-fold the
    // fault plans use for replay-by-seed.
    let folded = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03);
    let draw = SplitMix64::new(folded).next_u64();
    // Jitter in [0.75, 1.25).
    let jitter = 0.75 + (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 0.5;
    Duration::from_nanos((capped as f64 * jitter) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(shard: u32, seq: u64, key: u64, value: u64) -> Staged {
        Staged {
            shard,
            seq,
            kind: WalKind::Put,
            key,
            value,
            exp: 0,
        }
    }

    fn feed(shards: usize) -> ReplFeed {
        ReplFeed::new(
            ReplConfig {
                shards,
                ..ReplConfig::default()
            },
            &vec![0; shards],
        )
    }

    #[test]
    fn pipe_order_is_reordered_into_seq_order() {
        let f = feed(1);
        let sub = f.subscribe(&[0]);
        // Publish 3,1 then 2: nothing streams past the gap until it fills.
        f.publish(0, &[staged(0, 3, 30, 300), staged(0, 1, 10, 100)]);
        let b = f.drain(sub, 100);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].prev_version, 0);
        assert_eq!(b[0].records.len(), 1, "only seq 1 is contiguous");
        f.publish(0, &[staged(0, 2, 20, 200)]);
        let b = f.drain(sub, 100);
        assert_eq!(b[0].prev_version, 1);
        let keys: Vec<u64> = b[0].records.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![20, 30], "released in seq order");
        assert_eq!(f.versions(), vec![3]);
    }

    #[test]
    fn duplicate_publishes_are_dropped() {
        let f = feed(1);
        let sub = f.subscribe(&[0]);
        f.publish(0, &[staged(0, 1, 1, 1), staged(0, 2, 2, 2)]);
        f.publish(0, &[staged(0, 1, 1, 999), staged(0, 2, 2, 999)]);
        let b = f.drain(sub, 100);
        assert_eq!(b[0].records.len(), 2);
        assert_eq!(b[0].records[0].value, 1, "replay did not overwrite");
        assert!(f.drain(sub, 100).is_empty());
    }

    #[test]
    fn behind_subscriber_starts_in_resync() {
        let f = feed(2);
        f.publish(0, &[staged(0, 1, 1, 1)]);
        let sub = f.subscribe(&[0, 0]); // shard 0 behind, shard 1 matches
        assert_eq!(f.resync_needed(sub), vec![0]);
        // Streamed shard works immediately.
        f.publish(1, &[staged(1, 1, 7, 70)]);
        let b = f.drain(sub, 100);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].shard, 1);
    }

    #[test]
    fn resync_arm_cut_resumes_the_stream_without_loss_or_replay() {
        let f = feed(1);
        f.publish(0, &[staged(0, 1, 1, 1), staged(0, 2, 2, 2)]);
        let sub = f.subscribe(&[0]); // behind: needs resync
        assert_eq!(f.resync_needed(sub), vec![0]);
        f.arm_resync(sub, 0);
        // Records released while armed queue behind the snapshot.
        f.publish(0, &[staged(0, 3, 3, 3)]);
        assert!(f.drain(sub, 100).is_empty(), "armed shard must not drain");
        // Snapshot taken from the live cache at version 4 — ahead of the
        // released stream (seq 4 not yet durable).
        assert!(f.resync_cut(sub, 0, 4));
        assert!(f.drain(sub, 100).is_empty(), "snapshot covered seq 3");
        // seq 4 releases later: covered by the snapshot, skipped.
        f.publish(0, &[staged(0, 4, 4, 4)]);
        assert!(f.drain(sub, 100).is_empty());
        // seq 5 is the first post-snapshot record.
        f.publish(0, &[staged(0, 5, 5, 5)]);
        let b = f.drain(sub, 100);
        assert_eq!(b[0].prev_version, 4);
        assert_eq!(b[0].records.len(), 1);
        assert_eq!(b[0].records[0].key, 5);
        assert_eq!(f.counters().resyncs(), 1);
    }

    #[test]
    fn overflow_drops_the_queue_and_flags_resync() {
        let f = ReplFeed::new(
            ReplConfig {
                shards: 1,
                max_queue: 4,
                ..ReplConfig::default()
            },
            &[0],
        );
        let sub = f.subscribe(&[0]);
        let recs: Vec<Staged> = (1..=10).map(|i| staged(0, i, i, i)).collect();
        f.publish(0, &recs);
        assert_eq!(f.counters().overflows(), 1);
        assert_eq!(f.resync_needed(sub), vec![0]);
        assert!(f.drain(sub, 100).is_empty(), "overflowed queue was dropped");
    }

    #[test]
    fn overflow_drops_the_backlogged_shard_not_the_releasing_one() {
        let f = ReplFeed::new(
            ReplConfig {
                shards: 2,
                max_queue: 4,
                ..ReplConfig::default()
            },
            &[0, 0],
        );
        let sub = f.subscribe(&[0, 0]);
        // Shard 0 holds the backlog (4 records, at the cap but not over).
        let backlog: Vec<Staged> = (1..=4).map(|i| staged(0, i, i, i)).collect();
        f.publish(0, &backlog);
        assert_eq!(f.counters().overflows(), 0);
        // One record on healthy shard 1 tips the total over the cap: the
        // drop must hit shard 0's backlog, not the shard releasing now.
        f.publish(1, &[staged(1, 1, 77, 770)]);
        assert_eq!(f.counters().overflows(), 1);
        assert_eq!(f.resync_needed(sub), vec![0], "backlogged shard resyncs");
        let b = f.drain(sub, 100);
        assert_eq!(b.len(), 1, "healthy shard kept its queue");
        assert_eq!(b[0].shard, 1);
        assert_eq!(b[0].records[0].key, 77);
    }

    #[test]
    fn nak_flags_resync() {
        let f = feed(1);
        let sub = f.subscribe(&[0]);
        f.publish(0, &[staged(0, 1, 1, 1)]);
        let _ = f.drain(sub, 100);
        f.note_ack(sub, 0, 0, true);
        assert_eq!(f.resync_needed(sub), vec![0]);
        assert_eq!(f.counters().naks(), 1);
    }

    #[test]
    fn wait_replicated_gates_on_min_acks() {
        let f = ReplFeed::new(
            ReplConfig {
                shards: 1,
                min_acks: 1,
                lease: Duration::from_secs(10),
                ..ReplConfig::default()
            },
            &[0],
        );
        let sub = f.subscribe(&[0]);
        f.publish(0, &[staged(0, 1, 1, 1)]);
        assert_eq!(
            f.wait_replicated(0, 1, Duration::from_millis(20)),
            Err(ReplWaitError::Timeout)
        );
        f.note_ack(sub, 0, 1, false);
        assert_eq!(f.wait_replicated(0, 1, Duration::from_millis(20)), Ok(()));
    }

    #[test]
    fn lease_expiry_fences_the_primary() {
        let f = ReplFeed::new(
            ReplConfig {
                shards: 1,
                min_acks: 1,
                lease: Duration::from_millis(30),
                ..ReplConfig::default()
            },
            &[0],
        );
        let sub = f.subscribe(&[0]);
        f.note_ack(sub, 0, 0, false);
        assert!(!f.fenced(), "fresh ack holds the lease");
        std::thread::sleep(Duration::from_millis(60));
        assert!(f.fenced(), "silence past the lease fences the primary");
        assert_eq!(
            f.wait_replicated(0, 5, Duration::from_millis(50)),
            Err(ReplWaitError::Fenced)
        );
        assert!(f.counters().fenced_rejects() >= 1);
        // An ack from the replica un-fences.
        f.note_ack(sub, 0, 5, false);
        assert!(!f.fenced());
        assert_eq!(f.wait_replicated(0, 5, Duration::from_millis(20)), Ok(()));
    }

    #[test]
    fn heartbeat_versions_track_the_drained_stream() {
        let f = feed(2);
        let sub = f.subscribe(&[0, 0]);
        assert_eq!(f.heartbeat_versions(sub), vec![Some(0), Some(0)]);
        f.publish(0, &[staged(0, 1, 1, 1)]);
        // Undrained queue: no heartbeat (the data batch is the keepalive).
        assert_eq!(f.heartbeat_versions(sub)[0], None);
        let _ = f.drain(sub, 100);
        assert_eq!(f.heartbeat_versions(sub), vec![Some(1), Some(0)]);
    }

    #[test]
    fn reset_versions_rebases_the_feed_and_flags_stale_subscribers() {
        let f = feed(1);
        let sub = f.subscribe(&[0]);
        f.publish(0, &[staged(0, 1, 1, 1)]);
        let _ = f.drain(sub, 100);
        // Promotion: the store is at version 40 (applied via batches that
        // bypassed the tap).
        f.reset_versions(&[40]);
        assert_eq!(f.versions(), vec![40]);
        assert_eq!(f.resync_needed(sub), vec![0], "stale stream must resync");
        // Post-promotion writes stream from the new base.
        f.arm_resync(sub, 0);
        assert!(f.resync_cut(sub, 0, 40));
        f.publish(0, &[staged(0, 41, 9, 90)]);
        let b = f.drain(sub, 100);
        assert_eq!(b[0].prev_version, 40);
        assert_eq!(b[0].records[0].key, 9);
        // A subscriber already exactly at the new base keeps streaming.
        let fresh = f.subscribe(&[41]);
        f.reset_versions(&[41]);
        assert!(f.resync_needed(fresh).is_empty());
    }

    #[test]
    fn snapshot_assembler_handles_reset_chunks_and_fin() {
        let mut asm = SnapshotAssembler::new();
        let rec = |k: u64| ReplRecord {
            kind: gocc_wire::REPL_KIND_PUT,
            key: k,
            value: k * 2,
            exp: 0,
        };
        use gocc_wire::REPL_FLAG_SNAP;
        // Chunk without RESET: torn resync, ignored.
        assert!(asm.feed(0, REPL_FLAG_SNAP, 5, &[rec(9)]).is_none());
        assert!(asm
            .feed(0, REPL_FLAG_SNAP | REPL_FLAG_FIN, 5, &[])
            .is_none());
        // Proper RESET → chunk → FIN.
        assert!(asm
            .feed(0, REPL_FLAG_SNAP | REPL_FLAG_RESET, 7, &[rec(1)])
            .is_none());
        assert!(asm.feed(0, REPL_FLAG_SNAP, 7, &[rec(2)]).is_none());
        let (entries, version) = asm
            .feed(0, REPL_FLAG_SNAP | REPL_FLAG_FIN, 7, &[rec(3)])
            .expect("FIN completes the image");
        assert_eq!(version, 7);
        assert_eq!(entries, vec![(1, 2, 0), (2, 4, 0), (3, 6, 0)]);
        assert_eq!(asm.in_flight(), 0);
        // RESET mid-flight restarts.
        assert!(asm
            .feed(1, REPL_FLAG_SNAP | REPL_FLAG_RESET, 3, &[rec(8)])
            .is_none());
        assert!(asm
            .feed(1, REPL_FLAG_SNAP | REPL_FLAG_RESET, 4, &[rec(5)])
            .is_none());
        let (entries, version) = asm.feed(1, REPL_FLAG_SNAP | REPL_FLAG_FIN, 4, &[]).unwrap();
        assert_eq!(version, 4);
        assert_eq!(entries, vec![(5, 10, 0)]);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let a: Vec<Duration> = (0..8).map(|n| resync_backoff(7, 3, n, base, cap)).collect();
        let b: Vec<Duration> = (0..8).map(|n| resync_backoff(7, 3, n, base, cap)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for d in &a {
            assert!(*d <= cap.mul_f64(1.25), "bounded: {d:?}");
            assert!(*d >= base.mul_f64(0.74), "never collapses to zero: {d:?}");
        }
        assert!(a[5] > a[0], "grows before the cap");
        let c: Vec<Duration> = (0..8).map(|n| resync_backoff(8, 3, n, base, cap)).collect();
        assert_ne!(a, c, "seed changes the jitter");
    }

    #[test]
    fn stats_json_parses() {
        let f = feed(2);
        let sub = f.subscribe(&[0, 0]);
        f.publish(0, &[staged(0, 1, 1, 1)]);
        let _ = f.drain(sub, 10);
        f.note_ack(sub, 0, 1, false);
        let v = gocc_telemetry::JsonValue::parse(&f.stats_json()).expect("parses");
        assert_eq!(v.get("role").unwrap().as_str(), Some("primary"));
        assert_eq!(v.get("subscribers").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("acks").unwrap().as_f64(), Some(1.0));
        let versions = v.get("versions").unwrap().as_array().unwrap();
        assert_eq!(versions[0].as_f64(), Some(1.0));
    }
}
