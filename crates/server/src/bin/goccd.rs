//! `goccd` — the GOCC cache service daemon.
//!
//! ```console
//! $ goccd --mode gocc --port 0 --workers 2 --shards 4
//! goccd listening on 127.0.0.1:44721 (mode=gocc workers=2 shards=4)
//! LISTENING 44721
//! ```
//!
//! The `LISTENING <port>` line is the machine-readable contract scripts
//! use with `--port 0`. The process exits 0 after a graceful shutdown
//! (wire SHUTDOWN verb), printing the final summary and, with
//! `--stats-out`, the final STATS JSON document.

use std::process::ExitCode;
use std::time::Duration;

use gocc_server::{mode_name, parse_mode, spawn, ServerConfig};

fn usage() -> String {
    "usage: goccd [--mode lock|gocc] [--port N] [--workers N] [--shards N] \
     [--capacity N] [--write-timeout-ms N] [--drain-timeout-ms N] \
     [--queue-limit N] [--stats-out PATH]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<String>), String> {
    let mut config = ServerConfig::default();
    let mut stats_out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--mode" => config.mode = parse_mode(&value("--mode")?)?,
            "--port" => {
                config.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if config.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if config.shards == 0 {
                    return Err("--shards must be >= 1".into());
                }
            }
            "--capacity" => {
                config.capacity_per_shard = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--write-timeout-ms" => {
                config.write_timeout = Duration::from_millis(
                    value("--write-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--write-timeout-ms: {e}"))?,
                );
            }
            "--drain-timeout-ms" => {
                config.drain_timeout = Duration::from_millis(
                    value("--drain-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--drain-timeout-ms: {e}"))?,
                );
            }
            "--queue-limit" => {
                config.queue_limit = value("--queue-limit")?
                    .parse()
                    .map_err(|e| format!("--queue-limit: {e}"))?;
                if config.queue_limit == 0 {
                    return Err("--queue-limit must be >= 1".into());
                }
            }
            "--stats-out" => stats_out = Some(value("--stats-out")?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok((config, stats_out))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, stats_out) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    gocc_gosync::set_procs(8);
    let mode = config.mode;
    let (workers, shards) = (config.workers, config.shards);
    let handle = match spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("goccd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "goccd listening on 127.0.0.1:{} (mode={} workers={workers} shards={shards})",
        handle.port(),
        mode_name(mode),
    );
    println!("LISTENING {}", handle.port());
    // Scripts parse the LISTENING line from a redirected pipe; don't let
    // it sit in a stdio buffer.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let summary = handle.join();
    println!(
        "goccd shut down: {} conns, {} requests, {} malformed frames, {} slow-client drops",
        summary.conns_accepted,
        summary.requests,
        summary.malformed_frames,
        summary.slow_client_drops,
    );
    if let Some(path) = stats_out {
        if let Err(e) = std::fs::write(&path, &summary.stats_json) {
            eprintln!("goccd: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
