//! `goccd` — the GOCC cache service daemon.
//!
//! ```console
//! $ goccd --mode gocc --port 0 --workers 2 --shards 4
//! goccd listening on 127.0.0.1:44721 (mode=gocc workers=2 shards=4)
//! LISTENING 44721
//! ```
//!
//! The `LISTENING <port>` line is the machine-readable contract scripts
//! use with `--port 0`. The process exits 0 after a graceful shutdown
//! (wire SHUTDOWN verb), printing the final summary and, with
//! `--stats-out`, the final STATS JSON document.

use std::process::ExitCode;
use std::time::Duration;

use gocc_server::{mode_name, parse_mode, spawn, ServerConfig, SyncPolicy, WalBackend};

use gocc_telemetry::JsonValue;

fn usage() -> String {
    "usage: goccd [--mode lock|gocc] [--port N] [--workers N] [--shards N] \
     [--capacity N] [--write-timeout-ms N] [--drain-timeout-ms N] \
     [--queue-limit N] [--stats-out PATH] [--trace-sample-n N] \
     [--trace-out PATH] [--stats-interval-secs N] \
     [--data-dir PATH] [--wal-sync off|group|always] [--fsync-batch-size N] \
     [--fsync-wait-us N] [--checkpoint-every N] \
     [--wal-fault-seed N --wal-fault-crash P] \
     [--replica-of HOST:PORT] [--repl-accept] [--repl-min-acks N] \
     [--repl-lease-ms N] [--repl-ack-timeout-ms N] \
     [--repl-fault-seed N --repl-fault-rate P] \
     [--repl-auto-promote] [--repl-peer HOST:PORT]... [--repl-suspect-ms N]"
        .to_string()
}

/// Parsed command line: the server config plus goccd-only output knobs.
struct Cli {
    config: ServerConfig,
    stats_out: Option<String>,
    trace_out: Option<String>,
    stats_interval: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut config = ServerConfig::default();
    let mut stats_out = None;
    let mut trace_out = None;
    let mut stats_interval = None;
    let mut wal_fault_seed: Option<u64> = None;
    let mut wal_fault_crash: f64 = 0.0;
    let mut repl_fault_seed: Option<u64> = None;
    let mut repl_fault_rate: f64 = 0.0;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--mode" => config.mode = parse_mode(&value("--mode")?)?,
            "--port" => {
                config.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if config.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if config.shards == 0 {
                    return Err("--shards must be >= 1".into());
                }
            }
            "--capacity" => {
                config.capacity_per_shard = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--write-timeout-ms" => {
                config.write_timeout = Duration::from_millis(
                    value("--write-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--write-timeout-ms: {e}"))?,
                );
            }
            "--drain-timeout-ms" => {
                config.drain_timeout = Duration::from_millis(
                    value("--drain-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--drain-timeout-ms: {e}"))?,
                );
            }
            "--queue-limit" => {
                config.queue_limit = value("--queue-limit")?
                    .parse()
                    .map_err(|e| format!("--queue-limit: {e}"))?;
                if config.queue_limit == 0 {
                    return Err("--queue-limit must be >= 1".into());
                }
            }
            "--stats-out" => stats_out = Some(value("--stats-out")?),
            "--data-dir" => {
                config.data_dir = Some(std::path::PathBuf::from(value("--data-dir")?));
            }
            "--wal-sync" => {
                let v = value("--wal-sync")?;
                config.wal.sync = SyncPolicy::parse(&v).ok_or_else(|| {
                    format!("--wal-sync: unknown policy {v:?} (off|group|always)")
                })?;
            }
            "--fsync-batch-size" => {
                config.wal.fsync_batch_size = value("--fsync-batch-size")?
                    .parse()
                    .map_err(|e| format!("--fsync-batch-size: {e}"))?;
                if config.wal.fsync_batch_size == 0 {
                    return Err("--fsync-batch-size must be >= 1".into());
                }
            }
            "--fsync-wait-us" => {
                config.wal.fsync_wait_us = value("--fsync-wait-us")?
                    .parse()
                    .map_err(|e| format!("--fsync-wait-us: {e}"))?;
            }
            "--checkpoint-every" => {
                config.wal.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--wal-fault-seed" => {
                wal_fault_seed = Some(
                    value("--wal-fault-seed")?
                        .parse()
                        .map_err(|e| format!("--wal-fault-seed: {e}"))?,
                );
            }
            "--wal-fault-crash" => {
                wal_fault_crash = value("--wal-fault-crash")?
                    .parse()
                    .map_err(|e| format!("--wal-fault-crash: {e}"))?;
            }
            "--replica-of" => {
                config.replica_of = Some(value("--replica-of")?);
            }
            "--repl-accept" => config.repl_accept = true,
            "--repl-min-acks" => {
                config.repl_min_acks = value("--repl-min-acks")?
                    .parse()
                    .map_err(|e| format!("--repl-min-acks: {e}"))?;
            }
            "--repl-lease-ms" => {
                let ms: u64 = value("--repl-lease-ms")?
                    .parse()
                    .map_err(|e| format!("--repl-lease-ms: {e}"))?;
                if ms == 0 {
                    return Err("--repl-lease-ms must be >= 1".into());
                }
                config.repl_lease = Duration::from_millis(ms);
            }
            "--repl-ack-timeout-ms" => {
                config.repl_ack_timeout = Duration::from_millis(
                    value("--repl-ack-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--repl-ack-timeout-ms: {e}"))?,
                );
            }
            "--repl-auto-promote" => config.repl_auto_promote = true,
            "--repl-peer" => {
                // Repeatable: one flag per peer in the election electorate.
                config.repl_peers.push(value("--repl-peer")?);
            }
            "--repl-suspect-ms" => {
                let ms: u64 = value("--repl-suspect-ms")?
                    .parse()
                    .map_err(|e| format!("--repl-suspect-ms: {e}"))?;
                if ms == 0 {
                    return Err("--repl-suspect-ms must be >= 1".into());
                }
                config.repl_suspect = Duration::from_millis(ms);
            }
            "--repl-fault-seed" => {
                repl_fault_seed = Some(
                    value("--repl-fault-seed")?
                        .parse()
                        .map_err(|e| format!("--repl-fault-seed: {e}"))?,
                );
                config.repl_seed = repl_fault_seed.unwrap_or(config.repl_seed);
            }
            "--repl-fault-rate" => {
                repl_fault_rate = value("--repl-fault-rate")?
                    .parse()
                    .map_err(|e| format!("--repl-fault-rate: {e}"))?;
            }
            "--trace-sample-n" => {
                config.trace_sample_n = value("--trace-sample-n")?
                    .parse()
                    .map_err(|e| format!("--trace-sample-n: {e}"))?;
            }
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--stats-interval-secs" => {
                let secs: u64 = value("--stats-interval-secs")?
                    .parse()
                    .map_err(|e| format!("--stats-interval-secs: {e}"))?;
                if secs == 0 {
                    return Err("--stats-interval-secs must be >= 1".into());
                }
                stats_interval = Some(secs);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    // Crash-soak hook: a seeded fault plan switches the WAL to the Abort
    // backend, which tears a seeded append onto disk and kills the process
    // the way SIGKILL would. Test harness only; no effect without
    // --data-dir.
    if let Some(seed) = wal_fault_seed {
        let plan = gocc_faultplane::StorageFaultPlan::new(
            seed,
            gocc_faultplane::StorageMix {
                crash_per_append: wal_fault_crash,
                torn_given_crash: 0.5,
                short_fsync: 0.0,
                ckpt_crash: 0.0,
            },
        );
        config.wal.backend = WalBackend::Abort(std::sync::Arc::new(plan));
    }
    // Failover-soak hook: a seeded transport fault plan on the replication
    // stream only (client connections stay clean), driving partitions,
    // stalls and resets between primary and replica deterministically.
    if let Some(seed) = repl_fault_seed {
        if repl_fault_rate > 0.0 {
            config.repl_fault_plan = Some(std::sync::Arc::new(
                gocc_faultplane::TransportFaultPlan::new(
                    seed,
                    gocc_faultplane::TransportMix::uniform(repl_fault_rate),
                ),
            ));
        }
    }
    Ok(Cli {
        config,
        stats_out,
        trace_out,
        stats_interval,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let Cli {
        config,
        stats_out,
        trace_out,
        stats_interval,
    } = cli;

    gocc_gosync::set_procs(8);
    let mode = config.mode;
    let (workers, shards) = (config.workers, config.shards);
    let handle = match spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("goccd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "goccd listening on 127.0.0.1:{} (mode={} workers={workers} shards={shards} role={} git_rev={})",
        handle.port(),
        mode_name(mode),
        handle.state().role_name(),
        handle.state().git_rev(),
    );
    // Surface what recovery did before the daemon takes traffic: an
    // operator restarting after a crash wants "how much came back"
    // without having to query STATS.
    if let Some(wal) = handle.state().wal() {
        let r = wal.recovery_stats();
        println!(
            "goccd recovered {} records (checkpoint {} + WAL replay {}, torn tail {} bytes)",
            r.checkpoint_entries + r.replayed,
            r.checkpoint_entries,
            r.replayed,
            r.truncated_bytes,
        );
    }
    println!("LISTENING {}", handle.port());
    // Scripts parse the LISTENING line from a redirected pipe; don't let
    // it sit in a stdio buffer.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Periodic one-line operational summary, opt-in. The thread owns an
    // Arc of the state so it can outlive the borrowed handle; it exits on
    // the shutdown flag and is detached (join would add up to a full
    // interval of shutdown latency for log output nobody is waiting on).
    let state = handle.state_arc();
    if let Some(secs) = stats_interval {
        let state = handle.state_arc();
        std::thread::spawn(move || {
            let mut last_total = 0u64;
            while !state.shutting_down() {
                // Sleep in small steps so shutdown is observed promptly.
                let until = std::time::Instant::now() + Duration::from_secs(secs);
                while std::time::Instant::now() < until && !state.shutting_down() {
                    std::thread::sleep(Duration::from_millis(50));
                }
                if state.shutting_down() {
                    break;
                }
                let c = state.counters();
                let total = c.total_requests();
                let p99 = c.request_latency().snapshot().quantile(0.99);
                println!(
                    "stats: {:.0} req/s shed={} brownout={} p99={}ns",
                    (total - last_total) as f64 / secs as f64,
                    c.shed_total(),
                    state.brownout().state().name(),
                    p99,
                );
                let _ = std::io::stdout().flush();
                last_total = total;
            }
        });
    }

    let summary = handle.join();
    println!(
        "goccd shut down: {} conns, {} requests, {} malformed frames, {} slow-client drops",
        summary.conns_accepted,
        summary.requests,
        summary.malformed_frames,
        summary.slow_client_drops,
    );
    if let Some(path) = stats_out {
        if let Err(e) = std::fs::write(&path, &summary.stats_json) {
            eprintln!("goccd: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = trace_out {
        let dump = state.chrome_trace_json();
        // The dump must load in a trace viewer; parsing it through the
        // repo's own JSON reader catches a malformed document before it
        // ships.
        if JsonValue::parse(&dump).is_err() {
            eprintln!("goccd: internal error: trace dump is not valid JSON");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &dump) {
            eprintln!("goccd: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
