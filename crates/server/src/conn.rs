//! Per-connection state machine: non-blocking read → frame → admit →
//! execute → non-blocking write, with error isolation, deadline
//! enforcement and slow-client eviction.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_faultplane::{LoadFault, TransportFaultPlan};
use gocc_telemetry::trace;
use gocc_telemetry::{Span, SpanKind};
use gocc_wire::{
    decode_repl_request, decode_request_any, encode_response, is_repl_request, FaultyStream,
    FrameBuf, ReplRequest, Request, Response, WireError, MAX_FRAME,
};
use gocc_workloads::gocache::BatchOp;
use gocc_workloads::Engine;

use crate::overload::{classify, VerbClass};
use crate::repl::{pump_repl_out, ReplSub};
use crate::stats::verb_index;
use crate::store::BatchOutcome;
use crate::{ReplWaitError, ServerState, WorkerCtx};

/// Cap on frames executed per pump so one pipelining client cannot starve
/// a worker's other connections.
const MAX_FRAMES_PER_PUMP: usize = 256;

/// Span cap applied when a TRACE request asks for `max: 0` ("everything"):
/// a full 8K-slot ring rendered to JSON can exceed [`MAX_FRAME`], so the
/// open-ended form drains in bounded bites instead of erroring.
const TRACE_DEFAULT_MAX: u32 = 4096;

/// What one pump pass decided.
pub(crate) enum PumpOutcome {
    /// Keep the connection; `made_progress` gates the worker's idle sleep.
    Alive { made_progress: bool },
    /// Remove the connection.
    Close,
}

enum FlushState {
    Clean { progressed: bool },
    Fatal,
}

/// One admitted-but-unanswered request in the connection's current decode
/// batch. Responses for the whole batch are encoded together, in arrival
/// order, once the batch flushes — that is what keeps the wire strictly
/// in order even though execution is grouped by shard.
struct PendingReq {
    /// Flight-recorder id (0 = unsampled).
    trace_id: u64,
    /// When this request's bytes arrived (deadline budgets run from here).
    arrival: Instant,
    /// Client deadline budget, if any.
    deadline_us: Option<u32>,
    /// Verb index, for the per-request `StoreOp` span payload.
    verb: usize,
    state: PendingState,
}

enum PendingState {
    /// Execute through the batched store path.
    Exec {
        /// Owning shard (routes the request into its shard-group).
        shard: usize,
        op: BatchOp,
    },
    /// Answer decided at admission (shed, expired deadline, fenced
    /// primary); held unencoded until the batch flushes so it occupies
    /// its in-order response slot.
    Ready(Response<'static>),
    /// Replica write redirect — owns the hint string because
    /// `Response::NotPrimary` borrows its payload.
    NotPrimary(String),
}

/// One client connection, owned by exactly one thread at a time — a
/// worker, or the repl-out thread once it subscribes via REPL_HELLO.
///
/// The stream is wrapped in a [`FaultyStream`] so a configured transport
/// fault plan can perturb this connection's reads and writes; with no plan
/// the wrapper is pass-through.
pub(crate) struct Conn {
    stream: FaultyStream<TcpStream>,
    inbuf: FrameBuf,
    outbuf: Vec<u8>,
    outpos: usize,
    last_write_progress: Instant,
    /// When the oldest unprocessed bytes arrived: set on a read into an
    /// empty input buffer, cleared once the buffer drains. Deadline
    /// budgets are measured from here — conservative for pipelined
    /// backlogs (later frames in the same burst inherit the burst's
    /// arrival time, so a deadline can only fire early, never late).
    ingest_at: Option<Instant>,
    /// Stop reading; flush what is queued, then close.
    closing: bool,
    /// Set once this connection sent REPL_HELLO: it is a replica's
    /// replication stream, and the pump additionally drains the feed's
    /// batches for this subscriber.
    repl: Option<ReplSub>,
    /// Reusable scratch for the pump's decode batch (capacity persists
    /// across pump passes; always drained empty before the pass returns).
    batch: Vec<PendingReq>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, fault_plan: Option<Arc<TransportFaultPlan>>) -> Self {
        Conn {
            stream: FaultyStream::maybe(stream, fault_plan),
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            outpos: 0,
            last_write_progress: Instant::now(),
            ingest_at: None,
            closing: false,
            repl: None,
            batch: Vec::new(),
        }
    }

    /// Connection teardown: release the feed subscription, if any, so a
    /// dead replica stops counting toward `min_acks` immediately instead
    /// of waiting out the lease.
    pub(crate) fn on_close(&self, state: &ServerState) {
        if let (Some(sub), Some(feed)) = (&self.repl, state.repl_feed()) {
            feed.unsubscribe(sub.id);
        }
    }

    /// Whether this connection subscribed as a replication stream
    /// (sent REPL_HELLO). Such connections are migrated off the worker
    /// onto the dedicated repl-out thread.
    pub(crate) fn is_repl_sub(&self) -> bool {
        self.repl.is_some()
    }

    pub(crate) fn has_pending_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// Shutdown-drain helper: push pending bytes, ignore errors.
    pub(crate) fn flush_only(&mut self) {
        let _ = self.flush_inner();
    }

    /// One cooperative scheduling quantum for this connection.
    pub(crate) fn pump(
        &mut self,
        engine: &Engine<'_>,
        state: &ServerState,
        wctx: &mut WorkerCtx,
    ) -> PumpOutcome {
        let mut progressed = false;

        // 1. Drain queued response bytes first — a slow client must not
        //    hold buffered responses hostage while we keep reading.
        match self.flush_inner() {
            FlushState::Clean { progressed: p } => progressed |= p,
            FlushState::Fatal => return PumpOutcome::Close,
        }
        if self.has_pending_output()
            && self.last_write_progress.elapsed() > state.config.write_timeout
        {
            state.counters.note_slow_drop();
            return PumpOutcome::Close;
        }

        // 2. Ingest bytes — unless this connection already holds more
        //    unprocessed input than the high-water mark. Not reading is
        //    the memory bound: the kernel socket buffer fills and TCP
        //    pushes back on the client.
        let mut peer_eof = false;
        if !self.closing && self.inbuf.pending() < state.config.recv_high_water {
            let mut chunk = [0u8; 4096];
            for _ in 0..16 {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        if self.inbuf.pending() == 0 {
                            self.ingest_at = Some(Instant::now());
                        }
                        self.inbuf.extend(&chunk[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return PumpOutcome::Close,
                }
            }
        }

        // 3. Admit and execute complete frames.
        if !self.closing {
            progressed |= self.process_frames(engine, state, wctx);
        }
        if self.inbuf.pending() == 0 {
            self.ingest_at = None;
        }

        // 3b. If this is a subscribed replication stream, drain the feed:
        // snapshot resyncs, incremental batches, heartbeats. A promoted-
        // away (replica) node stops pumping — its feed is a sink, not a
        // source.
        if !self.closing && !state.is_replica() {
            if let (Some(sub), Some(feed)) = (&mut self.repl, state.repl_feed()) {
                progressed |= pump_repl_out(
                    sub,
                    feed,
                    &state.store,
                    engine,
                    &mut self.outbuf,
                    state.config.repl_lease,
                    state.epoch(),
                );
            }
        }

        // 4. Push out whatever step 3 produced.
        match self.flush_inner() {
            FlushState::Clean { progressed: p } => progressed |= p,
            FlushState::Fatal => return PumpOutcome::Close,
        }

        if (self.closing || peer_eof) && !self.has_pending_output() {
            return PumpOutcome::Close;
        }
        if peer_eof {
            // Half-closed with responses still queued: flush, then close.
            self.closing = true;
        }
        PumpOutcome::Alive {
            made_progress: progressed,
        }
    }

    /// Decodes, admits and executes buffered frames.
    ///
    /// Single-key data verbs are not executed one at a time: each is
    /// admitted into a pending batch, and the batch executes with **one**
    /// critical section per shard-group when it flushes — at the pump cap,
    /// at end of buffered input, or before any frame that cannot join a
    /// batch (control verbs, SCAN, replication verbs, framing errors).
    /// Responses are encoded at flush time in arrival order, so the wire
    /// ordering is identical to sequential execution.
    ///
    /// A decode error sends one final `Error` response and marks the
    /// connection closing. An *oversized* frame is the one framing error
    /// that does not cost the connection: `FrameBuf` skips its body and
    /// resynchronizes, so the response is an `Error` and the conversation
    /// continues. Shed and deadline-expired requests answer with their
    /// dedicated retriable responses and also keep the connection.
    fn process_frames(
        &mut self,
        engine: &Engine<'_>,
        state: &ServerState,
        wctx: &mut WorkerCtx,
    ) -> bool {
        let mut progressed = false;
        let mut batch = std::mem::take(&mut self.batch);
        for _ in 0..MAX_FRAMES_PER_PUMP {
            if self.closing {
                break;
            }
            let arrival = self.ingest_at.unwrap_or_else(Instant::now);
            let Conn {
                inbuf,
                outbuf,
                closing,
                repl,
                ..
            } = self;
            match inbuf.next_frame() {
                Ok(None) => break,
                Ok(Some(body)) => {
                    progressed = true;
                    // Replication verbs bypass admission entirely: a
                    // brownout must never shed the ack stream that keeps
                    // the primary's lease (and its replicas) alive. They
                    // still flush the batch first — a REPL frame between
                    // two data frames must not reorder their responses.
                    if is_repl_request(body) {
                        flush_batch(engine, state, wctx, outbuf, &mut batch);
                        handle_repl_frame(engine, state, outbuf, repl, closing, body);
                        continue;
                    }
                    wctx.frames_seen += 1;
                    // Flight recorder: the sampling decision is made once
                    // per request, here at frame decode, and the id rides
                    // the worker's thread-local through admission, the
                    // engine, and the HTM session until the frame is done.
                    let decode_t0 = if trace::tracing_active() {
                        trace::now_ns()
                    } else {
                        0
                    };
                    let body_len = body.len() as u64;
                    match decode_request_any(body) {
                        Ok(frame) => {
                            state.counters.note_request(&frame.req);
                            let trace_id = state.rt.tracer().begin_request();
                            if trace_id != 0 {
                                let now = trace::now_ns();
                                state.rt.tracer().push(Span {
                                    trace_id,
                                    kind: SpanKind::WireDecode,
                                    start_ns: decode_t0,
                                    dur_ns: now.saturating_sub(decode_t0),
                                    a: body_len,
                                    b: verb_index(&frame.req) as u64,
                                });
                                // How long the frame's bytes sat in the
                                // input buffer before this pump pass
                                // reached them.
                                let wait_ns = arrival.elapsed().as_nanos() as u64;
                                state.rt.tracer().push(Span {
                                    trace_id,
                                    kind: SpanKind::QueueWait,
                                    start_ns: now.saturating_sub(wait_ns),
                                    dur_ns: wait_ns,
                                    a: wctx.frames_seen,
                                    b: 0,
                                });
                            }
                            match gather_pending(
                                state,
                                wctx,
                                arrival,
                                &frame.req,
                                frame.deadline_us,
                                trace_id,
                            ) {
                                Some(pending) => batch.push(pending),
                                None => {
                                    // Control verb or SCAN: flush what is
                                    // pending (in-order responses), then
                                    // run it on the sequential path.
                                    flush_batch(engine, state, wctx, outbuf, &mut batch);
                                    if trace_id != 0 {
                                        trace::set_current(trace_id);
                                    }
                                    if !execute_admitted(
                                        engine,
                                        state,
                                        wctx,
                                        outbuf,
                                        arrival,
                                        &frame.req,
                                        frame.deadline_us,
                                    ) {
                                        *closing = true;
                                    }
                                    if trace_id != 0 {
                                        trace::clear_current();
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            flush_batch(engine, state, wctx, outbuf, &mut batch);
                            state.counters.note_malformed();
                            let message = format!("malformed frame: {e}");
                            encode_response(&Response::Error { message: &message }, outbuf);
                            *closing = true;
                        }
                    }
                }
                Err(WireError::TooLarge) => {
                    // Oversized frame: FrameBuf discards the body and
                    // resynchronizes, so answer and keep the connection.
                    progressed = true;
                    flush_batch(engine, state, wctx, outbuf, &mut batch);
                    state.counters.note_oversized();
                    encode_response(
                        &Response::Error {
                            message: "frame exceeds size limit",
                        },
                        outbuf,
                    );
                }
                Err(e) => {
                    // Corrupt length prefix: there is no resynchronizing.
                    flush_batch(engine, state, wctx, outbuf, &mut batch);
                    state.counters.note_malformed();
                    let message = format!("unrecoverable framing error: {e}");
                    encode_response(&Response::Error { message: &message }, outbuf);
                    *closing = true;
                }
            }
        }
        flush_batch(engine, state, wctx, &mut self.outbuf, &mut batch);
        self.batch = batch;
        progressed
    }

    fn flush_inner(&mut self) -> FlushState {
        let mut progressed = false;
        loop {
            if !self.has_pending_output() {
                self.outbuf.clear();
                self.outpos = 0;
                return FlushState::Clean { progressed };
            }
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return FlushState::Fatal,
                Ok(n) => {
                    self.outpos += n;
                    self.last_write_progress = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return FlushState::Clean { progressed }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return FlushState::Fatal,
            }
        }
    }
}

/// The admit → deadline-check pipeline for one decoded request, producing
/// a batch entry instead of executing. Returns `None` for verbs that
/// cannot batch (control plane, SCAN) — the caller flushes and falls back
/// to [`execute_admitted`]. For batchable verbs the per-request checks
/// run here, at the same point in the request's life as on the sequential
/// path: deadline pre-check, admission, replica redirect, fencing. A
/// rejected request still returns `Some` — its decided response rides the
/// batch as [`PendingState::Ready`] so it answers in arrival order.
fn gather_pending(
    state: &ServerState,
    wctx: &mut WorkerCtx,
    arrival: Instant,
    req: &Request<'_>,
    deadline_us: Option<u32>,
    trace_id: u64,
) -> Option<PendingReq> {
    let (shard, op) = state.store.batch_op_for(req)?;
    let verb = verb_index(req);
    let pending = |state: PendingState| PendingReq {
        trace_id,
        arrival,
        deadline_us,
        verb,
        state,
    };

    // Deadline pre-check: a request whose budget expired while it queued
    // is answered without ever reaching the engine. (Batchable verbs are
    // never Control class, so no exemption applies.)
    if let Some(budget_us) = deadline_us {
        if expired(arrival, budget_us) {
            state.counters.note_deadline_pre();
            return Some(pending(PendingState::Ready(Response::DeadlineExceeded)));
        }
    }

    // Admission: same brownout decision, per request, before the request
    // can join a batch — a batch never smuggles work past the controller.
    let t0 = Instant::now();
    let t0_ns = if trace_id != 0 { trace::now_ns() } else { 0 };
    let class = classify(req);
    if let Err(cause) = state
        .brownout
        .admit(class, wctx.frames_seen, state.config.queue_limit)
    {
        let shed_ns = t0.elapsed().as_nanos() as u64;
        state.counters.note_shed(wctx.worker, cause, shed_ns);
        if trace_id != 0 {
            state.rt.tracer().push(Span {
                trace_id,
                kind: SpanKind::Shed,
                start_ns: t0_ns,
                dur_ns: shed_ns,
                a: cause.index() as u64,
                b: state.brownout.state() as u8 as u64,
            });
        }
        return Some(pending(PendingState::Ready(Response::Overloaded {
            state: state.brownout.state() as u8,
        })));
    }

    let is_write = !matches!(op, BatchOp::Get { .. });
    // Replicas serve reads; writes are redirected to the primary.
    if is_write && state.is_replica() {
        return Some(pending(PendingState::NotPrimary(state.upstream_hint())));
    }
    // Fencing pre-check, per request: a fenced primary must not apply new
    // writes, including ones arriving mid-pipeline.
    if is_write && !state.is_replica() {
        if let Some(feed) = state.repl_feed() {
            if feed.fenced() {
                feed.counters().note_fenced_reject();
                return Some(pending(PendingState::Ready(Response::Error {
                    message: "primary fenced: insufficient live replicas",
                })));
            }
        }
    }
    Some(pending(PendingState::Exec { shard, op }))
}

/// Executes and answers the pending batch: one critical section per
/// shard-group via [`crate::ShardedStore::execute_batch`], then the WAL /
/// replication / deadline epilogue per request, then every response
/// encoded in arrival order. No-op on an empty batch. Mirrors the data-
/// verb arm of [`execute_admitted`] exactly — same counters, same spans
/// (plus a `BatchExec` span per shard-group), same error strings, same
/// ack-after-barrier ordering per record.
fn flush_batch(
    engine: &Engine<'_>,
    state: &ServerState,
    wctx: &mut WorkerCtx,
    outbuf: &mut Vec<u8>,
    batch: &mut Vec<PendingReq>,
) {
    if batch.is_empty() {
        return;
    }
    // Route the executable subset; rejected entries keep their slot in
    // `batch` and only participate in response encoding below.
    let mut routed: Vec<(usize, BatchOp)> = Vec::with_capacity(batch.len());
    let mut exec_idx: Vec<usize> = Vec::with_capacity(batch.len());
    for (i, p) in batch.iter().enumerate() {
        if let PendingState::Exec { shard, op } = p.state {
            routed.push((shard, op));
            exec_idx.push(i);
        }
    }
    let feed = if state.is_replica() {
        None
    } else {
        state.repl_feed()
    };
    let mut outcomes: Vec<BatchOutcome> = Vec::new();
    if !routed.is_empty() {
        // One fault draw per executed request, so injected SlowStore
        // rates match the sequential path request-for-request.
        if let Some(plan) = &state.config.load_plan {
            for _ in 0..routed.len() {
                if let Some(LoadFault::SlowStore(d)) = plan.draw_store(wctx.worker as u64) {
                    std::thread::sleep(d);
                }
            }
        }
        let wal = state.wal().map(|w| w.as_ref());
        outcomes = state
            .store
            .execute_batch(engine, &routed, wal, |shard, positions, run| {
                // The group's engine section runs under the first sampled
                // request's trace id, so Section/HtmAttempt spans attach
                // to a real request; the BatchExec span marks the whole
                // group and carries its size.
                let parent = positions
                    .iter()
                    .map(|&p| batch[exec_idx[p]].trace_id)
                    .find(|&id| id != 0)
                    .unwrap_or(0);
                let t0_ns = if parent != 0 { trace::now_ns() } else { 0 };
                let group_t0 = Instant::now();
                if parent != 0 {
                    trace::set_current(parent);
                }
                run();
                if parent != 0 {
                    trace::clear_current();
                }
                let group_ns = group_t0.elapsed().as_nanos() as u64;
                let n = positions.len() as u64;
                // Engine latency only feeds the brownout EWMA; the group's
                // cost is attributed evenly across its requests so the
                // controller sees the amortized per-request load.
                let per_req_ns = group_ns / n.max(1);
                for &p in positions {
                    let pr = &batch[exec_idx[p]];
                    wctx.lat_sum_ns += per_req_ns;
                    wctx.lat_count += 1;
                    state.counters.note_executed(wctx.worker, per_req_ns);
                    if pr.trace_id != 0 {
                        state.rt.tracer().push(Span {
                            trace_id: pr.trace_id,
                            kind: SpanKind::StoreOp,
                            start_ns: t0_ns,
                            dur_ns: group_ns,
                            a: pr.verb as u64,
                            b: 1,
                        });
                    }
                }
                if parent != 0 {
                    state.rt.tracer().push(Span {
                        trace_id: parent,
                        kind: SpanKind::BatchExec,
                        start_ns: t0_ns,
                        dur_ns: group_ns,
                        a: n,
                        b: u64::from(shard),
                    });
                }
                state.counters.note_batch(n);
            });
    }
    // Epilogue + response encode, in arrival order. The WAL wait and the
    // replication gate stay per-record: each mutation's ack still waits
    // for exactly its own barrier, same as sequentially.
    let mut outcome_iter = outcomes.into_iter();
    for p in batch.drain(..) {
        let out_start = outbuf.len();
        match p.state {
            PendingState::Ready(resp) => encode_response(&resp, outbuf),
            PendingState::NotPrimary(hint) => {
                encode_response(&Response::NotPrimary { hint: &hint }, outbuf);
            }
            PendingState::Exec { .. } => {
                let BatchOutcome {
                    mut resp,
                    staged,
                    ticket,
                } = outcome_iter.next().expect("one outcome per routed entry");
                // Ack-after-barrier: the response for a mutating verb is
                // not encoded until its WAL record is inside an fsynced
                // prefix.
                if let (Some(ticket), Some(wal)) = (ticket, state.wal()) {
                    let wait_t0 = if p.trace_id != 0 { trace::now_ns() } else { 0 };
                    let waited = wal.wait(ticket);
                    if p.trace_id != 0 {
                        state.rt.tracer().push(Span {
                            trace_id: p.trace_id,
                            kind: SpanKind::WalCommit,
                            start_ns: wait_t0,
                            dur_ns: trace::now_ns().saturating_sub(wait_t0),
                            a: ticket.number(),
                            b: 0,
                        });
                    }
                    if waited.is_err() {
                        resp = Response::Error {
                            message: "write-ahead log failed; write not durable",
                        };
                    }
                } else if let (Some(feed), Some(staged)) = (feed, staged.as_ref()) {
                    // No-WAL primary: the applied write is this
                    // deployment's durable prefix, so it enters the feed
                    // here.
                    feed.publish(staged.shard, std::slice::from_ref(staged));
                }
                // Replication gate: the ack is withheld until enough
                // replicas confirmed this record's version.
                if let (Some(feed), Some(staged)) = (feed, staged.as_ref()) {
                    if !matches!(resp, Response::Error { .. }) {
                        match feed.wait_replicated(
                            staged.shard,
                            staged.seq,
                            state.config.repl_ack_timeout,
                        ) {
                            Ok(()) => {}
                            Err(ReplWaitError::Fenced) => {
                                resp = Response::Error {
                                    message: "primary fenced: write not acknowledged",
                                };
                            }
                            Err(ReplWaitError::Timeout) => {
                                resp = Response::Error {
                                    message: "replication timed out: write not acknowledged",
                                };
                            }
                        }
                    }
                }
                // Deadline post-check: effects are already applied (the
                // engine ran); only this request's response is replaced.
                let resp_t0 = if p.trace_id != 0 { trace::now_ns() } else { 0 };
                match p.deadline_us {
                    Some(budget_us) if expired(p.arrival, budget_us) => {
                        state.counters.note_deadline_post();
                        encode_response(&Response::DeadlineExceeded, outbuf);
                    }
                    _ => encode_response(&resp, outbuf),
                }
                if p.trace_id != 0 {
                    state.rt.tracer().push(Span {
                        trace_id: p.trace_id,
                        kind: SpanKind::ResponseWrite,
                        start_ns: resp_t0,
                        dur_ns: trace::now_ns().saturating_sub(resp_t0),
                        a: (outbuf.len() - out_start) as u64,
                        b: 0,
                    });
                }
            }
        }
    }
}

/// The admit → deadline-check → execute pipeline for one decoded request.
///
/// Returns `false` when the connection must start closing (SHUTDOWN).
/// Free function (not a method) so the borrow of `outbuf` stays disjoint
/// from the rest of the connection.
fn execute_admitted(
    engine: &Engine<'_>,
    state: &ServerState,
    wctx: &mut WorkerCtx,
    outbuf: &mut Vec<u8>,
    arrival: Instant,
    req: &Request<'_>,
    deadline_us: Option<u32>,
) -> bool {
    let t0 = Instant::now();
    let class = classify(req);
    let trace_id = trace::current();
    let t0_ns = if trace_id != 0 { trace::now_ns() } else { 0 };
    let out_start = outbuf.len();

    // Deadline pre-check: a request whose budget expired while it queued
    // is answered without ever reaching the engine.
    if let Some(budget_us) = deadline_us {
        if class != VerbClass::Control && expired(arrival, budget_us) {
            state.counters.note_deadline_pre();
            encode_response(&Response::DeadlineExceeded, outbuf);
            return true;
        }
    }

    // Admission: the brownout state and this pump pass's queue depth
    // decide. The whole reject path (classify + admit + encode) is
    // measured — the soak asserts its mean stays under 10 µs.
    if let Err(cause) = state
        .brownout
        .admit(class, wctx.frames_seen, state.config.queue_limit)
    {
        encode_response(
            &Response::Overloaded {
                state: state.brownout.state() as u8,
            },
            outbuf,
        );
        let shed_ns = t0.elapsed().as_nanos() as u64;
        state.counters.note_shed(wctx.worker, cause, shed_ns);
        if trace_id != 0 {
            state.rt.tracer().push(Span {
                trace_id,
                kind: SpanKind::Shed,
                start_ns: t0_ns,
                dur_ns: shed_ns,
                a: cause.index() as u64,
                b: state.brownout.state() as u8 as u64,
            });
        }
        return true;
    }

    // Start of the response-encode window: control verbs encode straight
    // from here; data verbs reset it after the store call.
    let mut resp_t0 = t0_ns;

    let keep_open = match req {
        Request::Stats => {
            let json = state.stats_json();
            // A stats document larger than a frame (giant telemetry
            // event trace) would trip the encoder's frame-size assert
            // — a network-reachable panic. Refuse it on just this
            // connection instead.
            if json.len() > MAX_FRAME - 8 {
                encode_response(
                    &Response::Error {
                        message: "stats document exceeds frame limit",
                    },
                    outbuf,
                );
            } else {
                encode_response(&Response::Stats { json: &json }, outbuf);
            }
            true
        }
        Request::Trace { max } => {
            let cap = if *max == 0 { TRACE_DEFAULT_MAX } else { *max };
            let json = state.trace_json(cap);
            // Same frame-size refusal as STATS: never feed the encoder a
            // document that would trip its size assert.
            if json.len() > MAX_FRAME - 8 {
                encode_response(
                    &Response::Error {
                        message: "trace document exceeds frame limit",
                    },
                    outbuf,
                );
            } else {
                encode_response(&Response::Trace { json: &json }, outbuf);
            }
            true
        }
        Request::Health => {
            encode_response(&state.health_response(), outbuf);
            true
        }
        Request::Flush => {
            // Durability barrier: returns once everything staged before it
            // is fsynced. Without a WAL the barrier is vacuous.
            let resp = match state.wal() {
                Some(wal) => match wal.flush() {
                    Ok(durable_lsn) => Response::Flushed { durable_lsn },
                    Err(_) => Response::Error {
                        message: "write-ahead log failed",
                    },
                },
                None => Response::Flushed { durable_lsn: 0 },
            };
            encode_response(&resp, outbuf);
            true
        }
        Request::Shutdown => {
            state.request_shutdown();
            encode_response(&Response::Bye, outbuf);
            false
        }
        data_verb => {
            let is_write = matches!(
                data_verb,
                Request::Set { .. }
                    | Request::Del { .. }
                    | Request::Incr { .. }
                    | Request::SetS { .. }
            );
            // Replicas serve reads; writes are redirected to the primary.
            // The replication stream is a replica's only writer, so its
            // shard versions stay exactly the primary's.
            if is_write && state.is_replica() {
                let hint = state.upstream_hint();
                encode_response(&Response::NotPrimary { hint: &hint }, outbuf);
                return true;
            }
            let feed = if state.is_replica() {
                None
            } else {
                state.repl_feed()
            };
            // Fencing pre-check: a primary that cannot currently reach
            // `min_acks` live replicas must not apply (much less ack) new
            // writes — a partitioned old primary goes read-only instead
            // of diverging.
            if is_write {
                if let Some(feed) = feed {
                    if feed.fenced() {
                        feed.counters().note_fenced_reject();
                        encode_response(
                            &Response::Error {
                                message: "primary fenced: insufficient live replicas",
                            },
                            outbuf,
                        );
                        return true;
                    }
                }
            }
            let exec_start = Instant::now();
            if let Some(plan) = &state.config.load_plan {
                if let Some(LoadFault::SlowStore(d)) = plan.draw_store(wctx.worker as u64) {
                    std::thread::sleep(d);
                }
            }
            let store_t0 = if trace_id != 0 { trace::now_ns() } else { 0 };
            let (mut resp, ticket, staged) = match state.wal() {
                Some(wal) => {
                    let (resp, t) = state.store.execute_durable(engine, data_verb, wal);
                    match t {
                        Some((ticket, staged)) => (resp, Some(ticket), Some(staged)),
                        None => (resp, None, None),
                    }
                }
                // No WAL but a feed: the request path itself is the
                // durable prefix (there is nothing stronger to wait for),
                // so publish straight to the feed after the shard commit.
                None if feed.is_some() => {
                    let (resp, staged) = state.store.execute_staged(engine, data_verb);
                    (resp, None, staged)
                }
                None => (state.store.execute(engine, data_verb), None, None),
            };
            let exec_ns = exec_start.elapsed().as_nanos() as u64;
            if trace_id != 0 {
                resp_t0 = trace::now_ns();
                state.rt.tracer().push(Span {
                    trace_id,
                    kind: SpanKind::StoreOp,
                    start_ns: store_t0,
                    dur_ns: resp_t0.saturating_sub(store_t0),
                    a: verb_index(data_verb) as u64,
                    b: 0,
                });
            }
            // Engine latency only feeds the brownout EWMA — the group
            // commit wait below is deliberate batching, not overload, and
            // must not drive the controller toward shedding.
            wctx.lat_sum_ns += exec_ns;
            wctx.lat_count += 1;
            state.counters.note_executed(wctx.worker, exec_ns);
            // Ack-after-barrier: the response for a mutating verb is not
            // encoded until its WAL record is inside an fsynced prefix.
            // The in-memory effect is already applied; if the log died,
            // say so instead of acknowledging a write that may not
            // survive a crash.
            if let (Some(ticket), Some(wal)) = (ticket, state.wal()) {
                let wait_t0 = if trace_id != 0 { trace::now_ns() } else { 0 };
                let waited = wal.wait(ticket);
                if trace_id != 0 {
                    let now = trace::now_ns();
                    state.rt.tracer().push(Span {
                        trace_id,
                        kind: SpanKind::WalCommit,
                        start_ns: wait_t0,
                        dur_ns: now.saturating_sub(wait_t0),
                        a: ticket.number(),
                        b: 0,
                    });
                    resp_t0 = now;
                }
                if waited.is_err() {
                    resp = Response::Error {
                        message: "write-ahead log failed; write not durable",
                    };
                }
            } else if let (Some(feed), Some(staged)) = (feed, staged.as_ref()) {
                // No-WAL primary: everything applied is "durable" by this
                // deployment's definition, so it enters the feed here.
                feed.publish(staged.shard, std::slice::from_ref(staged));
            }
            // Replication gate: with `min_acks` configured, the ack is
            // withheld until enough replicas confirmed this version (or
            // the primary turns out to be fenced — then the client must
            // not treat the write as accepted, even though it applied
            // locally: the promoted side's history wins).
            if let (Some(feed), Some(staged)) = (feed, staged.as_ref()) {
                if !matches!(resp, Response::Error { .. }) {
                    match feed.wait_replicated(
                        staged.shard,
                        staged.seq,
                        state.config.repl_ack_timeout,
                    ) {
                        Ok(()) => {}
                        Err(ReplWaitError::Fenced) => {
                            resp = Response::Error {
                                message: "primary fenced: write not acknowledged",
                            };
                        }
                        Err(ReplWaitError::Timeout) => {
                            resp = Response::Error {
                                message: "replication timed out: write not acknowledged",
                            };
                        }
                    }
                }
            }
            // Deadline post-check: the effect is already applied (the
            // engine ran), but the client stopped waiting — tell it so
            // instead of shipping a result it will ignore. Documented
            // semantics: deadlines bound *waiting*, not *effects*.
            match deadline_us {
                Some(budget_us) if expired(arrival, budget_us) => {
                    state.counters.note_deadline_post();
                    encode_response(&Response::DeadlineExceeded, outbuf);
                }
                _ => encode_response(&resp, outbuf),
            }
            true
        }
    };
    if trace_id != 0 {
        state.rt.tracer().push(Span {
            trace_id,
            kind: SpanKind::ResponseWrite,
            start_ns: resp_t0,
            dur_ns: trace::now_ns().saturating_sub(resp_t0),
            a: (outbuf.len() - out_start) as u64,
            b: 0,
        });
    }
    keep_open
}

/// Handles one replication verb on this connection.
///
/// Free function with the same disjoint-borrow shape as
/// [`execute_admitted`]: `outbuf`, the subscription slot and the closing
/// flag come in as separate `&mut`s from the destructured connection.
fn handle_repl_frame(
    engine: &Engine<'_>,
    state: &ServerState,
    outbuf: &mut Vec<u8>,
    repl: &mut Option<ReplSub>,
    closing: &mut bool,
    body: &[u8],
) {
    match decode_repl_request(body) {
        Ok(ReplRequest::Hello { versions }) => {
            // A replica cannot feed other replicas (no chaining in this
            // topology) — redirect the subscriber at the primary.
            if state.is_replica() {
                let hint = state.upstream_hint();
                encode_response(&Response::NotPrimary { hint: &hint }, outbuf);
                return;
            }
            let Some(feed) = state.repl_feed() else {
                encode_response(
                    &Response::Error {
                        message: "replication not enabled (start with --repl-accept)",
                    },
                    outbuf,
                );
                *closing = true;
                return;
            };
            // A second HELLO on the same connection replaces the old
            // subscription (a replica restarting its session).
            if let Some(old) = repl.take() {
                feed.unsubscribe(old.id);
            }
            let id = feed.subscribe(&versions);
            *repl = Some(ReplSub::new(id));
            encode_response(
                &Response::ReplWelcome {
                    shards: state.store.shards() as u32,
                    epoch: state.epoch(),
                },
                outbuf,
            );
        }
        Ok(ReplRequest::Ack {
            shard,
            version,
            nak,
        }) => {
            // Acks are one-way: no response rides back. A NAK flags the
            // shard for snapshot resync inside the feed.
            if let (Some(sub), Some(feed)) = (repl.as_ref(), state.repl_feed()) {
                feed.note_ack(sub.id, shard, version, nak);
            }
        }
        Ok(ReplRequest::Candidate { epoch, versions }) => {
            // A vote request from a peer replica standing for election.
            // Election safety lives in these denials: one vote per epoch,
            // a live primary never votes anyone in over itself, and a
            // candidate with less replicated history than ours never gets
            // our vote (so the winner has at least a majority's worth of
            // acked history).
            let own: u64 = state.store.versions(engine).iter().sum();
            let candidate: u64 = versions.iter().sum();
            let granted = state.is_replica()
                && epoch > state.epoch()
                && candidate >= own
                && state.try_vote(epoch);
            if granted {
                // Granting adopts the epoch: even if this candidate loses,
                // the old primary's stream is now recognizably stale here.
                state.observe_epoch(epoch);
            }
            encode_response(
                &Response::ReplVote {
                    granted,
                    epoch: state.epoch(),
                    version_sum: own,
                },
                outbuf,
            );
        }
        Ok(ReplRequest::EpochAnnounce { epoch, primary }) => {
            // The election winner telling us where the new primary lives.
            if !state.is_replica() {
                // A deposed primary does NOT adopt the announce — adopting
                // would un-fence it. It stays primary-at-old-epoch, kept
                // harmless by lease fencing (its replicas are gone) and by
                // stale-epoch rejection on every batch it still emits.
                encode_response(
                    &Response::Error {
                        message: "cannot repoint a primary; demotion is not supported",
                    },
                    outbuf,
                );
                return;
            }
            if epoch < state.epoch() {
                encode_response(
                    &Response::Error {
                        message: "stale epoch announce",
                    },
                    outbuf,
                );
                return;
            }
            state.observe_epoch(epoch);
            match std::str::from_utf8(primary) {
                Ok(addr) => {
                    if !addr.is_empty() && addr != state.advertised() {
                        state.set_upstream(addr.to_string());
                    }
                    encode_response(&Response::Done, outbuf);
                }
                Err(_) => encode_response(
                    &Response::Error {
                        message: "primary address is not valid UTF-8",
                    },
                    outbuf,
                ),
            }
        }
        Ok(ReplRequest::Promote { upstream }) => {
            if upstream.is_empty() {
                // Become primary. Idempotent; the feed re-bases to the
                // store's live versions.
                state.promote_to_primary(engine);
                encode_response(&Response::Done, outbuf);
            } else {
                match std::str::from_utf8(upstream) {
                    Ok(addr) if state.is_replica() => {
                        // Repoint at a new primary; the sink thread picks
                        // the change up on its next poll tick.
                        state.set_upstream(addr.to_string());
                        encode_response(&Response::Done, outbuf);
                    }
                    Ok(_) => encode_response(
                        &Response::Error {
                            message: "cannot repoint a primary; demotion is not supported",
                        },
                        outbuf,
                    ),
                    Err(_) => encode_response(
                        &Response::Error {
                            message: "upstream address is not valid UTF-8",
                        },
                        outbuf,
                    ),
                }
            }
        }
        Err(e) => {
            state.counters.note_malformed();
            let message = format!("malformed replication frame: {e}");
            encode_response(&Response::Error { message: &message }, outbuf);
            *closing = true;
        }
    }
}

/// Whether `budget_us` microseconds have fully elapsed since `arrival`.
/// A zero budget is always expired — the probe clients use that to test
/// the pre-check without a race.
fn expired(arrival: Instant, budget_us: u32) -> bool {
    arrival.elapsed() >= Duration::from_micros(u64::from(budget_us))
}
