//! Per-connection state machine: non-blocking read → frame → execute →
//! non-blocking write, with error isolation and slow-client eviction.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use gocc_faultplane::TransportFaultPlan;
use gocc_wire::{
    decode_request, encode_response, FaultyStream, FrameBuf, Request, Response, MAX_FRAME,
};
use gocc_workloads::Engine;

use crate::ServerState;

/// Cap on frames executed per pump so one pipelining client cannot starve
/// a worker's other connections.
const MAX_FRAMES_PER_PUMP: usize = 256;

/// What one pump pass decided.
pub(crate) enum PumpOutcome {
    /// Keep the connection; `made_progress` gates the worker's idle sleep.
    Alive { made_progress: bool },
    /// Remove the connection.
    Close,
}

enum FlushState {
    Clean { progressed: bool },
    Fatal,
}

/// One client connection, owned by exactly one worker thread.
///
/// The stream is wrapped in a [`FaultyStream`] so a configured transport
/// fault plan can perturb this connection's reads and writes; with no plan
/// the wrapper is pass-through.
pub(crate) struct Conn {
    stream: FaultyStream<TcpStream>,
    inbuf: FrameBuf,
    outbuf: Vec<u8>,
    outpos: usize,
    last_write_progress: Instant,
    /// Stop reading; flush what is queued, then close.
    closing: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, fault_plan: Option<Arc<TransportFaultPlan>>) -> Self {
        Conn {
            stream: FaultyStream::maybe(stream, fault_plan),
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            outpos: 0,
            last_write_progress: Instant::now(),
            closing: false,
        }
    }

    pub(crate) fn has_pending_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// Shutdown-drain helper: push pending bytes, ignore errors.
    pub(crate) fn flush_only(&mut self) {
        let _ = self.flush_inner();
    }

    /// One cooperative scheduling quantum for this connection.
    pub(crate) fn pump(&mut self, engine: &Engine<'_>, state: &ServerState) -> PumpOutcome {
        let mut progressed = false;

        // 1. Drain queued response bytes first — a slow client must not
        //    hold buffered responses hostage while we keep reading.
        match self.flush_inner() {
            FlushState::Clean { progressed: p } => progressed |= p,
            FlushState::Fatal => return PumpOutcome::Close,
        }
        if self.has_pending_output()
            && self.last_write_progress.elapsed() > state.config.write_timeout
        {
            state.counters.note_slow_drop();
            return PumpOutcome::Close;
        }

        // 2. Ingest bytes.
        let mut peer_eof = false;
        if !self.closing {
            let mut chunk = [0u8; 4096];
            for _ in 0..16 {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend(&chunk[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return PumpOutcome::Close,
                }
            }
        }

        // 3. Execute complete frames.
        if !self.closing {
            progressed |= self.process_frames(engine, state);
        }

        // 4. Push out whatever step 3 produced.
        match self.flush_inner() {
            FlushState::Clean { progressed: p } => progressed |= p,
            FlushState::Fatal => return PumpOutcome::Close,
        }

        if (self.closing || peer_eof) && !self.has_pending_output() {
            return PumpOutcome::Close;
        }
        if peer_eof {
            // Half-closed with responses still queued: flush, then close.
            self.closing = true;
        }
        PumpOutcome::Alive {
            made_progress: progressed,
        }
    }

    /// Decodes and executes buffered frames. A framing or decode error
    /// sends one final `Error` response and marks the connection closing —
    /// the error never propagates past this connection.
    fn process_frames(&mut self, engine: &Engine<'_>, state: &ServerState) -> bool {
        let mut progressed = false;
        for _ in 0..MAX_FRAMES_PER_PUMP {
            if self.closing {
                break;
            }
            let Conn {
                inbuf,
                outbuf,
                closing,
                ..
            } = self;
            match inbuf.next_frame() {
                Ok(None) => break,
                Ok(Some(body)) => {
                    progressed = true;
                    match decode_request(body) {
                        Ok(req) => {
                            state.counters.note_request(&req);
                            match req {
                                Request::Stats => {
                                    let json = state.stats_json();
                                    // A stats document larger than a frame
                                    // (giant telemetry event trace) would
                                    // trip the encoder's frame-size assert
                                    // — a network-reachable panic. Refuse
                                    // it on just this connection instead.
                                    if json.len() > MAX_FRAME - 8 {
                                        encode_response(
                                            &Response::Error {
                                                message: "stats document exceeds frame limit",
                                            },
                                            outbuf,
                                        );
                                    } else {
                                        encode_response(&Response::Stats { json: &json }, outbuf);
                                    }
                                }
                                Request::Shutdown => {
                                    state.request_shutdown();
                                    encode_response(&Response::Bye, outbuf);
                                    *closing = true;
                                }
                                ref data_verb => {
                                    let resp = state.store.execute(engine, data_verb);
                                    encode_response(&resp, outbuf);
                                }
                            }
                        }
                        Err(e) => {
                            state.counters.note_malformed();
                            let message = format!("malformed frame: {e}");
                            encode_response(&Response::Error { message: &message }, outbuf);
                            *closing = true;
                        }
                    }
                }
                Err(e) => {
                    // Corrupt length prefix: there is no resynchronizing.
                    state.counters.note_malformed();
                    let message = format!("unrecoverable framing error: {e}");
                    encode_response(&Response::Error { message: &message }, outbuf);
                    *closing = true;
                }
            }
        }
        progressed
    }

    fn flush_inner(&mut self) -> FlushState {
        let mut progressed = false;
        loop {
            if !self.has_pending_output() {
                self.outbuf.clear();
                self.outpos = 0;
                return FlushState::Clean { progressed };
            }
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return FlushState::Fatal,
                Ok(n) => {
                    self.outpos += n;
                    self.last_write_progress = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return FlushState::Clean { progressed }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return FlushState::Fatal,
            }
        }
    }
}
