//! `goccd`: a loopback TCP cache service whose storage runs through the
//! GOCC engine.
//!
//! This crate turns the repository's in-process evaluation stack into a
//! request-serving system: the [`gocc_wire`] protocol on the outside, the
//! existing `workloads::gocache` critical sections (executed via
//! [`Engine`] in either [`Mode::Lock`] or [`Mode::Gocc`]) on the inside.
//! Every byte served exercises the same elision runtime, perceptron and
//! telemetry the microbenchmarks measure — but under real socket traffic,
//! which is what `crates/loadgen` drives.
//!
//! # Threading and ownership model
//!
//! * One **acceptor** thread owns the listener (non-blocking, polled so it
//!   can observe shutdown) and deals accepted connections round-robin onto
//!   per-worker channels — the sharded connection dispatcher.
//! * `workers` **worker** threads each own a disjoint set of connections
//!   outright (no connection is ever touched by two threads), pumping them
//!   with non-blocking reads/writes in a poll loop. Worker state is plain
//!   `&mut`; the only cross-thread state is the [`ServerState`] behind an
//!   `Arc` — the store (whose interior synchronization *is* the system
//!   under test), atomic counters, and the shutdown flag.
//! * Connections that subscribe as replication streams (REPL_HELLO) are
//!   handed off to one dedicated **repl-out** thread: a worker may block
//!   in `wait_replicated` for a `min_acks` write, and the subscriber
//!   stream that ack rides on must keep pumping while it does.
//! * A **malformed frame kills its connection, never the server**: framing
//!   or decode errors send a final `Error` response and close that one
//!   connection. IO errors likewise. A worker never panics on input.
//! * **Slow clients** that stop draining their socket are disconnected
//!   once a pending write makes no progress for
//!   [`ServerConfig::write_timeout`].
//! * **Graceful shutdown** (SHUTDOWN verb or
//!   [`ServerHandle::request_shutdown`]): the acceptor stops, workers
//!   flush pending responses (bounded drain, [`ServerConfig::drain_timeout`]),
//!   close their connections and exit; [`ServerHandle::join`] then yields
//!   a [`ServerSummary`].
//!
//! # Overload protection
//!
//! The server defends its latency under saturation (see `overload`):
//!
//! * **Deadlines**: protocol-v2 frames carry a client budget; requests
//!   that expired while queued are answered `DeadlineExceeded` without
//!   touching the engine, and requests that expire *during* execution get
//!   the same response (effect applied — deadlines bound waiting, not
//!   effects).
//! * **Admission control**: per-worker queue depth sheds expensive verbs
//!   (SCAN/STATS) at half of [`ServerConfig::queue_limit`] and everything
//!   but the control plane at the full limit.
//! * **Brownout**: EWMAs of queue depth and request latency drive
//!   `Healthy → Degraded → Shedding`; shed requests are answered with the
//!   retriable `Overloaded` response on a connection that stays open.
//! * **Memory bound**: a connection holding more than
//!   [`ServerConfig::recv_high_water`] unprocessed bytes stops being read
//!   until it drains — TCP backpressure caps per-connection memory.
//! * The **HEALTH** verb reports the brownout state plus shed and
//!   deadline-miss counters, and is never shed.

mod conn;
mod overload;
mod repl;
mod stats;
mod store;

use std::io;
use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gocc_faultplane::{LoadFault, LoadFaultPlan, TransportFaultPlan};
use gocc_optilock::{GoccConfig, GoccRuntime};
pub use gocc_repl::{ReplConfig, ReplFeed, ReplWaitError};
use gocc_telemetry::trace;
use gocc_wal::{CheckpointImage, DurableTap, Wal};
pub use gocc_wal::{SyncPolicy, WalBackend, WalConfig};
use gocc_wire::Response;
use gocc_workloads::Engine;
pub use gocc_workloads::Mode;

pub use overload::{
    classify, BrownoutConfig, BrownoutController, HealthState, ShedCause, VerbClass,
    SHED_CAUSE_NAMES, TRANSITION_NAMES,
};
pub use stats::{ServerCounters, WorkerGauges};
pub use store::{BatchOutcome, ShardedStore};

use conn::{Conn, PumpOutcome};

/// Deployment knobs for one [`spawn`]ed server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Whether critical sections run pessimistically or through `optiLib`.
    pub mode: Mode,
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
    /// from [`ServerHandle::port`]).
    pub port: u16,
    /// Worker threads (each owns its share of the connections).
    pub workers: usize,
    /// Store shards (each an independent lock + map pair).
    pub shards: usize,
    /// Entry capacity per shard; the transactional map does not grow, so
    /// size at ≥ 2× the expected keys per shard.
    pub capacity_per_shard: usize,
    /// Disconnect a client whose pending response bytes make no progress
    /// for this long.
    pub write_timeout: Duration,
    /// How long the shutdown drain gives each connection to flush its
    /// queued response bytes before closing regardless.
    pub drain_timeout: Duration,
    /// Per-worker admission queue limit: data verbs are shed once a pump
    /// pass has seen this many frames; expensive verbs (SCAN/STATS) at
    /// half of it.
    pub queue_limit: u64,
    /// Stop reading a connection holding this many unprocessed input
    /// bytes until it drains (per-connection memory bound).
    pub recv_high_water: usize,
    /// Brownout state-machine thresholds.
    pub brownout: BrownoutConfig,
    /// Seeded transport fault injection on every accepted connection's
    /// reads/writes (chaos testing); `None` disables it entirely.
    pub fault_plan: Option<Arc<TransportFaultPlan>>,
    /// Seeded load fault injection (worker stalls, slow store calls) for
    /// driving the brownout controller deterministically; `None` disables.
    pub load_plan: Option<Arc<LoadFaultPlan>>,
    /// Flight-recorder sampling rate: trace every N-th request per worker
    /// thread (`0` disables tracing entirely — the hot path then pays one
    /// relaxed atomic load per frame and nothing else).
    pub trace_sample_n: u64,
    /// Seed mixed into flight-recorder trace ids, so two runs with the
    /// same traffic produce the same ids.
    pub trace_seed: u64,
    /// Durability root: the WAL segments and checkpoint live here. `None`
    /// runs purely in memory — no log, no recovery, zero overhead.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL tuning (sync policy, group-commit batch/linger, checkpoint
    /// cadence, fault-injection backend). Ignored without `data_dir`.
    pub wal: WalConfig,
    /// Boot as a replica of this primary (`host:port`). The node serves
    /// reads, answers writes `NotPrimary`, and applies the upstream's
    /// version-stamped stream until promoted.
    pub replica_of: Option<String>,
    /// Accept replication subscribers (REPL_HELLO) as a primary. Implied
    /// for promoted replicas; a plain primary must opt in.
    pub repl_accept: bool,
    /// Writes acknowledge only after this many replicas confirmed the
    /// version (0 = replication is asynchronous, never gates acks).
    pub repl_min_acks: usize,
    /// Primary fencing lease: with `repl_min_acks > 0`, a primary that
    /// has not heard an ack within this window stops acknowledging
    /// writes — a partitioned old primary cannot diverge.
    pub repl_lease: Duration,
    /// How long a write waits for `repl_min_acks` confirmations before
    /// answering with a retriable error.
    pub repl_ack_timeout: Duration,
    /// Seeded transport fault injection on the replication stream only
    /// (partitions, stalls, resets between primary and replica).
    pub repl_fault_plan: Option<Arc<TransportFaultPlan>>,
    /// Seed for the replica's reconnect/resync backoff jitter.
    pub repl_seed: u64,
    /// Self-healing: a replica that suspects its primary dead runs a
    /// quorum election and promotes itself on a majority. Off by default —
    /// the manual REPL_PROMOTE path is unchanged.
    pub repl_auto_promote: bool,
    /// Election electorate besides this node (`host:port` each). A
    /// candidate needs a majority of `peers + self`; with no peers a lone
    /// replica self-promotes (documented single-replica caveat). Also
    /// settable at runtime via [`ServerState::set_repl_peers`] — soak
    /// harnesses only learn ports after spawning.
    pub repl_peers: Vec<String>,
    /// Base suspicion timeout: a replica that has heard nothing from its
    /// primary for this long (plus seeded jitter) declares it dead. Only
    /// consulted with `repl_auto_promote`.
    pub repl_suspect: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: Mode::Gocc,
            port: 0,
            workers: 2,
            shards: 4,
            capacity_per_shard: 1 << 14,
            write_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_millis(500),
            queue_limit: 256,
            recv_high_water: 256 * 1024,
            brownout: BrownoutConfig::default(),
            fault_plan: None,
            load_plan: None,
            trace_sample_n: 64,
            trace_seed: 0x9e37_79b9_7f4a_7c15,
            data_dir: None,
            wal: WalConfig::default(),
            replica_of: None,
            repl_accept: false,
            repl_min_acks: 0,
            repl_lease: Duration::from_millis(500),
            repl_ack_timeout: Duration::from_millis(1000),
            repl_fault_plan: None,
            repl_seed: 0x5ca1_ab1e,
            repl_auto_promote: false,
            repl_peers: Vec::new(),
            repl_suspect: Duration::from_millis(750),
        }
    }
}

/// Shared server state: the runtime + store under test, plus counters.
pub struct ServerState {
    rt: GoccRuntime,
    store: ShardedStore,
    config: ServerConfig,
    shutdown: AtomicBool,
    counters: ServerCounters,
    brownout: BrownoutController,
    /// The durability subsystem, when `data_dir` is configured.
    wal: Option<Arc<Wal>>,
    /// The replication feed, when this node is (or can become) part of a
    /// replication topology. Created at boot, before the listener opens —
    /// a feed installed later would race the syncer and lose records.
    repl_feed: Option<Arc<ReplFeed>>,
    /// Whether this node currently answers writes with `NotPrimary`.
    replica: AtomicBool,
    /// Serializes promotion against the replica sink's batch applies:
    /// the sink holds this while it checks the role and mutates the
    /// store, so `promote_to_primary` can never re-base the feed while
    /// a buffered batch is mid-apply (which would advance the store past
    /// the feed's new base and stall replication forever).
    promote_gate: Mutex<()>,
    /// Last known primary address: the replica's upstream, and the
    /// redirect hint served with `NotPrimary`.
    upstream: Mutex<String>,
    /// Highest election epoch this node has seen. Monotone; stamped into
    /// every outgoing REPL_BATCH/REPL_WELCOME so a deposed primary's
    /// stream is recognizably stale, and adopted from whatever higher
    /// epoch arrives (welcome, batch, vote, announce).
    epoch: AtomicU64,
    /// Highest epoch this node has granted a vote in — one vote per
    /// epoch is what makes at most one winner per epoch possible.
    last_voted_epoch: Mutex<u64>,
    /// Election electorate besides this node (runtime-settable: soak
    /// harnesses only know peer ports after spawning them).
    repl_peers: Mutex<Vec<String>>,
    /// This node's own advertised `host:port`, set once the listener is
    /// bound; what an election winner announces to its peers.
    advertised: Mutex<String>,
    /// Replica-side apply counters for the STATS `repl` object.
    replica_stats: repl::ReplicaCounters,
    /// Build identity echoed in the boot line and STATS header (the
    /// `BENCH_GIT_REV` convention the bench artifacts already use).
    git_rev: String,
}

impl ServerState {
    fn new(config: ServerConfig) -> io::Result<Self> {
        let rt = GoccRuntime::new(GoccConfig::with_telemetry());
        rt.tracer()
            .configure(config.trace_sample_n, config.trace_seed);
        let store = ShardedStore::new(config.shards, config.capacity_per_shard);
        // Recovery before the listener opens: replay checkpoint + WAL tail
        // into the store, so the first accepted connection already sees
        // every write the previous process acknowledged.
        let mut recovered_versions = vec![0u64; config.shards.max(1)];
        let wal = match &config.data_dir {
            Some(dir) => {
                let (wal, recovered) = Wal::open(dir, config.shards.max(1), config.wal.clone())?;
                store.restore_all(rt.htm(), &recovered.shards);
                recovered_versions = recovered.shards.iter().map(|s| s.seq).collect();
                Some(wal)
            }
            None => None,
        };
        // The feed must exist (and be tapped into the WAL) before the
        // first write: records synced before `set_tap` are never
        // replayed, so a late feed would stall at the gap forever.
        let repl_feed = if config.repl_accept || config.replica_of.is_some() {
            let feed = Arc::new(ReplFeed::new(
                ReplConfig {
                    shards: config.shards.max(1),
                    min_acks: config.repl_min_acks,
                    lease: config.repl_lease,
                    ..ReplConfig::default()
                },
                &recovered_versions,
            ));
            if let Some(wal) = &wal {
                wal.set_tap(Arc::clone(&feed) as Arc<dyn DurableTap>);
            }
            Some(feed)
        } else {
            None
        };
        Ok(ServerState {
            rt,
            store,
            shutdown: AtomicBool::new(false),
            counters: ServerCounters::new(config.workers),
            brownout: BrownoutController::new(config.brownout),
            wal,
            repl_feed,
            replica: AtomicBool::new(config.replica_of.is_some()),
            promote_gate: Mutex::new(()),
            upstream: Mutex::new(config.replica_of.clone().unwrap_or_default()),
            epoch: AtomicU64::new(0),
            last_voted_epoch: Mutex::new(0),
            repl_peers: Mutex::new(config.repl_peers.clone()),
            advertised: Mutex::new(String::new()),
            replica_stats: repl::ReplicaCounters::default(),
            git_rev: std::env::var("BENCH_GIT_REV").unwrap_or_else(|_| "unknown".to_string()),
            config,
        })
    }

    /// The durability subsystem, when the server runs with one.
    #[must_use]
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// The replication feed, when this node participates in replication.
    #[must_use]
    pub fn repl_feed(&self) -> Option<&Arc<ReplFeed>> {
        self.repl_feed.as_ref()
    }

    /// Whether this node currently answers writes with `NotPrimary`.
    #[must_use]
    pub fn is_replica(&self) -> bool {
        self.replica.load(Ordering::SeqCst)
    }

    /// `"primary"` / `"replica"` — the boot-line and STATS spelling.
    #[must_use]
    pub fn role_name(&self) -> &'static str {
        if self.is_replica() {
            "replica"
        } else {
            "primary"
        }
    }

    /// Build identity (`BENCH_GIT_REV`, `"unknown"` when unset).
    #[must_use]
    pub fn git_rev(&self) -> &str {
        &self.git_rev
    }

    /// Last known primary address (the replica's upstream and the
    /// `NotPrimary` redirect hint); empty when unknown.
    #[must_use]
    pub fn upstream_hint(&self) -> String {
        self.upstream.lock().map(|g| g.clone()).unwrap_or_default()
    }

    /// Records a new primary address (REPL_PROMOTE repoint, or a
    /// `NotPrimary` hint followed by the replica's sink loop).
    pub fn set_upstream(&self, addr: String) {
        if let Ok(mut g) = self.upstream.lock() {
            *g = addr;
        }
    }

    /// Highest election epoch this node has seen.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Adopts `epoch` if it is higher than anything seen so far (epochs
    /// are monotone — a lower one never wins). Returns the highest known
    /// epoch after the update.
    pub fn observe_epoch(&self, epoch: u64) -> u64 {
        self.epoch.fetch_max(epoch, Ordering::SeqCst).max(epoch)
    }

    /// Grants at most one vote per epoch: true exactly when `epoch` is
    /// higher than every epoch this node has voted in before.
    pub(crate) fn try_vote(&self, epoch: u64) -> bool {
        let mut last = self
            .last_voted_epoch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if epoch > *last {
            *last = epoch;
            true
        } else {
            false
        }
    }

    /// The election electorate besides this node.
    #[must_use]
    pub fn repl_peers(&self) -> Vec<String> {
        self.repl_peers
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    /// Replaces the election electorate (soak harnesses only learn peer
    /// ports after spawning the peers).
    pub fn set_repl_peers(&self, peers: Vec<String>) {
        if let Ok(mut g) = self.repl_peers.lock() {
            *g = peers;
        }
    }

    /// This node's advertised `host:port` (what an election winner
    /// announces); empty before the listener binds.
    #[must_use]
    pub fn advertised(&self) -> String {
        self.advertised
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    fn set_advertised(&self, addr: String) {
        if let Ok(mut g) = self.advertised.lock() {
            *g = addr;
        }
    }

    /// Promotes this node to primary: writes are accepted from here on,
    /// and the feed is re-based to the store's current versions — the
    /// replica's apply path bypassed the tap, so the feed's view is
    /// stale until this reset. Subscribers at other versions get flagged
    /// for snapshot resync, which is exactly right after a failover.
    ///
    /// Bumps the epoch past everything seen, so the promotion fences any
    /// still-running older primary's stream.
    pub fn promote_to_primary(&self, engine: &Engine<'_>) {
        let next = self.epoch().saturating_add(1);
        self.promote_with_epoch(engine, next);
    }

    /// [`ServerState::promote_to_primary`] at a specific (election-won)
    /// epoch.
    ///
    /// Holding `promote_gate` across the role flip *and* the feed
    /// re-base makes promotion atomic with respect to the sink's batch
    /// applies: a buffered batch either lands before the re-base (and is
    /// counted in the versions read here) or observes the flipped role
    /// and is rejected.
    pub fn promote_with_epoch(&self, engine: &Engine<'_>, epoch: u64) {
        let _gate = self
            .promote_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.observe_epoch(epoch);
        if !self.replica.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(feed) = &self.repl_feed {
            feed.reset_versions(&self.store.versions(engine));
        }
        self.set_upstream(String::new());
    }

    /// Times this node's failure detector declared its upstream dead.
    /// Exposed for harnesses that poll detection latency in-process.
    #[must_use]
    pub fn repl_suspicions(&self) -> u64 {
        self.replica_stats.suspicions()
    }

    /// Elections this node started as a candidate.
    #[must_use]
    pub fn repl_elections(&self) -> u64 {
        self.replica_stats.elections.load(Ordering::Relaxed)
    }

    /// Welcomes/batches this node rejected for carrying a stale epoch.
    #[must_use]
    pub fn repl_stale_epoch_rejects(&self) -> u64 {
        self.replica_stats
            .stale_epoch_rejects
            .load(Ordering::Relaxed)
    }

    /// The execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// The server's counters.
    #[must_use]
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The brownout controller (state, transition counters).
    #[must_use]
    pub fn brownout(&self) -> &BrownoutController {
        &self.brownout
    }

    /// The HEALTH response: brownout state plus shed/deadline counters.
    #[must_use]
    pub fn health_response(&self) -> Response<'static> {
        Response::Health {
            state: self.brownout.state() as u8,
            shed_total: self.counters.shed_total(),
            deadline_misses: self.counters.deadline_misses(),
        }
    }

    /// End-of-pump bookkeeping for one worker: publish the pass's queue
    /// depth, feed the brownout controller one observation (idle passes
    /// feed zeros, which is what decays the EWMAs back to Healthy), and
    /// take the load plan's stall draw.
    fn finish_pump(&self, wctx: &mut WorkerCtx) {
        self.counters.set_queue_depth(wctx.worker, wctx.frames_seen);
        let mean_lat_ns = if wctx.lat_count > 0 {
            wctx.lat_sum_ns as f64 / wctx.lat_count as f64
        } else {
            0.0
        };
        self.brownout.observe(wctx.frames_seen as f64, mean_lat_ns);
        wctx.frames_seen = 0;
        wctx.lat_sum_ns = 0;
        wctx.lat_count = 0;
        if let Some(plan) = &self.config.load_plan {
            if let Some(LoadFault::Stall(d)) = plan.draw_worker(wctx.worker as u64) {
                std::thread::sleep(d);
            }
        }
    }

    /// Renders the STATS document: server identity, counters, live entry
    /// count, overload state, flight-recorder counters under `"trace"`,
    /// and the runtime's full [`gocc_telemetry::TelemetryReport`] JSON
    /// spliced in under `"telemetry"`.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let engine = Engine::new(&self.rt, self.config.mode);
        let entries = self.store.total_entries(&engine);
        let telemetry = self
            .rt
            .telemetry()
            .map(|t| t.report().to_json())
            .unwrap_or_else(|| "null".to_string());
        let tracer = self.rt.tracer();
        let mut tw = gocc_telemetry::JsonWriter::new();
        tw.begin_object()
            .field_u64("sample_n", tracer.sample_n())
            .field_u64("spans_pushed", tracer.pushed())
            .field_u64("spans_dropped", tracer.dropped())
            .field_u64("spans_taken", tracer.taken())
            .end_object();
        let wal_json = match &self.wal {
            Some(wal) => wal.stats_json(),
            None => "null".to_string(),
        };
        let repl_json = match &self.repl_feed {
            Some(_) if self.is_replica() => self.replica_stats.json(
                &self.upstream_hint(),
                &self.store.versions(&engine),
                self.epoch(),
            ),
            Some(feed) => feed.stats_json(),
            None => "null".to_string(),
        };
        self.counters.to_json(
            mode_name(self.config.mode),
            self.git_rev(),
            self.role_name(),
            self.config.workers as u64,
            self.config.shards as u64,
            entries,
            self.brownout.state().name(),
            self.brownout.transitions(),
            &telemetry,
            &tw.finish(),
            &wal_json,
            &repl_json,
        )
    }

    /// Drains up to `max` flight-recorder spans (all of them when `max` is
    /// zero) into the TRACE response document.
    #[must_use]
    pub fn trace_json(&self, max: u32) -> String {
        let tracer = self.rt.tracer();
        let cap = if max == 0 { usize::MAX } else { max as usize };
        let (spans, truncated) = tracer.take(cap);
        trace::spans_json(&spans, tracer.pushed(), tracer.dropped(), truncated)
    }

    /// Copies (without draining) every retained span into a Chrome
    /// trace-event JSON document, for `goccd --trace-out` and the soak
    /// binaries' shutdown dumps.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_json(&self.rt.tracer().drain())
    }
}

/// Per-worker pump-pass scratch state, reset by
/// [`ServerState::finish_pump`].
pub(crate) struct WorkerCtx {
    /// This worker's index (stable across the server's lifetime).
    pub(crate) worker: usize,
    /// Frames seen this pump pass — the admission queue depth.
    pub(crate) frames_seen: u64,
    /// Summed engine-execution nanoseconds this pass.
    pub(crate) lat_sum_ns: u64,
    /// Requests executed this pass.
    pub(crate) lat_count: u64,
}

/// `"lock"` / `"gocc"` — the CLI and STATS spelling of a [`Mode`].
#[must_use]
pub fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Lock => "lock",
        Mode::Gocc => "gocc",
    }
}

/// Parses a [`mode_name`] back into a [`Mode`].
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "lock" => Ok(Mode::Lock),
        "gocc" => Ok(Mode::Gocc),
        other => Err(format!("unknown mode {other:?} (expected lock|gocc)")),
    }
}

/// A running server: join handles plus shared state.
pub struct ServerHandle {
    port: u16,
    state: Arc<ServerState>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    replicator: Option<JoinHandle<()>>,
    repl_pump: Option<JoinHandle<()>>,
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: u64,
    /// Connections closed (EOF, errors, shutdown).
    pub conns_closed: u64,
    /// Requests served, all verbs.
    pub requests: u64,
    /// Frames that failed to parse (each cost its connection).
    pub malformed_frames: u64,
    /// Oversized frames skipped with their connection kept alive.
    pub oversized_frames: u64,
    /// Connections dropped for unresponsive reads on the client side.
    pub slow_client_drops: u64,
    /// Requests shed by admission control, all causes.
    pub shed_total: u64,
    /// Deadline misses (expired before or during execution).
    pub deadline_misses: u64,
    /// The final STATS JSON document.
    pub stats_json: String,
}

impl ServerHandle {
    /// The bound port (useful with `port: 0`).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The shared state (counters, stats document).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// A cloned `Arc` of the shared state, for observers that outlive
    /// borrows of the handle (e.g. `goccd --stats-interval-secs`'s
    /// reporter thread).
    #[must_use]
    pub fn state_arc(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Flags shutdown without a wire round-trip.
    pub fn request_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Waits for the acceptor and all workers to exit. Callers that did
    /// not send a SHUTDOWN frame should [`ServerHandle::request_shutdown`]
    /// first, or this blocks until a client does.
    #[must_use = "the summary carries the final stats"]
    pub fn join(self) -> ServerSummary {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(ck) = self.checkpointer {
            let _ = ck.join();
        }
        if let Some(rp) = self.replicator {
            let _ = rp.join();
        }
        if let Some(rp) = self.repl_pump {
            let _ = rp.join();
        }
        // Flush and close the log last — after this, everything the
        // workers acknowledged is on disk and the segments are closed.
        if let Some(wal) = &self.state.wal {
            wal.shutdown();
        }
        let c = &self.state.counters;
        ServerSummary {
            conns_accepted: c.accepted(),
            conns_closed: c.closed(),
            requests: c.total_requests(),
            malformed_frames: c.malformed(),
            oversized_frames: c.oversized(),
            slow_client_drops: c.slow_drops(),
            shed_total: c.shed_total(),
            deadline_misses: c.deadline_misses(),
            stats_json: self.state.stats_json(),
        }
    }
}

/// Binds 127.0.0.1:`port` and starts the acceptor + worker threads.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    assert!(config.workers >= 1, "need at least one worker");
    assert!(config.shards >= 1, "need at least one shard");
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
    listener.set_nonblocking(true)?;
    let port = listener.local_addr()?.port();
    let state = Arc::new(ServerState::new(config)?);
    state.set_advertised(format!("127.0.0.1:{port}"));

    // Subscriber (REPL_HELLO) connections are pumped by a dedicated
    // thread, never a worker: a worker can block in `wait_replicated`
    // for up to `repl_ack_timeout`, and if it also owned the subscriber
    // stream the awaited batch would never be sent — with one worker (or
    // an unlucky round-robin) every min_acks write would time out and
    // the lease would falsely fence the primary. Workers hand
    // subscribed connections over via this channel.
    let (repl_tx, repl_pump) = if state.repl_feed.is_some() {
        let (tx, rx) = std::sync::mpsc::channel::<Conn>();
        let rp_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("goccd-repl-out".into())
            .spawn(move || repl_out_loop(&rx, &rp_state))
            .map_err(|e| {
                state.request_shutdown();
                e
            })?;
        (Some(tx), Some(handle))
    } else {
        (None, None)
    };

    let mut senders: Vec<Sender<std::net::TcpStream>> = Vec::new();
    let mut workers = Vec::new();
    for w in 0..state.config.workers {
        let (tx, rx) = std::sync::mpsc::channel();
        senders.push(tx);
        let worker_state = Arc::clone(&state);
        let worker_repl_tx = repl_tx.clone();
        match std::thread::Builder::new()
            .name(format!("goccd-worker-{w}"))
            .spawn(move || worker_loop(w, &rx, &worker_state, worker_repl_tx))
        {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                // Partial startup: wake the already-running workers (they
                // exit once their sender is gone) and report the failure
                // instead of panicking with threads leaked.
                state.request_shutdown();
                drop(senders);
                for h in workers {
                    let _ = h.join();
                }
                return Err(e);
            }
        }
    }

    let acceptor_state = Arc::clone(&state);
    let acceptor = match std::thread::Builder::new()
        .name("goccd-acceptor".into())
        .spawn(move || acceptor_loop(&listener, senders, &acceptor_state))
    {
        Ok(handle) => handle,
        Err(e) => {
            state.request_shutdown();
            for h in workers {
                let _ = h.join();
            }
            return Err(e);
        }
    };

    let checkpointer = match &state.wal {
        Some(wal) if state.config.wal.checkpoint_every > 0 => {
            let ck_state = Arc::clone(&state);
            let ck_wal = Arc::clone(wal);
            Some(
                std::thread::Builder::new()
                    .name("goccd-checkpoint".into())
                    .spawn(move || checkpoint_loop(&ck_state, &ck_wal))
                    .map_err(|e| {
                        state.request_shutdown();
                        e
                    })?,
            )
        }
        _ => None,
    };

    // The replica's sink thread: dials the upstream, applies the stream,
    // exits on shutdown or promotion.
    let replicator = if state.config.replica_of.is_some() {
        let rp_state = Arc::clone(&state);
        Some(
            std::thread::Builder::new()
                .name("goccd-replica".into())
                .spawn(move || repl::replica_loop(&rp_state))
                .map_err(|e| {
                    state.request_shutdown();
                    e
                })?,
        )
    } else {
        None
    };

    Ok(ServerHandle {
        port,
        state,
        acceptor,
        workers,
        checkpointer,
        replicator,
        repl_pump,
    })
}

/// Periodic checkpointing: every time the WAL accumulates
/// [`WalConfig::checkpoint_every`] records, rotate to a fresh segment,
/// snapshot every shard (each in one read section), commit the image to
/// the side file and delete the covered segments. Crashes at any point
/// leave a recoverable directory — `crates/wal` owns and tests that.
fn checkpoint_loop(state: &ServerState, wal: &Wal) {
    let engine = Engine::new(&state.rt, state.config.mode);
    while !state.shutting_down() {
        if !wal.should_checkpoint() {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        let (base_gen, retired) = match wal.begin_checkpoint() {
            Ok(x) => x,
            Err(_) => return, // log dead (seeded crash or I/O failure)
        };
        let image = CheckpointImage {
            base_gen,
            shards: state.store.snapshot_all(&engine),
        };
        if wal.finish_checkpoint(&image, &retired).is_err() {
            return;
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    senders: Vec<Sender<std::net::TcpStream>>,
    state: &ServerState,
) {
    let mut next = 0usize;
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                state.counters.note_accept();
                // Shard the connection onto a worker; a dead worker (only
                // possible on panic) just drops the stream.
                let _ = senders[next % senders.len()].send(stream);
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the senders tells each worker no more connections are
    // coming.
}

fn worker_loop(
    worker: usize,
    rx: &Receiver<std::net::TcpStream>,
    state: &ServerState,
    repl_tx: Option<Sender<Conn>>,
) {
    let engine = Engine::new(&state.rt, state.config.mode);
    let mut conns: Vec<Conn> = Vec::new();
    let mut dispatcher_gone = false;
    let mut wctx = WorkerCtx {
        worker,
        frames_seen: 0,
        lat_sum_ns: 0,
        lat_count: 0,
    };
    loop {
        // Adopt newly dispatched connections.
        loop {
            match rx.try_recv() {
                Ok(stream) => conns.push(Conn::new(stream, state.config.fault_plan.clone())),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    dispatcher_gone = true;
                    break;
                }
            }
        }

        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].pump(&engine, state, &mut wctx) {
                PumpOutcome::Alive { made_progress } => {
                    progressed |= made_progress;
                    // A connection that subscribed as a replication
                    // stream leaves this worker for the dedicated
                    // repl-out thread: a worker can block in
                    // `wait_replicated`, and the stream it waits on must
                    // keep pumping while it does.
                    if conns[i].is_repl_sub() {
                        if let Some(tx) = &repl_tx {
                            let c = conns.swap_remove(i);
                            if let Err(send_err) = tx.send(c) {
                                // Repl thread already gone (shutdown):
                                // close the stream here.
                                send_err.0.on_close(state);
                                state.counters.note_close();
                            }
                            continue;
                        }
                    }
                    i += 1;
                }
                PumpOutcome::Close => {
                    let c = conns.swap_remove(i);
                    c.on_close(state);
                    state.counters.note_close();
                }
            }
        }
        state.finish_pump(&mut wctx);

        if state.shutting_down() {
            drain_and_close(&mut conns, state);
            return;
        }
        if dispatcher_gone && conns.is_empty() {
            return;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// The dedicated replication-output thread: owns every subscriber
/// connection (the workers migrate them here right after REPL_HELLO) so
/// the batch/heartbeat stream is pumped even while every worker sits
/// blocked in [`ReplFeed::wait_replicated`] — pumping subscribers from
/// the workers deadlocked every `min_acks` write whenever the writing
/// client and the subscription shared a worker.
fn repl_out_loop(rx: &Receiver<Conn>, state: &ServerState) {
    let engine = Engine::new(&state.rt, state.config.mode);
    let mut conns: Vec<Conn> = Vec::new();
    let mut senders_gone = false;
    // Scratch only: this thread's frames must not feed the brownout
    // controller or the per-worker gauges, so `finish_pump` is never
    // called and the counters are cleared by hand each pass.
    let mut wctx = WorkerCtx {
        worker: 0,
        frames_seen: 0,
        lat_sum_ns: 0,
        lat_count: 0,
    };
    loop {
        // Adopt subscriber connections handed over by the workers.
        loop {
            match rx.try_recv() {
                Ok(c) => conns.push(c),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    senders_gone = true;
                    break;
                }
            }
        }

        let mut progressed = false;
        conns.retain_mut(|c| match c.pump(&engine, state, &mut wctx) {
            PumpOutcome::Alive { made_progress } => {
                progressed |= made_progress;
                true
            }
            PumpOutcome::Close => {
                c.on_close(state);
                state.counters.note_close();
                false
            }
        });
        wctx.frames_seen = 0;
        wctx.lat_sum_ns = 0;
        wctx.lat_count = 0;

        if state.shutting_down() {
            drain_and_close(&mut conns, state);
            return;
        }
        if senders_gone && conns.is_empty() {
            return;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Bounded final flush: give every connection up to
/// [`ServerConfig::drain_timeout`] to drain its pending response bytes,
/// then close regardless.
fn drain_and_close(conns: &mut Vec<Conn>, state: &ServerState) {
    let deadline = Instant::now() + state.config.drain_timeout;
    while Instant::now() < deadline && conns.iter().any(Conn::has_pending_output) {
        for c in conns.iter_mut() {
            c.flush_only();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for c in conns.drain(..) {
        c.on_close(state);
        state.counters.note_close();
    }
}
