//! `goccd`: a loopback TCP cache service whose storage runs through the
//! GOCC engine.
//!
//! This crate turns the repository's in-process evaluation stack into a
//! request-serving system: the [`gocc_wire`] protocol on the outside, the
//! existing `workloads::gocache` critical sections (executed via
//! [`Engine`] in either [`Mode::Lock`] or [`Mode::Gocc`]) on the inside.
//! Every byte served exercises the same elision runtime, perceptron and
//! telemetry the microbenchmarks measure — but under real socket traffic,
//! which is what `crates/loadgen` drives.
//!
//! # Threading and ownership model
//!
//! * One **acceptor** thread owns the listener (non-blocking, polled so it
//!   can observe shutdown) and deals accepted connections round-robin onto
//!   per-worker channels — the sharded connection dispatcher.
//! * `workers` **worker** threads each own a disjoint set of connections
//!   outright (no connection is ever touched by two threads), pumping them
//!   with non-blocking reads/writes in a poll loop. Worker state is plain
//!   `&mut`; the only cross-thread state is the [`ServerState`] behind an
//!   `Arc` — the store (whose interior synchronization *is* the system
//!   under test), atomic counters, and the shutdown flag.
//! * A **malformed frame kills its connection, never the server**: framing
//!   or decode errors send a final `Error` response and close that one
//!   connection. IO errors likewise. A worker never panics on input.
//! * **Slow clients** that stop draining their socket are disconnected
//!   once a pending write makes no progress for
//!   [`ServerConfig::write_timeout`].
//! * **Graceful shutdown** (SHUTDOWN verb or
//!   [`ServerHandle::request_shutdown`]): the acceptor stops, workers
//!   flush pending responses (bounded drain), close their connections and
//!   exit; [`ServerHandle::join`] then yields a [`ServerSummary`].

mod conn;
mod stats;
mod store;

use std::io;
use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gocc_faultplane::TransportFaultPlan;
use gocc_optilock::{GoccConfig, GoccRuntime};
use gocc_workloads::Engine;
pub use gocc_workloads::Mode;

pub use stats::ServerCounters;
pub use store::ShardedStore;

use conn::{Conn, PumpOutcome};

/// Deployment knobs for one [`spawn`]ed server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Whether critical sections run pessimistically or through `optiLib`.
    pub mode: Mode,
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
    /// from [`ServerHandle::port`]).
    pub port: u16,
    /// Worker threads (each owns its share of the connections).
    pub workers: usize,
    /// Store shards (each an independent lock + map pair).
    pub shards: usize,
    /// Entry capacity per shard; the transactional map does not grow, so
    /// size at ≥ 2× the expected keys per shard.
    pub capacity_per_shard: usize,
    /// Disconnect a client whose pending response bytes make no progress
    /// for this long.
    pub write_timeout: Duration,
    /// Seeded transport fault injection on every accepted connection's
    /// reads/writes (chaos testing); `None` disables it entirely.
    pub fault_plan: Option<Arc<TransportFaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: Mode::Gocc,
            port: 0,
            workers: 2,
            shards: 4,
            capacity_per_shard: 1 << 14,
            write_timeout: Duration::from_secs(5),
            fault_plan: None,
        }
    }
}

/// Shared server state: the runtime + store under test, plus counters.
pub struct ServerState {
    rt: GoccRuntime,
    store: ShardedStore,
    config: ServerConfig,
    shutdown: AtomicBool,
    counters: ServerCounters,
}

impl ServerState {
    fn new(config: ServerConfig) -> Self {
        ServerState {
            rt: GoccRuntime::new(GoccConfig::with_telemetry()),
            store: ShardedStore::new(config.shards, config.capacity_per_shard),
            config,
            shutdown: AtomicBool::new(false),
            counters: ServerCounters::default(),
        }
    }

    /// The execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// The server's counters.
    #[must_use]
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Renders the STATS document: server identity, counters, live entry
    /// count, and the runtime's full [`gocc_telemetry::TelemetryReport`]
    /// JSON spliced in under `"telemetry"`.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let engine = Engine::new(&self.rt, self.config.mode);
        let entries = self.store.total_entries(&engine);
        let telemetry = self
            .rt
            .telemetry()
            .map(|t| t.report().to_json())
            .unwrap_or_else(|| "null".to_string());
        self.counters.to_json(
            mode_name(self.config.mode),
            self.config.workers as u64,
            self.config.shards as u64,
            entries,
            &telemetry,
        )
    }
}

/// `"lock"` / `"gocc"` — the CLI and STATS spelling of a [`Mode`].
#[must_use]
pub fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Lock => "lock",
        Mode::Gocc => "gocc",
    }
}

/// Parses a [`mode_name`] back into a [`Mode`].
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "lock" => Ok(Mode::Lock),
        "gocc" => Ok(Mode::Gocc),
        other => Err(format!("unknown mode {other:?} (expected lock|gocc)")),
    }
}

/// A running server: join handles plus shared state.
pub struct ServerHandle {
    port: u16,
    state: Arc<ServerState>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: u64,
    /// Connections closed (EOF, errors, shutdown).
    pub conns_closed: u64,
    /// Requests served, all verbs.
    pub requests: u64,
    /// Frames that failed to parse (each cost its connection).
    pub malformed_frames: u64,
    /// Connections dropped for unresponsive reads on the client side.
    pub slow_client_drops: u64,
    /// The final STATS JSON document.
    pub stats_json: String,
}

impl ServerHandle {
    /// The bound port (useful with `port: 0`).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The shared state (counters, stats document).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Flags shutdown without a wire round-trip.
    pub fn request_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Waits for the acceptor and all workers to exit. Callers that did
    /// not send a SHUTDOWN frame should [`ServerHandle::request_shutdown`]
    /// first, or this blocks until a client does.
    #[must_use = "the summary carries the final stats"]
    pub fn join(self) -> ServerSummary {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        let c = &self.state.counters;
        ServerSummary {
            conns_accepted: c.accepted(),
            conns_closed: c.closed(),
            requests: c.total_requests(),
            malformed_frames: c.malformed(),
            slow_client_drops: c.slow_drops(),
            stats_json: self.state.stats_json(),
        }
    }
}

/// Binds 127.0.0.1:`port` and starts the acceptor + worker threads.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    assert!(config.workers >= 1, "need at least one worker");
    assert!(config.shards >= 1, "need at least one shard");
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
    listener.set_nonblocking(true)?;
    let port = listener.local_addr()?.port();
    let state = Arc::new(ServerState::new(config));

    let mut senders: Vec<Sender<std::net::TcpStream>> = Vec::new();
    let mut workers = Vec::new();
    for w in 0..state.config.workers {
        let (tx, rx) = std::sync::mpsc::channel();
        senders.push(tx);
        let worker_state = Arc::clone(&state);
        match std::thread::Builder::new()
            .name(format!("goccd-worker-{w}"))
            .spawn(move || worker_loop(&rx, &worker_state))
        {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                // Partial startup: wake the already-running workers (they
                // exit once their sender is gone) and report the failure
                // instead of panicking with threads leaked.
                state.request_shutdown();
                drop(senders);
                for h in workers {
                    let _ = h.join();
                }
                return Err(e);
            }
        }
    }

    let acceptor_state = Arc::clone(&state);
    let acceptor = match std::thread::Builder::new()
        .name("goccd-acceptor".into())
        .spawn(move || acceptor_loop(&listener, senders, &acceptor_state))
    {
        Ok(handle) => handle,
        Err(e) => {
            state.request_shutdown();
            for h in workers {
                let _ = h.join();
            }
            return Err(e);
        }
    };

    Ok(ServerHandle {
        port,
        state,
        acceptor,
        workers,
    })
}

fn acceptor_loop(
    listener: &TcpListener,
    senders: Vec<Sender<std::net::TcpStream>>,
    state: &ServerState,
) {
    let mut next = 0usize;
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                state.counters.note_accept();
                // Shard the connection onto a worker; a dead worker (only
                // possible on panic) just drops the stream.
                let _ = senders[next % senders.len()].send(stream);
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the senders tells each worker no more connections are
    // coming.
}

fn worker_loop(rx: &Receiver<std::net::TcpStream>, state: &ServerState) {
    let engine = Engine::new(&state.rt, state.config.mode);
    let mut conns: Vec<Conn> = Vec::new();
    let mut dispatcher_gone = false;
    loop {
        // Adopt newly dispatched connections.
        loop {
            match rx.try_recv() {
                Ok(stream) => conns.push(Conn::new(stream, state.config.fault_plan.clone())),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    dispatcher_gone = true;
                    break;
                }
            }
        }

        let mut progressed = false;
        conns.retain_mut(|c| match c.pump(&engine, state) {
            PumpOutcome::Alive { made_progress } => {
                progressed |= made_progress;
                true
            }
            PumpOutcome::Close => {
                state.counters.note_close();
                false
            }
        });

        if state.shutting_down() {
            drain_and_close(&mut conns, state);
            return;
        }
        if dispatcher_gone && conns.is_empty() {
            return;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Bounded final flush: give every connection up to 500 ms to drain its
/// pending response bytes, then close regardless.
fn drain_and_close(conns: &mut Vec<Conn>, state: &ServerState) {
    let deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < deadline && conns.iter().any(Conn::has_pending_output) {
        for c in conns.iter_mut() {
            c.flush_only();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for _ in conns.drain(..) {
        state.counters.note_close();
    }
}
