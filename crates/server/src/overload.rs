//! Overload protection: admission control and the brownout state machine.
//!
//! `goccd` protects itself from saturation with three cooperating
//! mechanisms, all of which live here so they can be unit-tested against a
//! deterministic [`gocc_faultplane::LoadFaultPlan`] with no sockets and no
//! wall-clock load:
//!
//! * **Cost-aware admission** ([`BrownoutController::admit`]): each verb
//!   carries a [`VerbClass`]; expensive classes (SCAN, STATS) are shed at
//!   half the queue limit, cheap data verbs at the full limit, and
//!   control-plane verbs (HEALTH, SHUTDOWN) are always admitted so an
//!   operator can still observe and stop an overloaded server.
//! * **Brownout degradation**: an EWMA of per-pump queue depth and request
//!   latency drives a three-state machine — `Healthy → Degraded →
//!   Shedding` — that escalates one step per overloaded observation and
//!   de-escalates one step after [`BrownoutConfig::recover_obs`]
//!   consecutive calm observations. `Degraded` rejects SCAN and rate-caps
//!   STATS; `Shedding` additionally rejects all writes, keeping only GETs
//!   and the control plane.
//! * **Shed accounting**: every rejection carries a [`ShedCause`] so the
//!   STATS document and `BENCH_overload.json` can attribute load shedding
//!   to its mechanism.
//!
//! The controller is deliberately cheap on the admit path: the state is
//! one `AtomicU8` load, and the EWMAs behind the mutex are touched only
//! once per worker pump pass, never per request.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gocc_telemetry::Ewma;
use gocc_wire::Request;

/// The server's overload state, reported by the HEALTH verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Normal operation; only queue limits apply.
    Healthy = 0,
    /// Pressure detected: SCAN rejected, STATS rate-capped.
    Degraded = 1,
    /// Saturated: additionally rejects all non-GET data verbs.
    Shedding = 2,
}

impl HealthState {
    /// Decodes the wire byte; unknown values clamp to `Shedding` (the
    /// conservative reading for a client deciding whether to back off).
    #[must_use]
    pub fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Shedding,
        }
    }

    /// Stable lowercase name, used in STATS and bench artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Shedding => "shedding",
        }
    }
}

/// Admission cost class of a verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerbClass {
    /// GET: cheapest, served even while shedding.
    Read,
    /// SET/DEL/INCR: cheap, rejected only while shedding.
    Write,
    /// SCAN: walks every shard; first to go.
    Scan,
    /// STATS/TRACE: render the full telemetry document or drain the span
    /// ring; rate-capped under pressure.
    Stats,
    /// HEALTH/SHUTDOWN: always admitted.
    Control,
}

/// Classifies a decoded request for admission.
#[must_use]
pub fn classify(req: &Request<'_>) -> VerbClass {
    match req {
        Request::Get { .. } | Request::GetS { .. } => VerbClass::Read,
        Request::Set { .. } | Request::Del { .. } | Request::Incr { .. } | Request::SetS { .. } => {
            VerbClass::Write
        }
        Request::Scan { .. } => VerbClass::Scan,
        Request::Stats | Request::Trace { .. } => VerbClass::Stats,
        // FLUSH is control-plane: it is the operator's durability barrier,
        // and shedding it would let an overloaded server dodge the very
        // fsync pressure the operator is trying to observe.
        Request::Health | Request::Shutdown | Request::Flush => VerbClass::Control,
    }
}

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedCause {
    /// Queue depth reached the full limit (any data verb).
    QueueFull,
    /// Queue depth reached the expensive-verb tier (half the limit).
    QueueExpensive,
    /// SCAN rejected in `Degraded` or `Shedding`.
    DegradedScan,
    /// STATS exceeded the degraded-mode rate cap.
    DegradedStats,
    /// Write-class verb rejected in `Shedding`.
    SheddingWrite,
}

impl ShedCause {
    /// Stable index into [`SHED_CAUSE_NAMES`] and counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ShedCause::QueueFull => 0,
            ShedCause::QueueExpensive => 1,
            ShedCause::DegradedScan => 2,
            ShedCause::DegradedStats => 3,
            ShedCause::SheddingWrite => 4,
        }
    }
}

/// Names matching [`ShedCause::index`], for reports.
pub const SHED_CAUSE_NAMES: [&str; 5] = [
    "queue_full",
    "queue_expensive",
    "degraded_scan",
    "degraded_stats",
    "shedding_write",
];

/// Brownout transition edges, indexed into [`BrownoutController::transitions`].
pub const TRANSITION_NAMES: [&str; 4] = [
    "healthy_to_degraded",
    "degraded_to_shedding",
    "shedding_to_degraded",
    "degraded_to_healthy",
];

/// Thresholds and smoothing for the brownout state machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrownoutConfig {
    /// EWMA smoothing factor for both signals, in `(0, 1]`.
    pub alpha: f64,
    /// Escalate when the queue-depth EWMA exceeds this.
    pub depth_high: f64,
    /// A calm observation needs the depth EWMA below this.
    pub depth_low: f64,
    /// Escalate when the request-latency EWMA exceeds this.
    pub latency_high: Duration,
    /// A calm observation needs the latency EWMA below this.
    pub latency_low: Duration,
    /// Consecutive calm observations required to de-escalate one step.
    pub recover_obs: u32,
    /// Minimum spacing between admitted STATS while degraded or shedding.
    pub stats_min_interval: Duration,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            alpha: 0.2,
            depth_high: 128.0,
            depth_low: 16.0,
            latency_high: Duration::from_millis(5),
            latency_low: Duration::from_millis(1),
            recover_obs: 10,
            stats_min_interval: Duration::from_millis(100),
        }
    }
}

/// Signal EWMAs and the de-escalation streak, touched once per pump pass.
#[derive(Debug)]
struct Signals {
    depth: Ewma,
    latency_ns: Ewma,
    calm_streak: u32,
}

/// The three-state brownout machine shared by every worker.
///
/// [`observe`](BrownoutController::observe) is called once per worker pump
/// pass; [`admit`](BrownoutController::admit) per request but touches only
/// the atomic state.
#[derive(Debug)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    state: AtomicU8,
    signals: Mutex<Signals>,
    transitions: [AtomicU64; 4],
    last_stats: Mutex<Option<Instant>>,
}

impl BrownoutController {
    /// A controller starting `Healthy` with unprimed signals.
    #[must_use]
    pub fn new(cfg: BrownoutConfig) -> Self {
        BrownoutController {
            state: AtomicU8::new(HealthState::Healthy as u8),
            signals: Mutex::new(Signals {
                depth: Ewma::new(cfg.alpha),
                latency_ns: Ewma::new(cfg.alpha),
                calm_streak: 0,
            }),
            transitions: Default::default(),
            last_stats: Mutex::new(None),
            cfg,
        }
    }

    /// The configuration this controller runs with.
    #[must_use]
    pub fn config(&self) -> &BrownoutConfig {
        &self.cfg
    }

    /// Current state (one relaxed atomic load; safe on the admit path).
    #[must_use]
    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Counts per transition edge, indexed per [`TRANSITION_NAMES`].
    #[must_use]
    pub fn transitions(&self) -> [u64; 4] {
        [
            self.transitions[0].load(Ordering::Relaxed),
            self.transitions[1].load(Ordering::Relaxed),
            self.transitions[2].load(Ordering::Relaxed),
            self.transitions[3].load(Ordering::Relaxed),
        ]
    }

    fn set_state(&self, from: HealthState, to: HealthState) {
        let edge = match (from, to) {
            (HealthState::Healthy, HealthState::Degraded) => 0,
            (HealthState::Degraded, HealthState::Shedding) => 1,
            (HealthState::Shedding, HealthState::Degraded) => 2,
            (HealthState::Degraded, HealthState::Healthy) => 3,
            _ => unreachable!("brownout only moves one step at a time"),
        };
        self.transitions[edge].fetch_add(1, Ordering::Relaxed);
        self.state.store(to as u8, Ordering::Relaxed);
    }

    /// Feeds one pump pass's signals: the pass's queue depth (frames seen)
    /// and its mean request latency in nanoseconds (0 when idle — idle
    /// passes decay the EWMAs, which is what lets the server recover).
    ///
    /// Escalates at most one step per observation when either EWMA is
    /// above its high threshold; de-escalates one step after
    /// `recover_obs` consecutive observations with both EWMAs below
    /// their low thresholds.
    pub fn observe(&self, queue_depth: f64, latency_ns: f64) {
        let mut sig = self.signals.lock().unwrap();
        let d = sig.depth.observe(queue_depth);
        let l = sig.latency_ns.observe(latency_ns);
        let hot = d > self.cfg.depth_high || l > self.cfg.latency_high.as_nanos() as f64;
        let calm = d < self.cfg.depth_low && l < self.cfg.latency_low.as_nanos() as f64;
        let cur = self.state();
        if hot {
            sig.calm_streak = 0;
            match cur {
                HealthState::Healthy => self.set_state(cur, HealthState::Degraded),
                HealthState::Degraded => self.set_state(cur, HealthState::Shedding),
                HealthState::Shedding => {}
            }
        } else if calm {
            sig.calm_streak += 1;
            if sig.calm_streak >= self.cfg.recover_obs {
                sig.calm_streak = 0;
                match cur {
                    HealthState::Shedding => self.set_state(cur, HealthState::Degraded),
                    HealthState::Degraded => self.set_state(cur, HealthState::Healthy),
                    HealthState::Healthy => {}
                }
            }
        } else {
            // Neither hot nor calm: hold state, restart the calm streak.
            sig.calm_streak = 0;
        }
    }

    /// The admission decision for one request.
    ///
    /// `depth` is the requester's current queue depth (frames already
    /// seen this pump pass), `limit` the configured per-worker queue
    /// limit. Control verbs are always admitted.
    pub fn admit(&self, class: VerbClass, depth: u64, limit: u64) -> Result<(), ShedCause> {
        if class == VerbClass::Control {
            return Ok(());
        }
        let expensive = matches!(class, VerbClass::Scan | VerbClass::Stats);
        if expensive && depth >= limit / 2 {
            return Err(ShedCause::QueueExpensive);
        }
        if depth >= limit {
            return Err(ShedCause::QueueFull);
        }
        match self.state() {
            HealthState::Healthy => Ok(()),
            HealthState::Degraded => match class {
                VerbClass::Scan => Err(ShedCause::DegradedScan),
                VerbClass::Stats if !self.allow_stats() => Err(ShedCause::DegradedStats),
                _ => Ok(()),
            },
            HealthState::Shedding => match class {
                VerbClass::Scan => Err(ShedCause::DegradedScan),
                VerbClass::Stats if !self.allow_stats() => Err(ShedCause::DegradedStats),
                VerbClass::Write => Err(ShedCause::SheddingWrite),
                _ => Ok(()),
            },
        }
    }

    /// Rate cap for STATS under pressure: at most one admitted per
    /// [`BrownoutConfig::stats_min_interval`].
    fn allow_stats(&self) -> bool {
        let mut last = self.last_stats.lock().unwrap();
        match *last {
            Some(t) if t.elapsed() < self.cfg.stats_min_interval => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_faultplane::{LoadFault, LoadFaultPlan, LoadMix};

    /// A config with no time dependence beyond the injected signals, so a
    /// LoadFaultPlan schedule maps 1:1 onto a transition sequence.
    fn test_cfg() -> BrownoutConfig {
        BrownoutConfig {
            alpha: 0.5,
            depth_high: 8.0,
            depth_low: 1.0,
            latency_high: Duration::from_millis(2),
            latency_low: Duration::from_micros(200),
            recover_obs: 3,
            stats_min_interval: Duration::from_millis(50),
        }
    }

    /// Replays a plan's worker-stall schedule into the controller as
    /// latency observations, the exact coupling the server uses.
    fn feed_plan(
        ctl: &BrownoutController,
        plan: &LoadFaultPlan,
        passes: usize,
    ) -> Vec<HealthState> {
        let mut states = Vec::with_capacity(passes);
        for _ in 0..passes {
            let latency_ns = match plan.draw_worker(0) {
                Some(LoadFault::Stall(d)) => d.as_nanos() as f64,
                _ => 50_000.0,
            };
            ctl.observe(4.0, latency_ns);
            states.push(ctl.state());
        }
        states
    }

    #[test]
    fn load_plan_drives_every_transition_edge() {
        let ctl = BrownoutController::new(test_cfg());
        let plan = LoadFaultPlan::new(
            0xC0DE,
            LoadMix {
                stall: 0.9,
                stall_for: Duration::from_millis(4),
                ..LoadMix::default()
            },
        );
        // Overload phase: the plan injects 4 ms stalls at rate 0.9, far
        // above latency_high — the controller must walk H→D→S.
        let states = feed_plan(&ctl, &plan, 40);
        assert_eq!(ctl.state(), HealthState::Shedding, "states: {states:?}");
        assert!(
            states.contains(&HealthState::Degraded),
            "must pass through Degraded"
        );
        // Calm phase: idle pumps observe (0, 0); both EWMAs decay and the
        // controller must walk S→D→H.
        for _ in 0..40 {
            ctl.observe(0.0, 0.0);
        }
        assert_eq!(ctl.state(), HealthState::Healthy);
        let t = ctl.transitions();
        assert!(
            t.iter().all(|&n| n >= 1),
            "every edge must be taken exactly once here: {t:?}"
        );
        assert_eq!(t[0], 1, "one escalation to Degraded");
        assert_eq!(t[1], 1, "one escalation to Shedding");
    }

    #[test]
    fn same_seed_same_transition_sequence() {
        let mix = LoadMix {
            stall: 0.5,
            stall_for: Duration::from_millis(3),
            ..LoadMix::default()
        };
        let run = |seed: u64| {
            let ctl = BrownoutController::new(test_cfg());
            let plan = LoadFaultPlan::new(seed, mix);
            let states = feed_plan(&ctl, &plan, 120);
            (states, ctl.transitions())
        };
        let (sa, ta) = run(11);
        let (sb, tb) = run(11);
        assert_eq!(sa, sb, "same seed must replay the same state sequence");
        assert_eq!(ta, tb);
        let (sc, _) = run(12);
        assert_ne!(sa, sc, "different seeds must diverge");
    }

    #[test]
    fn escalation_is_one_step_per_observation() {
        let ctl = BrownoutController::new(test_cfg());
        // A single enormous observation still only moves one step.
        ctl.observe(1e9, 1e12);
        assert_eq!(ctl.state(), HealthState::Degraded);
        ctl.observe(1e9, 1e12);
        assert_eq!(ctl.state(), HealthState::Shedding);
        ctl.observe(1e9, 1e12);
        assert_eq!(ctl.state(), HealthState::Shedding, "Shedding saturates");
    }

    #[test]
    fn recovery_requires_consecutive_calm() {
        let ctl = BrownoutController::new(test_cfg());
        ctl.observe(20.0, 0.0);
        ctl.observe(20.0, 0.0);
        assert_eq!(ctl.state(), HealthState::Shedding);
        // Two calm-territory observations followed by a middling one
        // (neither calm nor hot): the calm streak can never reach
        // recover_obs = 3, so even after many passes the state must hold.
        for _ in 0..20 {
            ctl.observe(0.0, 0.0);
            ctl.observe(0.0, 0.0);
            ctl.observe(4.0, 500_000.0);
        }
        assert_eq!(
            ctl.state(),
            HealthState::Shedding,
            "an interrupted calm streak must not de-escalate"
        );
        for _ in 0..50 {
            ctl.observe(0.0, 0.0);
        }
        assert_eq!(ctl.state(), HealthState::Healthy);
    }

    #[test]
    fn admission_table_by_state() {
        let ctl = BrownoutController::new(test_cfg());
        let limit = 16;
        // Healthy: everything under the limit is admitted.
        for class in [
            VerbClass::Read,
            VerbClass::Write,
            VerbClass::Scan,
            VerbClass::Stats,
        ] {
            assert_eq!(ctl.admit(class, 0, limit), Ok(()));
        }
        // Queue tiering applies in every state: expensive classes shed at
        // limit/2, cheap ones at the limit.
        assert_eq!(
            ctl.admit(VerbClass::Scan, limit / 2, limit),
            Err(ShedCause::QueueExpensive)
        );
        assert_eq!(ctl.admit(VerbClass::Read, limit / 2, limit), Ok(()));
        assert_eq!(
            ctl.admit(VerbClass::Read, limit, limit),
            Err(ShedCause::QueueFull)
        );
        // Degraded: SCAN out, writes still in.
        ctl.observe(1e9, 1e12);
        assert_eq!(ctl.state(), HealthState::Degraded);
        assert_eq!(
            ctl.admit(VerbClass::Scan, 0, limit),
            Err(ShedCause::DegradedScan)
        );
        assert_eq!(ctl.admit(VerbClass::Write, 0, limit), Ok(()));
        // Shedding: writes out, reads and control still in.
        ctl.observe(1e9, 1e12);
        assert_eq!(ctl.state(), HealthState::Shedding);
        assert_eq!(
            ctl.admit(VerbClass::Write, 0, limit),
            Err(ShedCause::SheddingWrite)
        );
        assert_eq!(ctl.admit(VerbClass::Read, 0, limit), Ok(()));
        assert_eq!(ctl.admit(VerbClass::Control, u64::MAX, limit), Ok(()));
    }

    #[test]
    fn stats_rate_cap_under_pressure() {
        let mut cfg = test_cfg();
        cfg.stats_min_interval = Duration::from_secs(3600);
        let ctl = BrownoutController::new(cfg);
        ctl.observe(1e9, 1e12);
        assert_eq!(ctl.state(), HealthState::Degraded);
        assert_eq!(
            ctl.admit(VerbClass::Stats, 0, 16),
            Ok(()),
            "first is admitted"
        );
        assert_eq!(
            ctl.admit(VerbClass::Stats, 0, 16),
            Err(ShedCause::DegradedStats),
            "second inside the interval is capped"
        );
    }

    #[test]
    fn names_and_indices_agree() {
        for (i, cause) in [
            ShedCause::QueueFull,
            ShedCause::QueueExpensive,
            ShedCause::DegradedScan,
            ShedCause::DegradedStats,
            ShedCause::SheddingWrite,
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(cause.index(), i);
            assert!(!SHED_CAUSE_NAMES[i].is_empty());
        }
        for s in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Shedding,
        ] {
            assert_eq!(HealthState::from_u8(s as u8), s);
        }
        assert_eq!(HealthState::from_u8(200), HealthState::Shedding);
    }
}
