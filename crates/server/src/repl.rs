//! Server-side replication wiring: the primary's per-subscriber stream
//! pump and the replica's upstream sink loop.
//!
//! The division of labor with `gocc-repl`:
//!
//! * [`gocc_repl::ReplFeed`] owns the protocol *state* (reorder buffer,
//!   per-subscriber queues, resync phases, leases). It is fed by the WAL
//!   syncer's durable tap (or directly by the request path on a no-WAL
//!   primary) and knows nothing about sockets.
//! * This module owns the *I/O*: [`pump_repl_out`] runs inside a
//!   subscriber connection's pump quantum — on the dedicated repl-out
//!   thread, never a worker, so a worker blocked in `wait_replicated`
//!   cannot starve the stream it waits on — and turns feed state into
//!   `REPL_BATCH` frames: snapshot chunks for resyncing shards,
//!   incremental batches for streaming ones, count-0 heartbeats to keep
//!   the lease audited; [`replica_loop`] is the replica's dedicated
//!   thread that dials the upstream primary, applies what arrives, and
//!   answers version-checked ACKs/NAKs.

use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocc_repl::{resync_backoff, ReplFeed, SnapshotAssembler, SubId};
use gocc_telemetry::{trace, JsonWriter, Span, SpanKind};
use gocc_wal::{CheckpointImage, Staged, WalKind};
use gocc_wire::{
    decode_response, encode_repl_request, encode_response, write_frame, FaultyStream, FrameBuf,
    ReplRecord, ReplRequest, Response, REPL_FLAG_FIN, REPL_FLAG_RESET, REPL_FLAG_SNAP,
    REPL_KIND_DEL, REPL_KIND_PUT, REPL_KIND_PUTVAL,
};
use gocc_workloads::Engine;

use crate::store::ShardedStore;
use crate::ServerState;

/// Records per incremental `REPL_BATCH` frame (and per snapshot chunk):
/// ~100 KiB of payload, far under the 1 MiB frame cap, so one slow frame
/// never monopolizes a worker's write path.
const BATCH_RECORDS: usize = 4096;

/// Stop draining the feed into a subscriber connection once this many
/// response bytes are queued — TCP backpressure, not unbounded memory.
const OUT_HIGH_WATER: usize = 256 * 1024;

/// One subscribed replica stream, owned by its connection.
pub(crate) struct ReplSub {
    /// The feed-side subscriber slot.
    pub(crate) id: SubId,
    /// Last heartbeat emission.
    last_beat: Instant,
    /// Snapshot resync in flight: streamed chunk by chunk across pump
    /// quanta so the output buffer stays bounded by [`OUT_HIGH_WATER`]
    /// (plus one chunk) even for a huge shard.
    snap: Option<SnapStream>,
}

impl ReplSub {
    pub(crate) fn new(id: SubId) -> Self {
        ReplSub {
            id,
            last_beat: Instant::now(),
            snap: None,
        }
    }
}

/// One armed shard snapshot mid-stream. Holding the raw entries (24 B
/// each) instead of encoding the whole shard at once is what keeps the
/// per-subscriber output buffer bounded — the encoded chunks are
/// produced lazily, backpressured by the connection's flush.
struct SnapStream {
    shard: u32,
    entries: Vec<(u64, u64, u64)>,
    /// The snapshot's version — `prev_version` on every chunk, and the
    /// cut point handed back to the feed at FIN.
    seq: u64,
    now: u64,
    /// Next entry index to encode.
    next: usize,
    /// Whether the RESET chunk already went out.
    started: bool,
}

/// One pump quantum of primary→replica output for a subscribed stream:
/// snapshot-resync any flagged shards, drain incremental batches, and
/// emit heartbeats (count-0 batches stamped with the stream's version,
/// which double as the version audit that keeps the lease honest).
/// Returns whether anything was produced.
pub(crate) fn pump_repl_out(
    sub: &mut ReplSub,
    feed: &ReplFeed,
    store: &ShardedStore,
    engine: &Engine<'_>,
    outbuf: &mut Vec<u8>,
    lease: Duration,
    epoch: u64,
) -> bool {
    let mut progressed = false;

    // Snapshot resync, one shard at a time, streamed across pump
    // quanta: arm (so records released from here on queue *behind* the
    // snapshot), snapshot the live shard in one read section, ship it
    // chunked — pausing whenever the output buffer crosses
    // [`OUT_HIGH_WATER`] and resuming from the last chunk next quantum —
    // then cut the queue at the snapshot's version. If an overflow
    // re-flagged the shard while chunks streamed, the cut fails and a
    // later pump restarts the resync — the replica's assembler handles
    // a second RESET mid-flight.
    while outbuf.len() < OUT_HIGH_WATER {
        if sub.snap.is_none() {
            let Some(&shard) = feed.resync_needed(sub.id).first() else {
                break;
            };
            feed.arm_resync(sub.id, shard);
            let (entries, seq, now) = store.shard_at(shard as usize).snapshot(engine);
            sub.snap = Some(SnapStream {
                shard,
                entries,
                seq,
                now,
                next: 0,
                started: false,
            });
        }
        let snap = sub.snap.as_mut().expect("armed above");
        let mut finished = false;
        while outbuf.len() < OUT_HIGH_WATER {
            let end = (snap.next + BATCH_RECORDS).min(snap.entries.len());
            let mut flags = REPL_FLAG_SNAP;
            if !snap.started {
                flags |= REPL_FLAG_RESET;
            }
            if end == snap.entries.len() {
                flags |= REPL_FLAG_FIN;
            }
            let records: Vec<ReplRecord> = snap.entries[snap.next..end]
                .iter()
                .map(|&(key, value, exp)| ReplRecord {
                    kind: REPL_KIND_PUT,
                    key,
                    value,
                    exp,
                })
                .collect();
            encode_response(
                &Response::ReplBatch {
                    shard: snap.shard,
                    flags,
                    prev_version: snap.seq,
                    now: snap.now,
                    epoch,
                    records,
                },
                outbuf,
            );
            snap.started = true;
            snap.next = end;
            progressed = true;
            if flags & REPL_FLAG_FIN != 0 {
                finished = true;
                break;
            }
        }
        if finished {
            let snap = sub.snap.take().expect("streamed above");
            let _ = feed.resync_cut(sub.id, snap.shard, snap.seq);
        }
        // Not finished: paused at the high-water mark, resume next pump.
    }

    // Incremental stream, bounded by output backpressure.
    while outbuf.len() < OUT_HIGH_WATER {
        let batches = feed.drain(sub.id, BATCH_RECORDS);
        if batches.is_empty() {
            break;
        }
        for b in batches {
            encode_response(
                &Response::ReplBatch {
                    shard: b.shard,
                    flags: 0,
                    prev_version: b.prev_version,
                    now: b.now,
                    epoch,
                    records: b.records,
                },
                outbuf,
            );
        }
        progressed = true;
    }

    // Heartbeats at a quarter of the lease: an idle stream still acks
    // four times per window, so a healthy-but-quiet replica never gets
    // the primary fenced, and a version drift surfaces as a NAK even
    // with no traffic.
    if sub.last_beat.elapsed() >= lease / 4 {
        for (shard, v) in feed.heartbeat_versions(sub.id).iter().enumerate() {
            if let Some(version) = v {
                encode_response(
                    &Response::ReplBatch {
                        shard: shard as u32,
                        flags: 0,
                        prev_version: *version,
                        now: 0,
                        epoch,
                        records: Vec::new(),
                    },
                    outbuf,
                );
                progressed = true;
            }
        }
        sub.last_beat = Instant::now();
    }
    progressed
}

/// Replica-side counters, reported in the STATS `repl` object.
#[derive(Debug, Default)]
pub(crate) struct ReplicaCounters {
    batches_applied: AtomicU64,
    records_applied: AtomicU64,
    naks_sent: AtomicU64,
    snap_resyncs: AtomicU64,
    reconnects: AtomicU64,
    /// Times the failure detector declared the primary dead.
    pub(crate) suspicions: AtomicU64,
    /// Elections this node started as a candidate.
    pub(crate) elections: AtomicU64,
    /// Batches/welcomes rejected for carrying an epoch older than ours —
    /// a deposed primary's stream being fenced.
    pub(crate) stale_epoch_rejects: AtomicU64,
}

impl ReplicaCounters {
    pub(crate) fn json(&self, upstream: &str, versions: &[u64], epoch: u64) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("role", "replica")
            .field_str("upstream", upstream)
            .field_u64("epoch", epoch)
            .key("versions")
            .begin_array();
        for &v in versions {
            w.u64(v);
        }
        w.end_array()
            .field_u64(
                "batches_applied",
                self.batches_applied.load(Ordering::Relaxed),
            )
            .field_u64(
                "records_applied",
                self.records_applied.load(Ordering::Relaxed),
            )
            .field_u64("naks_sent", self.naks_sent.load(Ordering::Relaxed))
            .field_u64("snap_resyncs", self.snap_resyncs.load(Ordering::Relaxed))
            .field_u64("reconnects", self.reconnects.load(Ordering::Relaxed))
            .field_u64("suspicions", self.suspicions.load(Ordering::Relaxed))
            .field_u64("elections", self.elections.load(Ordering::Relaxed))
            .field_u64(
                "stale_epoch_rejects",
                self.stale_epoch_rejects.load(Ordering::Relaxed),
            )
            .end_object();
        w.finish()
    }

    /// Times the failure detector declared the primary dead.
    pub(crate) fn suspicions(&self) -> u64 {
        self.suspicions.load(Ordering::Relaxed)
    }
}

/// How one upstream session ended.
enum SessionEnd {
    /// Shutdown or promotion observed — the loop exits.
    Stop,
    /// The upstream changed (Promote repoint or NotPrimary hint) —
    /// reconnect immediately, fresh backoff.
    Repointed,
    /// Connection or protocol failure — reconnect with backoff.
    Failed,
    /// The failure detector fired mid-session: the upstream is connected
    /// but silent past the suspicion timeout.
    Suspect,
}

/// Deterministic per-node jitter in `[0, base)` derived from the backoff
/// seed (SplitMix64 finalizer): two replicas with different seeds suspect
/// — and stand as candidates — at staggered times, so a dual candidacy in
/// the same epoch (both self-voted, both losing) resolves on the retry.
fn suspect_jitter(seed: u64, base: Duration) -> Duration {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    base.mul_f64((z >> 11) as f64 / (1u64 << 53) as f64)
}

/// The replica's sink thread: dial the upstream, announce our versions,
/// apply what arrives, ack (or NAK) every batch, and reconnect with
/// bounded seeded backoff when the stream dies. Exits on shutdown or
/// once a promotion (manual or election-won) makes this node the primary.
///
/// With `repl_auto_promote`, this thread is also the failure detector's
/// consumer: a mid-session silence (`SessionEnd::Suspect`) or a dead
/// upstream (consecutive dial failures past the same suspicion window)
/// triggers a quorum election via [`run_election`].
pub(crate) fn replica_loop(state: &Arc<ServerState>) {
    let engine = Engine::new(&state.rt, state.config.mode);
    let mut attempt: u32 = 0;
    // Last moment the upstream proved alive (any frame received). Dial
    // failures alone must not instantly trigger an election — the window
    // below turns "can't reach it" into "dead" only after the suspicion
    // timeout, same bar as the in-session detector.
    let mut last_contact = Instant::now();
    let suspect_after = state.config.repl_suspect
        + suspect_jitter(state.config.repl_seed, state.config.repl_suspect);
    while !state.shutting_down() && state.is_replica() {
        let mut suspected = false;
        match run_session(state, &engine, &mut last_contact) {
            SessionEnd::Stop => return,
            SessionEnd::Repointed => attempt = 0,
            SessionEnd::Failed => {
                attempt = attempt.saturating_add(1);
                state
                    .replica_stats
                    .reconnects
                    .fetch_add(1, Ordering::Relaxed);
                if state.config.repl_auto_promote && last_contact.elapsed() >= suspect_after {
                    state
                        .replica_stats
                        .suspicions
                        .fetch_add(1, Ordering::Relaxed);
                    suspected = true;
                }
            }
            SessionEnd::Suspect => {
                state
                    .replica_stats
                    .suspicions
                    .fetch_add(1, Ordering::Relaxed);
                suspected = true;
            }
        }
        if suspected && state.config.repl_auto_promote {
            if run_election(state, &engine) {
                // Won: this node is the primary now; the sink exits.
                return;
            }
            // Lost or aborted: reset the contact clock so the next
            // suspicion needs a fresh full window (a new primary may be
            // announcing itself right now).
            last_contact = Instant::now();
        }
        let wait = resync_backoff(
            state.config.repl_seed,
            1,
            attempt,
            Duration::from_millis(10),
            Duration::from_millis(500),
        );
        let until = Instant::now() + wait;
        while Instant::now() < until && !state.shutting_down() && state.is_replica() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// One quorum election round. Returns true when this node won and
/// promoted itself.
///
/// The candidate votes for itself first (one vote per epoch, same rule as
/// everyone else), then canvasses each peer with `REPL_CANDIDATE`. Voters
/// grant at most one vote per epoch, never grant while they are a live
/// primary, and never grant to a candidate with less replicated history
/// than their own — so a majority implies the winner is unique for the
/// epoch and no better-replicated node was bypassed. With no configured
/// peers the electorate is this node alone and it self-promotes: the
/// documented single-replica deployment caveat (no quorum exists to
/// protect against a partitioned false positive).
fn run_election(state: &Arc<ServerState>, engine: &Engine<'_>) -> bool {
    let epoch = state.epoch().saturating_add(1);
    if !state.try_vote(epoch) {
        return false; // already voted in this epoch (a peer beat us to it)
    }
    state
        .replica_stats
        .elections
        .fetch_add(1, Ordering::Relaxed);
    let versions = state.store.versions(engine);
    let peers = state.repl_peers();
    let electorate = peers.len() + 1;
    let majority = electorate / 2 + 1;
    let mut votes = 1usize; // self
    for peer in &peers {
        if state.shutting_down() || !state.is_replica() {
            return false;
        }
        match request_vote(state, peer, epoch, &versions) {
            VoteOutcome::Granted => votes += 1,
            VoteOutcome::Denied { known_epoch } => {
                if known_epoch > epoch {
                    // A peer has seen a newer epoch — someone already won
                    // a later election. Adopt and stand down.
                    state.observe_epoch(known_epoch);
                    return false;
                }
            }
            VoteOutcome::Unreachable => {}
        }
        if votes >= majority {
            break;
        }
    }
    if votes < majority {
        return false;
    }
    state.promote_with_epoch(engine, epoch);
    // Tell the losers where the new primary lives. Best effort: a peer
    // that misses the announce still learns the epoch from the next
    // welcome/batch it sees, or from a NotPrimary hint.
    let advertised = state.advertised();
    for peer in &peers {
        let mut frame = Vec::new();
        encode_repl_request(
            &ReplRequest::EpochAnnounce {
                epoch,
                primary: advertised.as_bytes(),
            },
            &mut frame,
        );
        if let Some(mut stream) = dial_peer(peer) {
            let _ = write_frame(&mut stream, &frame);
            // One best-effort response read keeps the frame from being
            // lost in a close race; the content is irrelevant.
            let mut scratch = [0u8; 256];
            let _ = stream.read(&mut scratch);
        }
    }
    true
}

/// One canvassed peer's verdict.
enum VoteOutcome {
    Granted,
    Denied { known_epoch: u64 },
    Unreachable,
}

fn dial_peer(peer: &str) -> Option<TcpStream> {
    let addr = peer.to_socket_addrs().ok()?.next()?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(250)).ok()?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    Some(stream)
}

fn request_vote(state: &Arc<ServerState>, peer: &str, epoch: u64, versions: &[u64]) -> VoteOutcome {
    let Some(stream) = dial_peer(peer) else {
        return VoteOutcome::Unreachable;
    };
    let mut stream = FaultyStream::maybe(stream, state.config.repl_fault_plan.clone());
    let mut frame = Vec::new();
    encode_repl_request(
        &ReplRequest::Candidate {
            epoch,
            versions: versions.to_vec(),
        },
        &mut frame,
    );
    if write_frame(&mut stream, &frame).is_err() {
        return VoteOutcome::Unreachable;
    }
    let mut inbuf = FrameBuf::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_millis(750);
    while Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => return VoteOutcome::Unreachable,
            Ok(n) => inbuf.extend(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return VoteOutcome::Unreachable,
        }
        match inbuf.next_frame() {
            Ok(Some(body)) => {
                return match decode_response(body) {
                    Ok(Response::ReplVote { granted, epoch, .. }) => {
                        if granted {
                            VoteOutcome::Granted
                        } else {
                            VoteOutcome::Denied { known_epoch: epoch }
                        }
                    }
                    _ => VoteOutcome::Unreachable,
                };
            }
            Ok(None) => {}
            Err(_) => return VoteOutcome::Unreachable,
        }
    }
    VoteOutcome::Unreachable
}

fn run_session(
    state: &Arc<ServerState>,
    engine: &Engine<'_>,
    last_contact: &mut Instant,
) -> SessionEnd {
    // Same window as the dial-failure path in `replica_loop`: silence
    // past `repl_suspect` plus this node's deterministic jitter.
    let suspect_after = state.config.repl_suspect
        + suspect_jitter(state.config.repl_seed, state.config.repl_suspect);
    let upstream = state.upstream_hint();
    let Some(addr) = upstream.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        return SessionEnd::Failed;
    };
    let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
        return SessionEnd::Failed;
    };
    let _ = stream.set_nodelay(true);
    // Short read timeout: every timeout tick re-checks shutdown, role and
    // upstream, so promotion and repointing are observed promptly.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return SessionEnd::Failed;
    }
    let mut stream = FaultyStream::maybe(stream, state.config.repl_fault_plan.clone());

    let mut frame = Vec::new();
    let versions = state.store.versions(engine);
    encode_repl_request(&ReplRequest::Hello { versions }, &mut frame);
    if write_frame(&mut stream, &frame).is_err() {
        return SessionEnd::Failed;
    }

    let mut inbuf = FrameBuf::new();
    let mut assembler = SnapshotAssembler::new();
    let mut chunk = [0u8; 4096];
    let counters = &state.replica_stats;
    loop {
        if state.shutting_down() || !state.is_replica() {
            return SessionEnd::Stop;
        }
        if state.upstream_hint() != upstream {
            return SessionEnd::Repointed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return SessionEnd::Failed,
            Ok(n) => {
                // Any bytes from the upstream prove it alive — this is
                // the failure detector's heartbeat observation. Count-0
                // REPL_BATCH heartbeats arrive at lease/4 on an idle
                // stream, so a healthy primary refreshes this clock far
                // inside the suspicion window.
                *last_contact = Instant::now();
                inbuf.extend(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // The detector: a connected-but-silent upstream (frozen
                // process, dead NIC, partition) never returns `Ok(0)`;
                // it just stops producing frames. Declare it suspect
                // once the silence outlives the window.
                if state.config.repl_auto_promote && last_contact.elapsed() >= suspect_after {
                    return SessionEnd::Suspect;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return SessionEnd::Failed,
        }
        loop {
            let body = match inbuf.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(_) => return SessionEnd::Failed,
            };
            let resp = match decode_response(body) {
                Ok(r) => r,
                Err(_) => return SessionEnd::Failed,
            };
            match resp {
                Response::ReplWelcome { shards, epoch } => {
                    if shards as usize != state.store.shards() {
                        // Topology mismatch is permanent; stop rather
                        // than reconnect-spin against it.
                        return SessionEnd::Stop;
                    }
                    if epoch < state.epoch() {
                        // A deposed primary greeting us from a past
                        // epoch: refuse the session. The backoff loop
                        // will redial (or be repointed by the winner's
                        // announce).
                        counters.stale_epoch_rejects.fetch_add(1, Ordering::Relaxed);
                        return SessionEnd::Failed;
                    }
                    state.observe_epoch(epoch);
                }
                Response::ReplBatch {
                    shard,
                    flags,
                    prev_version,
                    now,
                    epoch,
                    records,
                } => {
                    if epoch < state.epoch() {
                        // Stale-epoch fencing, the replica's half: a
                        // batch stamped by a deposed primary must never
                        // reach the store, even if it was in flight when
                        // the election concluded.
                        counters.stale_epoch_rejects.fetch_add(1, Ordering::Relaxed);
                        return SessionEnd::Failed;
                    }
                    state.observe_epoch(epoch);
                    let shard_idx = shard as usize;
                    if shard_idx >= state.store.shards() {
                        return SessionEnd::Failed;
                    }
                    // Role re-check, atomic with the apply: a
                    // REPL_PROMOTE may have flipped this node to primary
                    // while this batch sat buffered in `inbuf`. The gate
                    // pairs with `promote_to_primary` — once the
                    // promotion has re-based the feed, no batch may
                    // advance the store past that base, so the check and
                    // the store mutation share one critical section.
                    let gate = state
                        .promote_gate
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if !state.is_replica() {
                        return SessionEnd::Stop;
                    }
                    // Durability owed before the ACK may go out, decided
                    // under the gate, performed after it drops (WAL
                    // waits and snapshots must not hold the promotion
                    // mutex).
                    let mut stage_records = false;
                    let mut need_checkpoint = false;
                    let ack = if flags & REPL_FLAG_SNAP != 0 {
                        match assembler.feed(shard, flags, prev_version, &records) {
                            Some((entries, version)) => {
                                state
                                    .store
                                    .shard_at(shard_idx)
                                    .replace(engine, &entries, version, now);
                                counters.snap_resyncs.fetch_add(1, Ordering::Relaxed);
                                need_checkpoint = true;
                                Some(ReplRequest::Ack {
                                    shard,
                                    version,
                                    nak: false,
                                })
                            }
                            None => None, // mid-snapshot chunk: ack at FIN
                        }
                    } else {
                        let trace_id = state.rt.tracer().begin_request();
                        let t0 = if trace_id != 0 { trace::now_ns() } else { 0 };
                        let applied = state.store.apply_repl_batch(
                            engine,
                            shard_idx,
                            prev_version,
                            now,
                            &records,
                        );
                        if trace_id != 0 {
                            state.rt.tracer().push(Span {
                                trace_id,
                                kind: SpanKind::ReplApply,
                                start_ns: t0,
                                dur_ns: trace::now_ns().saturating_sub(t0),
                                a: u64::from(shard),
                                b: prev_version,
                            });
                        }
                        match applied {
                            Ok(version) => {
                                counters.batches_applied.fetch_add(1, Ordering::Relaxed);
                                counters
                                    .records_applied
                                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                                stage_records = true;
                                Some(ReplRequest::Ack {
                                    shard,
                                    version,
                                    nak: false,
                                })
                            }
                            Err(actual) => {
                                // The OCC conflict on the wire: our version
                                // is not what the stream assumed. NAK with
                                // where we actually are; the primary
                                // resyncs us from a snapshot.
                                counters.naks_sent.fetch_add(1, Ordering::Relaxed);
                                Some(ReplRequest::Ack {
                                    shard,
                                    version: actual,
                                    nak: true,
                                })
                            }
                        }
                    };
                    // The gate must not be held across socket writes.
                    drop(gate);
                    // Replica-side durable WAL: everything just applied
                    // must reach disk before the ACK goes out, so a
                    // freshly promoted replica serves a store no weaker
                    // than the history it acknowledged.
                    if let Some(wal) = state.wal() {
                        if stage_records && !records.is_empty() {
                            let mut last = None;
                            for (i, r) in records.iter().enumerate() {
                                let kind = match r.kind {
                                    REPL_KIND_PUT => WalKind::Put,
                                    REPL_KIND_DEL => WalKind::Del,
                                    REPL_KIND_PUTVAL => WalKind::PutVal,
                                    // decode_response already rejected
                                    // anything else
                                    _ => continue,
                                };
                                last = Some(wal.stage(Staged {
                                    shard,
                                    seq: prev_version + 1 + i as u64,
                                    kind,
                                    key: r.key,
                                    value: r.value,
                                    exp: r.exp,
                                }));
                            }
                            if let Some(t) = last {
                                if wal.wait(t).is_err() {
                                    // Log dead: acking a record we could
                                    // not make durable would be a lie —
                                    // drop the session and let the
                                    // primary resync or fence us.
                                    return SessionEnd::Failed;
                                }
                            }
                        }
                        if need_checkpoint {
                            // A snapshot bypasses the record stream, so
                            // the log holds no journal of it: a
                            // synchronous checkpoint is the only way to
                            // make the resynced shard durable before the
                            // ACK. Any older records still in the active
                            // segment carry seqs at or below the
                            // snapshot's version (versions only advance),
                            // so recovery skips them against the image.
                            match wal.begin_checkpoint() {
                                Ok((base_gen, retired)) => {
                                    let image = CheckpointImage {
                                        base_gen,
                                        shards: state.store.snapshot_all(engine),
                                    };
                                    if wal.finish_checkpoint(&image, &retired).is_err() {
                                        return SessionEnd::Failed;
                                    }
                                }
                                Err(_) => return SessionEnd::Failed,
                            }
                        }
                    }
                    if let Some(ack) = ack {
                        frame.clear();
                        encode_repl_request(&ack, &mut frame);
                        if write_frame(&mut stream, &frame).is_err() {
                            return SessionEnd::Failed;
                        }
                    }
                }
                Response::NotPrimary { hint } => {
                    // The node we dialed is itself a replica. Follow the
                    // hint if it has one.
                    if !hint.is_empty() && hint != upstream {
                        state.set_upstream(hint.to_string());
                        return SessionEnd::Repointed;
                    }
                    return SessionEnd::Failed;
                }
                Response::Error { .. } => return SessionEnd::Failed,
                _ => return SessionEnd::Failed,
            }
        }
    }
}
