//! Lock-free server counters and the STATS JSON document.

use std::sync::atomic::{AtomicU64, Ordering};

use gocc_telemetry::JsonWriter;
use gocc_wire::Request;

/// Wire verbs, in STATS reporting order.
const VERB_NAMES: [&str; 7] = ["get", "set", "del", "incr", "scan", "stats", "shutdown"];

fn verb_index(req: &Request<'_>) -> usize {
    match req {
        Request::Get { .. } => 0,
        Request::Set { .. } => 1,
        Request::Del { .. } => 2,
        Request::Incr { .. } => 3,
        Request::Scan { .. } => 4,
        Request::Stats => 5,
        Request::Shutdown => 6,
    }
}

/// Relaxed atomic counters for everything the data plane touches.
#[derive(Debug, Default)]
pub struct ServerCounters {
    accepted: AtomicU64,
    closed: AtomicU64,
    by_verb: [AtomicU64; 7],
    malformed: AtomicU64,
    slow_drops: AtomicU64,
}

impl ServerCounters {
    pub(crate) fn note_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_close(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_request(&self, req: &Request<'_>) {
        self.by_verb[verb_index(req)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_slow_drop(&self) {
        self.slow_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections closed.
    #[must_use]
    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// Requests served across all verbs.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.by_verb.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Frames that failed to decode.
    #[must_use]
    pub fn malformed(&self) -> u64 {
        self.malformed.load(Ordering::Relaxed)
    }

    /// Connections dropped on write timeout.
    #[must_use]
    pub fn slow_drops(&self) -> u64 {
        self.slow_drops.load(Ordering::Relaxed)
    }

    /// Renders the STATS document. `telemetry_json` is spliced in raw
    /// (either a rendered [`gocc_telemetry::TelemetryReport`] or `null`).
    #[must_use]
    pub(crate) fn to_json(
        &self,
        mode: &str,
        workers: u64,
        shards: u64,
        entries: u64,
        telemetry_json: &str,
    ) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("server", "goccd")
            .field_str("mode", mode)
            .field_u64("workers", workers)
            .field_u64("shards", shards)
            .field_u64("conns_accepted", self.accepted())
            .field_u64("conns_closed", self.closed())
            .key("requests")
            .begin_object()
            .field_u64("total", self.total_requests());
        for (name, counter) in VERB_NAMES.iter().zip(&self.by_verb) {
            w.field_u64(name, counter.load(Ordering::Relaxed));
        }
        w.end_object()
            .field_u64("malformed_frames", self.malformed())
            .field_u64("slow_client_drops", self.slow_drops())
            .field_u64("entries", entries)
            .field_raw("telemetry", telemetry_json)
            .end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_telemetry::JsonValue;

    #[test]
    fn stats_document_parses_and_reconciles() {
        let c = ServerCounters::default();
        c.note_accept();
        c.note_accept();
        c.note_close();
        c.note_request(&Request::Get { key: b"k" });
        c.note_request(&Request::Set {
            key: b"k",
            value: 1,
            ttl: 0,
        });
        c.note_request(&Request::Get { key: b"k" });
        c.note_malformed();
        let json = c.to_json("gocc", 2, 4, 17, "null");
        let v = JsonValue::parse(&json).expect("stats JSON parses");
        assert_eq!(v.get("mode").unwrap().as_str(), Some("gocc"));
        assert_eq!(v.get("conns_accepted").unwrap().as_f64(), Some(2.0));
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("total").unwrap().as_f64(), Some(3.0));
        assert_eq!(reqs.get("get").unwrap().as_f64(), Some(2.0));
        assert_eq!(reqs.get("set").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("telemetry"), Some(&JsonValue::Null));
        assert_eq!(v.get("entries").unwrap().as_f64(), Some(17.0));
    }
}
