//! Lock-free server counters and the STATS JSON document.

use std::sync::atomic::{AtomicU64, Ordering};

use gocc_telemetry::{JsonWriter, LatencyHistogram};
use gocc_wire::Request;

use crate::overload::{ShedCause, SHED_CAUSE_NAMES, TRANSITION_NAMES};

/// Wire verbs, in STATS reporting order.
const VERB_NAMES: [&str; 12] = [
    "get", "set", "del", "incr", "scan", "stats", "health", "shutdown", "trace", "flush", "set_s",
    "get_s",
];

pub(crate) fn verb_index(req: &Request<'_>) -> usize {
    match req {
        Request::Get { .. } => 0,
        Request::Set { .. } => 1,
        Request::Del { .. } => 2,
        Request::Incr { .. } => 3,
        Request::Scan { .. } => 4,
        Request::Stats => 5,
        Request::Health => 6,
        Request::Shutdown => 7,
        Request::Trace { .. } => 8,
        Request::Flush => 9,
        Request::SetS { .. } => 10,
        Request::GetS { .. } => 11,
    }
}

/// Per-worker admission gauges, reported in the STATS `per_worker` array.
#[derive(Debug, Default)]
pub struct WorkerGauges {
    /// Frames seen in the worker's most recent pump pass (a gauge, not a
    /// counter).
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth` over the server's lifetime.
    queue_depth_max: AtomicU64,
    /// Requests this worker shed.
    shed_total: AtomicU64,
    /// Requests this worker executed against the engine.
    executed: AtomicU64,
}

impl WorkerGauges {
    /// Most recent pump pass's queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Lifetime high-water mark of the queue depth.
    #[must_use]
    pub fn queue_depth_max(&self) -> u64 {
        self.queue_depth_max.load(Ordering::Relaxed)
    }

    /// Requests this worker shed.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Requests this worker executed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }
}

/// Relaxed atomic counters for everything the data plane touches.
#[derive(Debug)]
pub struct ServerCounters {
    accepted: AtomicU64,
    closed: AtomicU64,
    by_verb: [AtomicU64; 12],
    malformed: AtomicU64,
    /// Oversized frames skipped (connection survived and resynchronized).
    oversized: AtomicU64,
    slow_drops: AtomicU64,
    /// Requests shed, by [`ShedCause::index`].
    shed_by_cause: [AtomicU64; 5],
    /// Total nanoseconds spent deciding + answering shed requests.
    shed_ns_total: AtomicU64,
    /// Slowest single shed decision, nanoseconds.
    shed_ns_max: AtomicU64,
    /// Requests whose deadline had already expired on arrival (never
    /// reached the engine).
    deadline_pre: AtomicU64,
    /// Requests whose deadline expired during execution (effect applied,
    /// response replaced with `DeadlineExceeded`).
    deadline_post: AtomicU64,
    /// End-to-end data-verb latency (engine execution, ns) — the source of
    /// the p99 the `--stats-interval-secs` summary line prints.
    request_latency: LatencyHistogram,
    /// Shard-groups executed through one elided section (a batch of 1 is
    /// still one group).
    batches_executed: AtomicU64,
    /// Shard-groups that held exactly one request — when this tracks
    /// `batches_executed`, clients aren't pipelining and the batch path
    /// adds no amortization.
    single_request_batches: AtomicU64,
    /// Distribution of requests per executed shard-group (log2 buckets,
    /// counting requests rather than nanoseconds).
    requests_per_batch: LatencyHistogram,
    per_worker: Vec<WorkerGauges>,
}

impl Default for ServerCounters {
    fn default() -> Self {
        ServerCounters::new(1)
    }
}

impl ServerCounters {
    /// Counters for a server with `workers` worker threads.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ServerCounters {
            accepted: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            by_verb: Default::default(),
            malformed: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            slow_drops: AtomicU64::new(0),
            shed_by_cause: Default::default(),
            shed_ns_total: AtomicU64::new(0),
            shed_ns_max: AtomicU64::new(0),
            deadline_pre: AtomicU64::new(0),
            deadline_post: AtomicU64::new(0),
            request_latency: LatencyHistogram::new(),
            batches_executed: AtomicU64::new(0),
            single_request_batches: AtomicU64::new(0),
            requests_per_batch: LatencyHistogram::new(),
            per_worker: (0..workers.max(1))
                .map(|_| WorkerGauges::default())
                .collect(),
        }
    }

    pub(crate) fn note_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_close(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_request(&self, req: &Request<'_>) {
        self.by_verb[verb_index(req)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_oversized(&self) {
        self.oversized.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_slow_drop(&self) {
        self.slow_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one shed request: its cause, the worker that shed it, and
    /// the nanoseconds the whole reject path took (decision + response
    /// encode) — the soak asserts this stays under 10 µs.
    pub(crate) fn note_shed(&self, worker: usize, cause: ShedCause, ns: u64) {
        self.shed_by_cause[cause.index()].fetch_add(1, Ordering::Relaxed);
        self.shed_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.shed_ns_max.fetch_max(ns, Ordering::Relaxed);
        self.per_worker[worker % self.per_worker.len()]
            .shed_total
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_deadline_pre(&self) {
        self.deadline_pre.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_deadline_post(&self) {
        self.deadline_post.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_executed(&self, worker: usize, ns: u64) {
        self.per_worker[worker % self.per_worker.len()]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        self.request_latency.record(ns);
    }

    /// Accounts one executed shard-group of `len` requests.
    pub(crate) fn note_batch(&self, len: u64) {
        self.batches_executed.fetch_add(1, Ordering::Relaxed);
        if len == 1 {
            self.single_request_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.requests_per_batch.record(len);
    }

    pub(crate) fn set_queue_depth(&self, worker: usize, depth: u64) {
        let g = &self.per_worker[worker % self.per_worker.len()];
        g.queue_depth.store(depth, Ordering::Relaxed);
        g.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Connections accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections closed.
    #[must_use]
    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// Requests served across all verbs.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.by_verb.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Frames that failed to decode.
    #[must_use]
    pub fn malformed(&self) -> u64 {
        self.malformed.load(Ordering::Relaxed)
    }

    /// Oversized frames skipped with the connection kept alive.
    #[must_use]
    pub fn oversized(&self) -> u64 {
        self.oversized.load(Ordering::Relaxed)
    }

    /// Connections dropped on write timeout.
    #[must_use]
    pub fn slow_drops(&self) -> u64 {
        self.slow_drops.load(Ordering::Relaxed)
    }

    /// Total requests shed, all causes.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_by_cause
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Shed counts by [`ShedCause::index`].
    #[must_use]
    pub fn shed_by_cause(&self) -> [u64; 5] {
        let mut out = [0; 5];
        for (o, c) in out.iter_mut().zip(&self.shed_by_cause) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }

    /// Total nanoseconds spent on shed paths.
    #[must_use]
    pub fn shed_ns_total(&self) -> u64 {
        self.shed_ns_total.load(Ordering::Relaxed)
    }

    /// Slowest single shed path, nanoseconds.
    #[must_use]
    pub fn shed_ns_max(&self) -> u64 {
        self.shed_ns_max.load(Ordering::Relaxed)
    }

    /// Requests rejected before execution because their deadline had
    /// already expired.
    #[must_use]
    pub fn deadline_pre(&self) -> u64 {
        self.deadline_pre.load(Ordering::Relaxed)
    }

    /// Requests whose deadline expired during execution.
    #[must_use]
    pub fn deadline_post(&self) -> u64 {
        self.deadline_post.load(Ordering::Relaxed)
    }

    /// All deadline misses, pre + post.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_pre() + self.deadline_post()
    }

    /// Data-verb execution latency (the `--stats-interval-secs` p99
    /// source).
    #[must_use]
    pub fn request_latency(&self) -> &LatencyHistogram {
        &self.request_latency
    }

    /// Shard-groups executed through one elided section.
    #[must_use]
    pub fn batches_executed(&self) -> u64 {
        self.batches_executed.load(Ordering::Relaxed)
    }

    /// Shard-groups that held exactly one request.
    #[must_use]
    pub fn single_request_batches(&self) -> u64 {
        self.single_request_batches.load(Ordering::Relaxed)
    }

    /// Distribution of requests per executed shard-group.
    #[must_use]
    pub fn requests_per_batch(&self) -> &LatencyHistogram {
        &self.requests_per_batch
    }

    /// Per-worker admission gauges.
    #[must_use]
    pub fn per_worker(&self) -> &[WorkerGauges] {
        &self.per_worker
    }

    /// Renders the STATS document. `telemetry_json`, `trace_json`,
    /// `wal_json` and `repl_json` are spliced in raw (a rendered
    /// [`gocc_telemetry::TelemetryReport`] / flight-recorder counter
    /// object / WAL counter object / replication object, or `null`);
    /// `health` and `transitions` come from the brownout controller;
    /// `git_rev` and `role` identify the build and the node's current
    /// replication role.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn to_json(
        &self,
        mode: &str,
        git_rev: &str,
        role: &str,
        workers: u64,
        shards: u64,
        entries: u64,
        health: &str,
        transitions: [u64; 4],
        telemetry_json: &str,
        trace_json: &str,
        wal_json: &str,
        repl_json: &str,
    ) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("server", "goccd")
            .field_str("mode", mode)
            .field_str("git_rev", git_rev)
            .field_str("role", role)
            .field_u64("workers", workers)
            .field_u64("shards", shards)
            .field_u64("conns_accepted", self.accepted())
            .field_u64("conns_closed", self.closed())
            .key("requests")
            .begin_object()
            .field_u64("total", self.total_requests());
        for (name, counter) in VERB_NAMES.iter().zip(&self.by_verb) {
            w.field_u64(name, counter.load(Ordering::Relaxed));
        }
        w.end_object()
            .field_u64("malformed_frames", self.malformed())
            .field_u64("oversized_frames", self.oversized())
            .field_u64("slow_client_drops", self.slow_drops())
            .key("overload")
            .begin_object()
            .field_str("health", health)
            .field_u64("shed_total", self.shed_total())
            .key("shed_by_cause")
            .begin_object();
        for (name, n) in SHED_CAUSE_NAMES.iter().zip(self.shed_by_cause()) {
            w.field_u64(name, n);
        }
        w.end_object()
            .field_u64("shed_ns_total", self.shed_ns_total())
            .field_u64("shed_ns_max", self.shed_ns_max())
            .field_u64("deadline_pre", self.deadline_pre())
            .field_u64("deadline_post", self.deadline_post())
            .key("transitions")
            .begin_object();
        for (name, n) in TRANSITION_NAMES.iter().zip(transitions) {
            w.field_u64(name, n);
        }
        w.end_object().end_object();
        let lat = self.request_latency.snapshot();
        w.key("request_latency")
            .begin_object()
            .field_u64("count", lat.count)
            .field_f64("mean_ns", lat.mean())
            .field_u64("p50_ns", lat.quantile(0.5))
            .field_u64("p99_ns", lat.quantile(0.99))
            .field_u64("max_ns", lat.max)
            .end_object();
        let rpb = self.requests_per_batch.snapshot();
        w.key("batch")
            .begin_object()
            .field_u64("batches_executed", self.batches_executed())
            .field_u64("single_request_batches", self.single_request_batches())
            .key("requests_per_batch")
            .begin_object()
            .field_u64("count", rpb.count)
            .field_f64("mean", rpb.mean())
            .field_u64("p50", rpb.quantile(0.5))
            .field_u64("p99", rpb.quantile(0.99))
            .field_u64("max", rpb.max)
            .end_object()
            .end_object();
        w.key("per_worker").begin_array();
        for g in &self.per_worker {
            w.begin_object()
                .field_u64("queue_depth", g.queue_depth())
                .field_u64("queue_depth_max", g.queue_depth_max())
                .field_u64("shed_total", g.shed_total())
                .field_u64("executed", g.executed())
                .end_object();
        }
        w.end_array()
            .field_u64("entries", entries)
            .field_raw("repl", repl_json)
            .field_raw("wal", wal_json)
            .field_raw("trace", trace_json)
            .field_raw("telemetry", telemetry_json)
            .end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_telemetry::JsonValue;

    #[test]
    fn stats_document_parses_and_reconciles() {
        let c = ServerCounters::new(2);
        c.note_accept();
        c.note_accept();
        c.note_close();
        c.note_request(&Request::Get { key: b"k" });
        c.note_request(&Request::Set {
            key: b"k",
            value: 1,
            ttl: 0,
        });
        c.note_request(&Request::Get { key: b"k" });
        c.note_request(&Request::Health);
        c.note_malformed();
        c.note_request(&Request::Trace { max: 64 });
        let json = c.to_json(
            "gocc",
            "deadbeef",
            "primary",
            2,
            4,
            17,
            "healthy",
            [0; 4],
            "null",
            r#"{"sample_n":64}"#,
            r#"{"enabled":true,"fsyncs":3}"#,
            r#"{"role":"primary","subscribers":0}"#,
        );
        let v = JsonValue::parse(&json).expect("stats JSON parses");
        assert_eq!(v.get("mode").unwrap().as_str(), Some("gocc"));
        assert_eq!(v.get("git_rev").unwrap().as_str(), Some("deadbeef"));
        assert_eq!(v.get("role").unwrap().as_str(), Some("primary"));
        assert_eq!(
            v.get("repl").unwrap().get("role").unwrap().as_str(),
            Some("primary")
        );
        assert_eq!(v.get("conns_accepted").unwrap().as_f64(), Some(2.0));
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("total").unwrap().as_f64(), Some(5.0));
        assert_eq!(reqs.get("get").unwrap().as_f64(), Some(2.0));
        assert_eq!(reqs.get("set").unwrap().as_f64(), Some(1.0));
        assert_eq!(reqs.get("health").unwrap().as_f64(), Some(1.0));
        assert_eq!(reqs.get("trace").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("telemetry"), Some(&JsonValue::Null));
        assert_eq!(
            v.get("trace").unwrap().get("sample_n").unwrap().as_f64(),
            Some(64.0)
        );
        assert_eq!(v.get("entries").unwrap().as_f64(), Some(17.0));
        assert_eq!(
            v.get("wal").unwrap().get("fsyncs").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn batch_counters_reconcile_in_the_document() {
        let c = ServerCounters::new(1);
        c.note_batch(1);
        c.note_batch(8);
        c.note_batch(1);
        c.note_batch(32);
        assert_eq!(c.batches_executed(), 4);
        assert_eq!(c.single_request_batches(), 2);
        assert_eq!(c.requests_per_batch().snapshot().max, 32);
        let json = c.to_json(
            "gocc", "unknown", "primary", 1, 4, 0, "healthy", [0; 4], "null", "null", "null",
            "null",
        );
        let v = JsonValue::parse(&json).expect("parses");
        let b = v.get("batch").unwrap();
        assert_eq!(b.get("batches_executed").unwrap().as_f64(), Some(4.0));
        assert_eq!(b.get("single_request_batches").unwrap().as_f64(), Some(2.0));
        let rpb = b.get("requests_per_batch").unwrap();
        assert_eq!(rpb.get("count").unwrap().as_f64(), Some(4.0));
        assert_eq!(rpb.get("max").unwrap().as_f64(), Some(32.0));
    }

    #[test]
    fn overload_counters_reconcile_in_the_document() {
        let c = ServerCounters::new(2);
        c.note_shed(0, ShedCause::QueueFull, 900);
        c.note_shed(1, ShedCause::SheddingWrite, 1_400);
        c.note_shed(1, ShedCause::SheddingWrite, 700);
        c.note_deadline_pre();
        c.note_deadline_post();
        c.note_oversized();
        c.set_queue_depth(0, 12);
        c.set_queue_depth(0, 3);
        c.note_executed(1, 2_000);
        assert_eq!(c.shed_total(), 3);
        assert_eq!(c.shed_by_cause(), [1, 0, 0, 0, 2]);
        assert_eq!(c.shed_ns_total(), 3_000);
        assert_eq!(c.shed_ns_max(), 1_400);
        assert_eq!(c.deadline_misses(), 2);
        assert_eq!(c.request_latency().snapshot().count, 1);
        let json = c.to_json(
            "lock",
            "unknown",
            "replica",
            2,
            4,
            0,
            "shedding",
            [1, 1, 0, 0],
            "null",
            "null",
            "null",
            "null",
        );
        let v = JsonValue::parse(&json).expect("parses");
        let o = v.get("overload").unwrap();
        assert_eq!(o.get("health").unwrap().as_str(), Some("shedding"));
        assert_eq!(o.get("shed_total").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            o.get("shed_by_cause")
                .unwrap()
                .get("shedding_write")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            o.get("transitions")
                .unwrap()
                .get("healthy_to_degraded")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        let workers = v.get("per_worker").unwrap().as_array().unwrap();
        let w0 = &workers[0];
        assert_eq!(w0.get("queue_depth").unwrap().as_f64(), Some(3.0));
        assert_eq!(w0.get("queue_depth_max").unwrap().as_f64(), Some(12.0));
        let w1 = &workers[1];
        assert_eq!(w1.get("shed_total").unwrap().as_f64(), Some(2.0));
        assert_eq!(w1.get("executed").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("oversized_frames").unwrap().as_f64(), Some(1.0));
        let lat = v.get("request_latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(lat.get("max_ns").unwrap().as_f64(), Some(2000.0));
    }
}
