//! The server's storage: `gocache` shards addressed by hashed key.
//!
//! Each shard is one [`Cache`] — an independent `ElidableRwMutex` guarding
//! a transactional map pair, exactly the structure Figure 7 benchmarks.
//! Keys arrive as byte strings on the wire and are identified by their
//! 64-bit FNV-1a hash from then on (the store is word-oriented; a hash
//! collision aliases two keys, which at 2⁻⁶⁴ per pair is the standard
//! cache-service trade and is documented in the protocol).

use gocc_txds::{fnv1a, mix64};
use gocc_wal::{ShardImage, Staged, Wal, WalKind, WalTicket};
use gocc_wire::{ReplRecord, Request, Response, REPL_KIND_DEL, REPL_KIND_PUT};
use gocc_workloads::gocache::{BatchOp, BatchReply, Cache, CacheOp};
use gocc_workloads::Engine;

/// Per-request result of [`ShardedStore::execute_batch`]: the response
/// plus, for mutations, the committed post-image record and (when a WAL
/// is attached) the staged ticket the connection must wait on before
/// acknowledging — the same triple the single-request
/// [`ShardedStore::execute_durable`] path produces.
pub struct BatchOutcome {
    /// The wire response for this request.
    pub resp: Response<'static>,
    /// Committed post-image for mutations (replication feed input).
    pub staged: Option<Staged>,
    /// WAL barrier ticket for mutations when a WAL is attached.
    pub ticket: Option<WalTicket>,
}

/// A fixed set of independently locked cache shards.
pub struct ShardedStore {
    shards: Vec<Cache>,
}

impl ShardedStore {
    /// Creates `shards` empty shards of `capacity_per_shard` entries each.
    #[must_use]
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1))
                .map(|_| Cache::with_capacity(capacity_per_shard))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard owning hashed key `h`. `fnv1a` output is
    /// re-mixed so the shard index and the in-shard probe sequence use
    /// independent bits. Stable across restarts for a fixed shard count —
    /// WAL records address shards by this index.
    #[must_use]
    pub fn shard_index_for(&self, h: u64) -> usize {
        (mix64(h) >> 32) as usize % self.shards.len()
    }

    /// The shard owning hashed key `h`.
    #[must_use]
    pub fn shard_for(&self, h: u64) -> &Cache {
        &self.shards[self.shard_index_for(h)]
    }

    /// The shard at `index` — the replication paths address shards by the
    /// index the wire protocol carries, not by key.
    #[must_use]
    pub fn shard_at(&self, index: usize) -> &Cache {
        &self.shards[index]
    }

    /// Current version (committed sequence number) of every shard, each
    /// read in its own read section.
    #[must_use]
    pub fn versions(&self, engine: &Engine<'_>) -> Vec<u64> {
        self.shards.iter().map(|s| s.version(engine)).collect()
    }

    /// Total live entries across shards (one read section per shard).
    #[must_use]
    pub fn total_entries(&self, engine: &Engine<'_>) -> u64 {
        self.shards.iter().map(|s| s.item_count(engine)).sum()
    }

    /// Dumps up to `limit` `(hashed_key, value)` pairs, walking shards in
    /// order.
    #[must_use]
    pub fn scan(&self, engine: &Engine<'_>, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let remaining = limit - out.len();
            if remaining == 0 {
                break;
            }
            out.extend(shard.scan(engine, remaining));
        }
        out
    }

    /// Executes one already-decoded data-plane request. STATS and
    /// SHUTDOWN are control-plane and handled by the connection layer.
    #[must_use]
    pub fn execute(&self, engine: &Engine<'_>, req: &Request<'_>) -> Response<'static> {
        match *req {
            Request::Get { key } => {
                let h = fnv1a(key);
                match self.shard_for(h).get(engine, h) {
                    Some(value) => Response::Value { found: true, value },
                    None => Response::Value {
                        found: false,
                        value: 0,
                    },
                }
            }
            Request::Set { key, value, ttl } => {
                let h = fnv1a(key);
                self.shard_for(h).set(engine, h, value, ttl);
                Response::Done
            }
            Request::Del { key } => {
                let h = fnv1a(key);
                Response::Deleted {
                    existed: self.shard_for(h).delete(engine, h),
                }
            }
            Request::Incr { key, delta } => {
                let h = fnv1a(key);
                Response::Counter {
                    value: self.shard_for(h).incr(engine, h, delta),
                }
            }
            Request::Scan { limit } => Response::Entries {
                pairs: self.scan(engine, limit as usize),
            },
            Request::SetS { key, value, ttl } => {
                let h = fnv1a(key);
                let shard = self.shard_index_for(h);
                let (seq, _) = self.shards[shard].set_seq(engine, h, value, ttl);
                Response::DoneAt {
                    shard: shard as u32,
                    version: seq,
                }
            }
            Request::GetS { key, min_version } => {
                let h = fnv1a(key);
                let shard = self.shard_index_for(h);
                // Version first, value second: shard versions only
                // advance, so version >= min_version here guarantees the
                // read below observes at least the session's write.
                let version = self.shards[shard].version(engine);
                if version < min_version {
                    return Response::Behind { version };
                }
                match self.shards[shard].get(engine, h) {
                    Some(value) => Response::Value { found: true, value },
                    None => Response::Value {
                        found: false,
                        value: 0,
                    },
                }
            }
            Request::Stats
            | Request::Health
            | Request::Shutdown
            | Request::Trace { .. }
            | Request::Flush => Response::Error {
                message: "control-plane verb reached the store",
            },
        }
    }

    /// Executes one mutating request, returning the committed post-image
    /// record alongside the response. The shard's critical section assigns
    /// the commit sequence number; the record is what WAL staging and the
    /// replication feed both consume. Read and control verbs return no
    /// record.
    #[must_use]
    pub fn execute_staged(
        &self,
        engine: &Engine<'_>,
        req: &Request<'_>,
    ) -> (Response<'static>, Option<Staged>) {
        match *req {
            Request::Set { key, value, ttl } => {
                let h = fnv1a(key);
                let shard = self.shard_index_for(h);
                let (seq, exp) = self.shards[shard].set_seq(engine, h, value, ttl);
                (
                    Response::Done,
                    Some(Staged {
                        shard: shard as u32,
                        seq,
                        kind: WalKind::Put,
                        key: h,
                        value,
                        exp,
                    }),
                )
            }
            Request::SetS { key, value, ttl } => {
                let h = fnv1a(key);
                let shard = self.shard_index_for(h);
                let (seq, exp) = self.shards[shard].set_seq(engine, h, value, ttl);
                (
                    Response::DoneAt {
                        shard: shard as u32,
                        version: seq,
                    },
                    Some(Staged {
                        shard: shard as u32,
                        seq,
                        kind: WalKind::Put,
                        key: h,
                        value,
                        exp,
                    }),
                )
            }
            Request::Del { key } => {
                let h = fnv1a(key);
                let shard = self.shard_index_for(h);
                let (existed, seq) = self.shards[shard].delete_seq(engine, h);
                (
                    Response::Deleted { existed },
                    Some(Staged {
                        shard: shard as u32,
                        seq,
                        kind: WalKind::Del,
                        key: h,
                        value: 0,
                        exp: 0,
                    }),
                )
            }
            Request::Incr { key, delta } => {
                let h = fnv1a(key);
                let shard = self.shard_index_for(h);
                let (value, seq) = self.shards[shard].incr_seq(engine, h, delta);
                // Post-image of the value only; replay preserves whatever
                // expiration the key carries (`WalKind::PutVal`).
                (
                    Response::Counter { value },
                    Some(Staged {
                        shard: shard as u32,
                        seq,
                        kind: WalKind::PutVal,
                        key: h,
                        value,
                        exp: 0,
                    }),
                )
            }
            _ => (self.execute(engine, req), None),
        }
    }

    /// [`ShardedStore::execute_staged`] plus WAL staging: the record goes
    /// into the shard's commit pipe, and the returned ticket is what the
    /// connection must [`Wal::wait`] on **before** encoding the
    /// acknowledgement — the ack-after-barrier ordering is the entire
    /// durability contract. Read verbs return no ticket.
    #[must_use]
    pub fn execute_durable(
        &self,
        engine: &Engine<'_>,
        req: &Request<'_>,
        wal: &Wal,
    ) -> (Response<'static>, Option<(WalTicket, Staged)>) {
        let (resp, staged) = self.execute_staged(engine, req);
        let ticket = staged.map(|record| (wal.stage(record), record));
        (resp, ticket)
    }

    /// Routes one decoded request for batched execution: the owning shard
    /// index plus the pre-hashed [`BatchOp`]. Returns `None` for verbs
    /// that never batch — SCAN (cross-shard, capacity-abort generator)
    /// and the control plane.
    #[must_use]
    pub fn batch_op_for(&self, req: &Request<'_>) -> Option<(usize, BatchOp)> {
        let (h, op) = match *req {
            Request::Get { key } => {
                let h = fnv1a(key);
                (h, BatchOp::Get { key: h })
            }
            Request::Set { key, value, ttl } => {
                let h = fnv1a(key);
                (h, BatchOp::Set { key: h, value, ttl })
            }
            Request::Del { key } => {
                let h = fnv1a(key);
                (h, BatchOp::Del { key: h })
            }
            Request::Incr { key, delta } => {
                let h = fnv1a(key);
                (h, BatchOp::Incr { key: h, delta })
            }
            _ => return None,
        };
        Some((self.shard_index_for(h), op))
    }

    /// Executes a decoded batch with one critical section per shard-group
    /// instead of one per request — the server-side half of the paper's
    /// amortization. Requests are grouped by the shard index routed in
    /// `routed` (from [`ShardedStore::batch_op_for`]); each non-empty
    /// group runs through [`Cache::execute_batch`], in shard order, with
    /// requests inside a group executing in arrival order (so per-shard
    /// commit sequence numbers ascend with arrival, same as sequential
    /// execution). Outcomes come back in input order.
    ///
    /// Mutations are staged to `wal` immediately after their group
    /// commits, in seq order, preserving the ack-after-barrier contract
    /// per record. `group_scope` wraps each group's execution — it
    /// receives the shard, the input positions in the group, and a thunk
    /// it **must invoke exactly once**; the connection layer uses it to
    /// set the trace context and time the section without this layer
    /// knowing about tracing.
    #[must_use]
    pub fn execute_batch(
        &self,
        engine: &Engine<'_>,
        routed: &[(usize, BatchOp)],
        wal: Option<&Wal>,
        mut group_scope: impl FnMut(u32, &[usize], &mut dyn FnMut()),
    ) -> Vec<BatchOutcome> {
        let mut outcomes: Vec<Option<BatchOutcome>> = routed.iter().map(|_| None).collect();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (pos, &(shard, _)) in routed.iter().enumerate() {
            by_shard[shard].push(pos);
        }
        for (shard, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let ops: Vec<BatchOp> = positions.iter().map(|&p| routed[p].1).collect();
            let mut replies = Vec::new();
            group_scope(shard as u32, positions, &mut || {
                replies = self.shards[shard].execute_batch(engine, &ops);
            });
            assert_eq!(
                replies.len(),
                ops.len(),
                "group_scope must run its thunk exactly once"
            );
            for (&pos, (reply, op)) in positions.iter().zip(replies.iter().zip(&ops)) {
                let (resp, staged) = match (*reply, *op) {
                    (BatchReply::Value { found, value }, _) => {
                        (Response::Value { found, value }, None)
                    }
                    (BatchReply::Stored { seq, exp }, BatchOp::Set { key, value, .. }) => (
                        Response::Done,
                        Some(Staged {
                            shard: shard as u32,
                            seq,
                            kind: WalKind::Put,
                            key,
                            value,
                            exp,
                        }),
                    ),
                    (BatchReply::Deleted { existed, seq }, BatchOp::Del { key }) => (
                        Response::Deleted { existed },
                        Some(Staged {
                            shard: shard as u32,
                            seq,
                            kind: WalKind::Del,
                            key,
                            value: 0,
                            exp: 0,
                        }),
                    ),
                    (BatchReply::Counter { value, seq }, BatchOp::Incr { key, .. }) => (
                        Response::Counter { value },
                        Some(Staged {
                            shard: shard as u32,
                            seq,
                            kind: WalKind::PutVal,
                            key,
                            value,
                            exp: 0,
                        }),
                    ),
                    _ => unreachable!("reply kind mismatches its op"),
                };
                let ticket = match (wal, staged) {
                    (Some(w), Some(record)) => Some(w.stage(record)),
                    _ => None,
                };
                outcomes[pos] = Some(BatchOutcome {
                    resp,
                    staged,
                    ticket,
                });
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every routed request got an outcome"))
            .collect()
    }

    /// Applies one replicated batch to the shard it addresses, with the
    /// version check done inside the shard's critical section. `Ok(new)`
    /// means every record applied and the shard is at `new`;
    /// `Err(actual)` is the version-gap conflict the replica answers with
    /// a NAK.
    pub fn apply_repl_batch(
        &self,
        engine: &Engine<'_>,
        shard: usize,
        prev_version: u64,
        now: u64,
        records: &[ReplRecord],
    ) -> Result<u64, u64> {
        let ops: Vec<CacheOp> = records.iter().map(record_to_op).collect();
        self.shards[shard].apply_versioned(engine, prev_version, now, &ops)
    }

    /// Snapshots every shard for a checkpoint — each shard in one read
    /// section (consistent per shard, which is all replay needs: WAL
    /// records are applied per shard by sequence number).
    #[must_use]
    pub fn snapshot_all(&self, engine: &Engine<'_>) -> Vec<ShardImage> {
        self.shards
            .iter()
            .map(|s| {
                let (entries, seq, now) = s.snapshot(engine);
                ShardImage { entries, seq, now }
            })
            .collect()
    }

    /// Rebuilds every shard from recovered images (boot, before the
    /// listener opens). Panics if the image count mismatches the shard
    /// count — recovery validated that against the checkpoint already.
    pub fn restore_all(&self, rt: &gocc_htm::HtmRuntime, images: &[ShardImage]) {
        assert_eq!(images.len(), self.shards.len(), "shard count changed");
        for (shard, img) in self.shards.iter().zip(images) {
            shard.restore(rt, &img.entries, img.seq, img.now);
        }
    }
}

/// Converts a wire replication record into the cache's apply op. Unknown
/// kinds (a newer primary) degrade to a value-preserving put rather than
/// a panic — the decoder already rejects them, this is defense in depth.
fn record_to_op(r: &ReplRecord) -> CacheOp {
    match r.kind {
        REPL_KIND_PUT => CacheOp::Put {
            key: r.key,
            value: r.value,
            exp: r.exp,
        },
        REPL_KIND_DEL => CacheOp::Del { key: r.key },
        _ => CacheOp::PutVal {
            key: r.key,
            value: r.value,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_optilock::{GoccConfig, GoccRuntime};
    use gocc_workloads::Mode;

    #[test]
    fn verbs_roundtrip_through_the_store() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new(GoccConfig::standard());
            let engine = Engine::new(&rt, mode);
            let store = ShardedStore::new(4, 256);
            assert_eq!(
                store.execute(&engine, &Request::Get { key: b"a" }),
                Response::Value {
                    found: false,
                    value: 0
                }
            );
            assert_eq!(
                store.execute(
                    &engine,
                    &Request::Set {
                        key: b"a",
                        value: 11,
                        ttl: 0
                    }
                ),
                Response::Done
            );
            assert_eq!(
                store.execute(&engine, &Request::Get { key: b"a" }),
                Response::Value {
                    found: true,
                    value: 11
                }
            );
            assert_eq!(
                store.execute(
                    &engine,
                    &Request::Incr {
                        key: b"ctr",
                        delta: 5
                    }
                ),
                Response::Counter { value: 5 }
            );
            assert_eq!(store.total_entries(&engine), 2);
            let scan = store.execute(&engine, &Request::Scan { limit: 10 });
            let Response::Entries { pairs } = scan else {
                panic!("scan must return entries");
            };
            assert_eq!(pairs.len(), 2);
            assert_eq!(
                store.execute(&engine, &Request::Del { key: b"a" }),
                Response::Deleted { existed: true }
            );
            assert_eq!(
                store.execute(&engine, &Request::Del { key: b"a" }),
                Response::Deleted { existed: false }
            );
        }
    }

    #[test]
    fn execute_batch_matches_staged_oracle_and_groups_by_shard() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new(GoccConfig::standard());
            let engine = Engine::new(&rt, mode);
            let batched = ShardedStore::new(4, 256);
            let oracle = ShardedStore::new(4, 256);

            let keys: Vec<String> = (0..24).map(|i| format!("key-{i}")).collect();
            let reqs: Vec<Request<'_>> = keys
                .iter()
                .enumerate()
                .map(|(i, k)| match i % 4 {
                    0 => Request::Set {
                        key: k.as_bytes(),
                        value: i as u64 * 10,
                        ttl: 0,
                    },
                    1 => Request::Get { key: k.as_bytes() },
                    2 => Request::Incr {
                        key: k.as_bytes(),
                        delta: 3,
                    },
                    _ => Request::Del { key: k.as_bytes() },
                })
                .collect();

            let routed: Vec<(usize, BatchOp)> = reqs
                .iter()
                .map(|r| batched.batch_op_for(r).expect("data verbs route"))
                .collect();
            let mut groups = Vec::new();
            let outcomes = batched.execute_batch(&engine, &routed, None, |shard, pos, run| {
                groups.push((shard, pos.len()));
                run();
            });

            // One group per shard touched, total group sizes == requests,
            // and all four shards see traffic with 24 spread keys.
            assert_eq!(groups.iter().map(|&(_, n)| n).sum::<usize>(), reqs.len());
            let mut shards_seen: Vec<u32> = groups.iter().map(|&(s, _)| s).collect();
            shards_seen.sort_unstable();
            shards_seen.dedup();
            assert_eq!(shards_seen.len(), groups.len(), "one section per shard");

            // The oracle executes the same requests one staged section at
            // a time; responses and staged records must agree.
            for (req, outcome) in reqs.iter().zip(&outcomes) {
                let (resp, staged) = oracle.execute_staged(&engine, req);
                assert_eq!(outcome.resp, resp);
                assert!(outcome.ticket.is_none(), "no WAL attached");
                match (outcome.staged, staged) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.shard, b.shard);
                        assert_eq!(a.seq, b.seq, "per-shard seq order preserved");
                        assert_eq!(a.kind as u8, b.kind as u8);
                        assert_eq!((a.key, a.value, a.exp), (b.key, b.value, b.exp));
                    }
                    (a, b) => panic!("staged mismatch: {a:?} vs {b:?}"),
                }
            }
            for k in &keys {
                assert_eq!(
                    batched.execute(&engine, &Request::Get { key: k.as_bytes() }),
                    oracle.execute(&engine, &Request::Get { key: k.as_bytes() }),
                    "end state diverged for {k} in {mode:?}"
                );
            }

            // Control verbs and SCAN never batch.
            assert!(batched.batch_op_for(&Request::Scan { limit: 5 }).is_none());
            assert!(batched.batch_op_for(&Request::Stats).is_none());
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new(GoccConfig::standard());
        let engine = Engine::new(&rt, Mode::Lock);
        let store = ShardedStore::new(4, 1024);
        for i in 0..256u64 {
            let key = format!("key-{i}");
            let _ = store.execute(
                &engine,
                &Request::Set {
                    key: key.as_bytes(),
                    value: i,
                    ttl: 0,
                },
            );
        }
        assert_eq!(store.total_entries(&engine), 256);
        let per_shard: Vec<u64> = store.shards.iter().map(|s| s.item_count(&engine)).collect();
        assert!(
            per_shard.iter().all(|&n| n > 16),
            "fnv1a+mix64 sharding badly skewed: {per_shard:?}"
        );
    }
}
