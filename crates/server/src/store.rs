//! The server's storage: `gocache` shards addressed by hashed key.
//!
//! Each shard is one [`Cache`] — an independent `ElidableRwMutex` guarding
//! a transactional map pair, exactly the structure Figure 7 benchmarks.
//! Keys arrive as byte strings on the wire and are identified by their
//! 64-bit FNV-1a hash from then on (the store is word-oriented; a hash
//! collision aliases two keys, which at 2⁻⁶⁴ per pair is the standard
//! cache-service trade and is documented in the protocol).

use gocc_txds::{fnv1a, mix64};
use gocc_wire::{Request, Response};
use gocc_workloads::gocache::Cache;
use gocc_workloads::Engine;

/// A fixed set of independently locked cache shards.
pub struct ShardedStore {
    shards: Vec<Cache>,
}

impl ShardedStore {
    /// Creates `shards` empty shards of `capacity_per_shard` entries each.
    #[must_use]
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1))
                .map(|_| Cache::with_capacity(capacity_per_shard))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning hashed key `h`. `fnv1a` output is re-mixed so the
    /// shard index and the in-shard probe sequence use independent bits.
    #[must_use]
    pub fn shard_for(&self, h: u64) -> &Cache {
        let idx = (mix64(h) >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Total live entries across shards (one read section per shard).
    #[must_use]
    pub fn total_entries(&self, engine: &Engine<'_>) -> u64 {
        self.shards.iter().map(|s| s.item_count(engine)).sum()
    }

    /// Dumps up to `limit` `(hashed_key, value)` pairs, walking shards in
    /// order.
    #[must_use]
    pub fn scan(&self, engine: &Engine<'_>, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let remaining = limit - out.len();
            if remaining == 0 {
                break;
            }
            out.extend(shard.scan(engine, remaining));
        }
        out
    }

    /// Executes one already-decoded data-plane request. STATS and
    /// SHUTDOWN are control-plane and handled by the connection layer.
    #[must_use]
    pub fn execute(&self, engine: &Engine<'_>, req: &Request<'_>) -> Response<'static> {
        match *req {
            Request::Get { key } => {
                let h = fnv1a(key);
                match self.shard_for(h).get(engine, h) {
                    Some(value) => Response::Value { found: true, value },
                    None => Response::Value {
                        found: false,
                        value: 0,
                    },
                }
            }
            Request::Set { key, value, ttl } => {
                let h = fnv1a(key);
                self.shard_for(h).set(engine, h, value, ttl);
                Response::Done
            }
            Request::Del { key } => {
                let h = fnv1a(key);
                Response::Deleted {
                    existed: self.shard_for(h).delete(engine, h),
                }
            }
            Request::Incr { key, delta } => {
                let h = fnv1a(key);
                Response::Counter {
                    value: self.shard_for(h).incr(engine, h, delta),
                }
            }
            Request::Scan { limit } => Response::Entries {
                pairs: self.scan(engine, limit as usize),
            },
            Request::Stats | Request::Health | Request::Shutdown | Request::Trace { .. } => {
                Response::Error {
                    message: "control-plane verb reached the store",
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_optilock::{GoccConfig, GoccRuntime};
    use gocc_workloads::Mode;

    #[test]
    fn verbs_roundtrip_through_the_store() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new(GoccConfig::standard());
            let engine = Engine::new(&rt, mode);
            let store = ShardedStore::new(4, 256);
            assert_eq!(
                store.execute(&engine, &Request::Get { key: b"a" }),
                Response::Value {
                    found: false,
                    value: 0
                }
            );
            assert_eq!(
                store.execute(
                    &engine,
                    &Request::Set {
                        key: b"a",
                        value: 11,
                        ttl: 0
                    }
                ),
                Response::Done
            );
            assert_eq!(
                store.execute(&engine, &Request::Get { key: b"a" }),
                Response::Value {
                    found: true,
                    value: 11
                }
            );
            assert_eq!(
                store.execute(
                    &engine,
                    &Request::Incr {
                        key: b"ctr",
                        delta: 5
                    }
                ),
                Response::Counter { value: 5 }
            );
            assert_eq!(store.total_entries(&engine), 2);
            let scan = store.execute(&engine, &Request::Scan { limit: 10 });
            let Response::Entries { pairs } = scan else {
                panic!("scan must return entries");
            };
            assert_eq!(pairs.len(), 2);
            assert_eq!(
                store.execute(&engine, &Request::Del { key: b"a" }),
                Response::Deleted { existed: true }
            );
            assert_eq!(
                store.execute(&engine, &Request::Del { key: b"a" }),
                Response::Deleted { existed: false }
            );
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new(GoccConfig::standard());
        let engine = Engine::new(&rt, Mode::Lock);
        let store = ShardedStore::new(4, 1024);
        for i in 0..256u64 {
            let key = format!("key-{i}");
            let _ = store.execute(
                &engine,
                &Request::Set {
                    key: key.as_bytes(),
                    value: i,
                    ttl: 0,
                },
            );
        }
        assert_eq!(store.total_entries(&engine), 256);
        let per_shard: Vec<u64> = store.shards.iter().map(|s| s.item_count(&engine)).collect();
        assert!(
            per_shard.iter().all(|&n| n > 16),
            "fnv1a+mix64 sharding badly skewed: {per_shard:?}"
        );
    }
}
