//! End-to-end durability tests: a real `goccd` server with a WAL-backed
//! data directory, killed gracefully and restarted, must serve every
//! acknowledged write back. Also covers the FLUSH verb contract and the
//! STATS `"wal"` object.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use gocc_server::{spawn, Mode, ServerConfig, SyncPolicy};
use gocc_telemetry::JsonValue;
use gocc_wire::{decode_response, encode_request, read_frame, write_frame, Request, Response};

/// Blocking request/response helper over one client connection.
struct Client {
    stream: TcpStream,
    wirebuf: Vec<u8>,
    respbuf: Vec<u8>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            wirebuf: Vec::new(),
            respbuf: Vec::new(),
        }
    }

    fn call(&mut self, req: &Request<'_>) -> Response<'_> {
        self.wirebuf.clear();
        encode_request(req, &mut self.wirebuf);
        write_frame(&mut self.stream, &self.wirebuf).expect("send");
        assert!(
            read_frame(&mut self.stream, &mut self.respbuf).expect("recv"),
            "server closed mid-conversation"
        );
        decode_response(&self.respbuf).expect("well-formed response")
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(mode: Mode, data_dir: Option<PathBuf>, sync: SyncPolicy) -> ServerConfig {
    let mut config = ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 1024,
        write_timeout: Duration::from_secs(5),
        data_dir,
        ..ServerConfig::default()
    };
    config.wal.sync = sync;
    config.wal.fsync_wait_us = 50;
    config
}

/// SET/INCR/DEL against a WAL-backed server, graceful restart, read back.
/// Every acknowledged write must be visible after recovery in both
/// execution modes and under both ack policies.
#[test]
fn acked_writes_survive_graceful_restart() {
    gocc_gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        for sync in [SyncPolicy::Group, SyncPolicy::Always] {
            let dir = temp_dir("restart");
            let handle = spawn(config(mode, Some(dir.clone()), sync)).expect("spawn with data dir");
            let mut c = Client::connect(handle.port());
            for i in 0..64u64 {
                let key = format!("key-{i}");
                assert_eq!(
                    c.call(&Request::Set {
                        key: key.as_bytes(),
                        value: i * 10,
                        ttl: 0
                    }),
                    Response::Done
                );
            }
            assert_eq!(
                c.call(&Request::Incr {
                    key: b"ctr",
                    delta: 5
                }),
                Response::Counter { value: 5 }
            );
            assert_eq!(
                c.call(&Request::Incr {
                    key: b"ctr",
                    delta: 37
                }),
                Response::Counter { value: 42 }
            );
            assert_eq!(
                c.call(&Request::Del { key: b"key-13" }),
                Response::Deleted { existed: true }
            );
            assert_eq!(c.call(&Request::Shutdown), Response::Bye);
            let _ = handle.join();

            // Same directory, fresh process state: recovery must replay
            // the checkpoint-free tail before the listener opens.
            let handle = spawn(config(mode, Some(dir.clone()), sync)).expect("respawn");
            let mut c = Client::connect(handle.port());
            for i in 0..64u64 {
                let key = format!("key-{i}");
                let want = if i == 13 {
                    Response::Value {
                        found: false,
                        value: 0,
                    }
                } else {
                    Response::Value {
                        found: true,
                        value: i * 10,
                    }
                };
                assert_eq!(
                    c.call(&Request::Get {
                        key: key.as_bytes()
                    }),
                    want,
                    "mode={mode:?} sync={sync:?} key-{i}"
                );
            }
            // INCR post-images replay to the final value, and the counter
            // keeps counting from there.
            assert_eq!(
                c.call(&Request::Incr {
                    key: b"ctr",
                    delta: 1
                }),
                Response::Counter { value: 43 }
            );
            let Response::Stats { json } = c.call(&Request::Stats) else {
                panic!("stats must answer");
            };
            let doc = JsonValue::parse(&json).expect("stats JSON parses");
            let wal = doc.get("wal").expect("wal object in STATS");
            assert!(matches!(wal.get("enabled"), Some(JsonValue::Bool(true))));
            let replayed = wal
                .get("recovery")
                .and_then(|r| r.get("recovery_replayed"))
                .and_then(JsonValue::as_f64)
                .expect("recovery_replayed counter");
            assert!(replayed >= 66.0, "expected a replayed tail, got {replayed}");
            assert_eq!(c.call(&Request::Shutdown), Response::Bye);
            let _ = handle.join();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// FLUSH is the client-visible barrier: it returns a non-zero durable
/// LSN once writes exist, and the LSN is monotone across calls.
#[test]
fn flush_returns_monotone_durable_lsn() {
    gocc_gosync::set_procs(8);
    let dir = temp_dir("flush");
    let handle = spawn(config(Mode::Gocc, Some(dir.clone()), SyncPolicy::Group)).expect("spawn");
    let mut c = Client::connect(handle.port());
    assert_eq!(
        c.call(&Request::Set {
            key: b"k",
            value: 1,
            ttl: 0
        }),
        Response::Done
    );
    let Response::Flushed { durable_lsn: a } = c.call(&Request::Flush) else {
        panic!("flush must answer Flushed");
    };
    assert!(a > 0, "a write happened, so the durable LSN must be > 0");
    assert_eq!(
        c.call(&Request::Set {
            key: b"k2",
            value: 2,
            ttl: 0
        }),
        Response::Done
    );
    let Response::Flushed { durable_lsn: b } = c.call(&Request::Flush) else {
        panic!("flush must answer Flushed");
    };
    assert!(b > a, "durable LSN must advance: {a} -> {b}");
    assert_eq!(c.call(&Request::Shutdown), Response::Bye);
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without `--data-dir` there is no log to flush: FLUSH stays a cheap
/// no-op answering LSN 0, and STATS reports `"wal": null`.
#[test]
fn flush_without_wal_is_vacuous() {
    gocc_gosync::set_procs(8);
    let handle = spawn(config(Mode::Lock, None, SyncPolicy::Group)).expect("spawn");
    let mut c = Client::connect(handle.port());
    assert_eq!(
        c.call(&Request::Flush),
        Response::Flushed { durable_lsn: 0 }
    );
    let Response::Stats { json } = c.call(&Request::Stats) else {
        panic!("stats must answer");
    };
    let doc = JsonValue::parse(&json).expect("stats JSON parses");
    assert!(
        matches!(doc.get("wal"), Some(JsonValue::Null)),
        "wal must be JSON null without a data dir"
    );
    assert_eq!(c.call(&Request::Shutdown), Response::Bye);
    let _ = handle.join();
}

/// Checkpointing compacts recovery: after enough writes the checkpoint
/// thread persists a snapshot, and a restart loads it instead of
/// replaying the whole history.
#[test]
fn checkpoint_bounds_replay_on_restart() {
    gocc_gosync::set_procs(8);
    let dir = temp_dir("ckpt");
    let mut cfg = config(Mode::Gocc, Some(dir.clone()), SyncPolicy::Group);
    cfg.wal.checkpoint_every = 100;
    let handle = spawn(cfg.clone()).expect("spawn");
    let mut c = Client::connect(handle.port());
    for i in 0..400u64 {
        let key = format!("k{}", i % 32);
        assert_eq!(
            c.call(&Request::Set {
                key: key.as_bytes(),
                value: i,
                ttl: 0
            }),
            Response::Done
        );
    }
    // Wait for the checkpoint thread to notice the trigger.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let Response::Stats { json } = c.call(&Request::Stats) else {
            panic!("stats must answer");
        };
        let doc = JsonValue::parse(&json).expect("stats JSON parses");
        let ckpts = doc
            .get("wal")
            .and_then(|w| w.get("checkpoints"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        if ckpts >= 1.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint after 400 writes with checkpoint_every=100"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(c.call(&Request::Shutdown), Response::Bye);
    let _ = handle.join();

    let handle = spawn(cfg).expect("respawn");
    let mut c = Client::connect(handle.port());
    let Response::Stats { json } = c.call(&Request::Stats) else {
        panic!("stats must answer");
    };
    let doc = JsonValue::parse(&json).expect("stats JSON parses");
    let rec = doc
        .get("wal")
        .and_then(|w| w.get("recovery"))
        .expect("recovery object");
    assert!(
        matches!(rec.get("checkpoint_loaded"), Some(JsonValue::Bool(true))),
        "restart must boot from the checkpoint"
    );
    let replayed = rec
        .get("recovery_replayed")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        replayed < 400.0,
        "checkpoint must truncate replay below full history, got {replayed}"
    );
    // Last write wins per key after checkpoint + tail replay.
    for k in 0..32u64 {
        let key = format!("k{k}");
        let want = (0..400).rev().find(|i| i % 32 == k).unwrap();
        assert_eq!(
            c.call(&Request::Get {
                key: key.as_bytes()
            }),
            Response::Value {
                found: true,
                value: want
            }
        );
    }
    assert_eq!(c.call(&Request::Shutdown), Response::Bye);
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
