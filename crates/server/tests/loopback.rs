//! End-to-end loopback tests: a real `goccd` instance, real sockets,
//! both execution modes.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gocc_faultplane::{TransportFaultPlan, TransportMix};
use gocc_server::{spawn, Mode, ServerConfig};
use gocc_telemetry::JsonValue;
use gocc_wire::{decode_response, encode_request, read_frame, write_frame, Request, Response};

/// Blocking request/response helper over one client connection.
struct Client {
    stream: TcpStream,
    wirebuf: Vec<u8>,
    respbuf: Vec<u8>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            wirebuf: Vec::new(),
            respbuf: Vec::new(),
        }
    }

    fn call(&mut self, req: &Request<'_>) -> Response<'_> {
        self.wirebuf.clear();
        encode_request(req, &mut self.wirebuf);
        write_frame(&mut self.stream, &self.wirebuf).expect("send");
        assert!(
            read_frame(&mut self.stream, &mut self.respbuf).expect("recv"),
            "server closed mid-conversation"
        );
        decode_response(&self.respbuf).expect("well-formed response")
    }
}

fn config(mode: Mode) -> ServerConfig {
    ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 1024,
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

#[test]
fn verbs_roundtrip_in_both_modes() {
    gocc_gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        let handle = spawn(config(mode)).expect("spawn");
        let mut c = Client::connect(handle.port());
        assert_eq!(
            c.call(&Request::Get { key: b"absent" }),
            Response::Value {
                found: false,
                value: 0
            }
        );
        assert_eq!(
            c.call(&Request::Set {
                key: b"alpha",
                value: 7,
                ttl: 0
            }),
            Response::Done
        );
        assert_eq!(
            c.call(&Request::Get { key: b"alpha" }),
            Response::Value {
                found: true,
                value: 7
            }
        );
        assert_eq!(
            c.call(&Request::Incr {
                key: b"ctr",
                delta: 41
            }),
            Response::Counter { value: 41 }
        );
        assert_eq!(
            c.call(&Request::Incr {
                key: b"ctr",
                delta: 1
            }),
            Response::Counter { value: 42 }
        );
        let Response::Entries { pairs } = c.call(&Request::Scan { limit: 100 }) else {
            panic!("scan must return entries");
        };
        assert_eq!(pairs.len(), 2, "alpha + ctr");
        assert_eq!(
            c.call(&Request::Del { key: b"alpha" }),
            Response::Deleted { existed: true }
        );
        assert_eq!(c.call(&Request::Shutdown), Response::Bye);
        let summary = handle.join();
        assert_eq!(summary.malformed_frames, 0);
        assert!(summary.requests >= 8, "{summary:?}");
    }
}

#[test]
fn stats_json_parses_with_telemetry_parser() {
    gocc_gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        let handle = spawn(config(mode)).expect("spawn");
        let mut c = Client::connect(handle.port());
        for i in 0..50u64 {
            let key = format!("key-{i}");
            c.call(&Request::Set {
                key: key.as_bytes(),
                value: i,
                ttl: 0,
            });
            c.call(&Request::Get {
                key: key.as_bytes(),
            });
        }
        let stats = c.call(&Request::Stats);
        let Response::Stats { json } = stats else {
            panic!("stats must return the JSON document");
        };
        let v = JsonValue::parse(json).expect("STATS JSON parses");
        assert_eq!(
            v.get("mode").unwrap().as_str().unwrap(),
            gocc_server::mode_name(mode)
        );
        assert_eq!(v.get("entries").unwrap().as_f64(), Some(50.0));
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("set").unwrap().as_f64(), Some(50.0));
        assert_eq!(reqs.get("get").unwrap().as_f64(), Some(50.0));
        // The embedded telemetry report is itself a full TelemetryReport
        // document (never null — the server always enables telemetry).
        let tele = v.get("telemetry").unwrap();
        assert!(tele.get("sites").unwrap().as_array().is_some());
        if mode == Mode::Gocc {
            let sites = tele.get("sites").unwrap().as_array().unwrap();
            assert!(!sites.is_empty(), "gocc mode must attribute sections");
        }
        c.call(&Request::Shutdown);
        let _ = handle.join();
    }
}

#[test]
fn trace_verb_returns_spans_for_sampled_requests() {
    gocc_gosync::set_procs(8);
    let mut cfg = config(Mode::Gocc);
    cfg.trace_sample_n = 1; // sample every request
    let handle = spawn(cfg).expect("spawn");
    let mut c = Client::connect(handle.port());
    for i in 0..32u64 {
        let key = format!("t-{i}");
        c.call(&Request::Set {
            key: key.as_bytes(),
            value: i,
            ttl: 0,
        });
        c.call(&Request::Get {
            key: key.as_bytes(),
        });
        c.call(&Request::Incr {
            key: b"ctr",
            delta: 1,
        });
    }

    let Response::Trace { json } = c.call(&Request::Trace { max: 0 }) else {
        panic!("TRACE must return the span document");
    };
    let v = JsonValue::parse(json).expect("TRACE JSON parses");
    let spans = v.get("spans").unwrap().as_array().unwrap();
    assert!(!spans.is_empty(), "sampled requests must leave spans");
    assert!(v.get("pushed").unwrap().as_f64().unwrap() > 0.0);

    // The whole request path is covered: decode → admission queue →
    // engine section → HTM attempts → perceptron decisions → store op →
    // response encode.
    let kinds: std::collections::BTreeSet<&str> = spans
        .iter()
        .map(|s| s.get("kind").unwrap().as_str().unwrap())
        .collect();
    for k in [
        "wire_decode",
        "queue_wait",
        "section",
        "htm_attempt",
        "perceptron",
        "store_op",
        "response_write",
    ] {
        assert!(kinds.contains(k), "missing span kind {k}; have {kinds:?}");
    }

    // Every HTM attempt names its outcome (commit or an abort cause).
    for s in spans.iter() {
        if s.get("kind").unwrap().as_str() == Some("htm_attempt") {
            let outcome = s.get("outcome").unwrap().as_str().unwrap();
            assert!(!outcome.is_empty());
        }
    }

    // One request's spans correlate on a single nonzero trace id: take
    // the newest store_op span and find the rest of its chain.
    let last_store = spans
        .iter()
        .rev()
        .find(|s| s.get("kind").unwrap().as_str() == Some("store_op"))
        .expect("a store_op span");
    let id = last_store.get("trace_id").unwrap().as_f64().unwrap();
    assert!(id != 0.0);
    let chain: std::collections::BTreeSet<&str> = spans
        .iter()
        .filter(|s| s.get("trace_id").unwrap().as_f64() == Some(id))
        .map(|s| s.get("kind").unwrap().as_str().unwrap())
        .collect();
    for k in ["wire_decode", "queue_wait", "store_op", "response_write"] {
        assert!(chain.contains(k), "trace {id} missing {k}; has {chain:?}");
    }

    // STATS reports the flight-recorder counters, and the drain above is
    // visible in spans_taken.
    let Response::Stats { json } = c.call(&Request::Stats) else {
        panic!("stats must return the JSON document");
    };
    let sv = JsonValue::parse(json).expect("STATS JSON parses");
    let tr = sv.get("trace").unwrap();
    assert_eq!(tr.get("sample_n").unwrap().as_f64(), Some(1.0));
    assert!(tr.get("spans_pushed").unwrap().as_f64().unwrap() > 0.0);
    assert!(tr.get("spans_taken").unwrap().as_f64().unwrap() > 0.0);

    // The Chrome trace dump of whatever is currently retained parses and
    // carries the viewer's required fields.
    let dump = handle.state().chrome_trace_json();
    let dv = JsonValue::parse(&dump).expect("chrome dump parses");
    assert!(dv.get("traceEvents").unwrap().as_array().is_some());

    c.call(&Request::Shutdown);
    let _ = handle.join();
}

#[test]
fn malformed_frame_kills_the_connection_not_the_server() {
    gocc_gosync::set_procs(8);
    let handle = spawn(config(Mode::Gocc)).expect("spawn");
    let port = handle.port();

    // Victim connection: send garbage with a plausible header.
    let mut bad = Client::connect(port);
    let mut frame = Vec::new();
    frame.extend_from_slice(&5u32.to_le_bytes());
    frame.extend_from_slice(&[0x7E, 1, 2, 3, 4]); // unknown opcode
    bad.stream.write_all(&frame).unwrap();
    bad.stream.flush().unwrap();
    // The server answers with an Error frame, then closes.
    assert!(read_frame(&mut bad.stream, &mut bad.respbuf).unwrap());
    let Response::Error { message } = decode_response(&bad.respbuf).unwrap() else {
        panic!("expected an error response");
    };
    assert!(message.contains("malformed"), "{message}");
    assert!(
        !read_frame(&mut bad.stream, &mut bad.respbuf).unwrap(),
        "connection must be closed after a malformed frame"
    );

    // A corrupt length prefix is likewise fatal for its connection only.
    let mut corrupt = Client::connect(port);
    corrupt.stream.write_all(&[0, 0, 0, 0]).unwrap();
    corrupt.stream.flush().unwrap();
    assert!(read_frame(&mut corrupt.stream, &mut corrupt.respbuf).unwrap());
    assert!(matches!(
        decode_response(&corrupt.respbuf).unwrap(),
        Response::Error { .. }
    ));

    // The server is still fully alive for a fresh connection.
    let mut good = Client::connect(port);
    assert_eq!(
        good.call(&Request::Set {
            key: b"alive",
            value: 1,
            ttl: 0
        }),
        Response::Done
    );
    assert_eq!(
        good.call(&Request::Get { key: b"alive" }),
        Response::Value {
            found: true,
            value: 1
        }
    );
    assert_eq!(good.call(&Request::Shutdown), Response::Bye);
    let summary = handle.join();
    assert_eq!(summary.malformed_frames, 2);
}

#[test]
fn concurrent_clients_share_the_store() {
    gocc_gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        let handle = spawn(config(mode)).expect("spawn");
        let port = handle.port();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let mut c = Client::connect(port);
                    let mut last = 0u64;
                    for _ in 0..100 {
                        let Response::Counter { value } = c.call(&Request::Incr {
                            key: b"shared",
                            delta: 1,
                        }) else {
                            panic!("incr must return a counter");
                        };
                        // The counter only grows, so the values one
                        // connection observes are strictly increasing.
                        assert!(value > last, "{value} <= {last}");
                        last = value;
                    }
                });
            }
        });
        let mut c = Client::connect(port);
        let Response::Value { found, value } = c.call(&Request::Get { key: b"shared" }) else {
            panic!()
        };
        assert!(found);
        assert_eq!(value, 400, "no lost increments in mode {mode:?}");
        c.call(&Request::Shutdown);
        let _ = handle.join();
    }
}

#[test]
fn injected_transport_faults_cost_connections_not_correctness() {
    // Elevated seeded transport faults on every server-side read/write:
    // short reads/writes must be absorbed by frame reassembly, stalls by
    // polling, and resets by the client reconnecting. Since SET/GET are
    // idempotent, retrying over fresh connections must converge on a
    // fully correct store — faults cost connections, never data.
    gocc_gosync::set_procs(8);
    let plan = Arc::new(TransportFaultPlan::new(2024, TransportMix::uniform(0.2)));
    let mut cfg = config(Mode::Gocc);
    cfg.fault_plan = Some(Arc::clone(&plan));
    let handle = spawn(cfg).expect("spawn");
    let port = handle.port();

    // One request on a fresh connection; any IO error is the caller's to
    // retry (the fault plan resets connections constantly).
    let once = |req: &Request<'_>| -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        let mut wire = Vec::new();
        encode_request(req, &mut wire);
        write_frame(&mut stream, &wire)?;
        let mut resp = Vec::new();
        if !read_frame(&mut stream, &mut resp)? {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "server closed before responding",
            ));
        }
        Ok(resp)
    };
    let with_retry = |req: &Request<'_>| -> Vec<u8> {
        for _ in 0..500 {
            if let Ok(resp) = once(req) {
                return resp;
            }
        }
        panic!("500 attempts all failed — server degraded, not degrading");
    };

    const KEYS: u64 = 60;
    for i in 0..KEYS {
        let key = format!("chaos-{i}");
        let resp = with_retry(&Request::Set {
            key: key.as_bytes(),
            value: i * 3,
            ttl: 0,
        });
        assert_eq!(decode_response(&resp).unwrap(), Response::Done);
    }
    for i in 0..KEYS {
        let key = format!("chaos-{i}");
        let resp = with_retry(&Request::Get {
            key: key.as_bytes(),
        });
        assert_eq!(
            decode_response(&resp).unwrap(),
            Response::Value {
                found: true,
                value: i * 3
            },
            "key {key} lost or corrupted under transport faults"
        );
    }

    assert!(
        plan.total_injected() > 0,
        "the fault plan must actually have fired"
    );
    handle.request_shutdown();
    let summary = handle.join();
    assert_eq!(
        summary.malformed_frames, 0,
        "faults must never corrupt frames"
    );
}

#[test]
fn shutdown_via_handle_terminates_workers() {
    gocc_gosync::set_procs(8);
    let handle = spawn(config(Mode::Gocc)).expect("spawn");
    let mut c = Client::connect(handle.port());
    assert_eq!(
        c.call(&Request::Set {
            key: b"x",
            value: 1,
            ttl: 0
        }),
        Response::Done
    );
    handle.request_shutdown();
    let summary = handle.join();
    assert!(summary.conns_accepted >= 1);
    let v = JsonValue::parse(&summary.stats_json).expect("final stats parse");
    assert_eq!(v.get("server").unwrap().as_str(), Some("goccd"));
}
