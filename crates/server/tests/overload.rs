//! End-to-end overload tests: deadlines, HEALTH, brownout shedding and
//! oversized-frame resynchronization against a real `goccd` over loopback.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use gocc_server::{spawn, HealthState, Mode, ServerConfig};
use gocc_wire::{
    decode_response, encode_request, encode_request_v2, read_frame, write_frame, Request, Response,
    MAX_FRAME,
};

/// Blocking request/response helper over one client connection.
struct Client {
    stream: TcpStream,
    wirebuf: Vec<u8>,
    respbuf: Vec<u8>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            wirebuf: Vec::new(),
            respbuf: Vec::new(),
        }
    }

    fn call(&mut self, req: &Request<'_>) -> Response<'_> {
        self.wirebuf.clear();
        encode_request(req, &mut self.wirebuf);
        self.roundtrip()
    }

    /// A protocol-v2 call carrying a deadline budget.
    fn call_v2(&mut self, req: &Request<'_>, deadline_us: Option<u32>) -> Response<'_> {
        self.wirebuf.clear();
        encode_request_v2(req, deadline_us, &mut self.wirebuf);
        self.roundtrip()
    }

    fn roundtrip(&mut self) -> Response<'_> {
        write_frame(&mut self.stream, &self.wirebuf).expect("send");
        assert!(
            read_frame(&mut self.stream, &mut self.respbuf).expect("recv"),
            "server closed mid-conversation"
        );
        decode_response(&self.respbuf).expect("well-formed response")
    }
}

fn config(mode: Mode) -> ServerConfig {
    ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 1024,
        drain_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    }
}

#[test]
fn health_verb_reports_state_and_counters() {
    gocc_gosync::set_procs(8);
    let handle = spawn(config(Mode::Gocc)).expect("spawn");
    let mut c = Client::connect(handle.port());
    let Response::Health {
        state,
        shed_total,
        deadline_misses,
    } = c.call(&Request::Health)
    else {
        panic!("HEALTH must return a health response");
    };
    assert_eq!(HealthState::from_u8(state), HealthState::Healthy);
    assert_eq!(shed_total, 0);
    assert_eq!(deadline_misses, 0);
    handle.request_shutdown();
    let _ = handle.join();
}

#[test]
fn expired_deadline_never_reaches_the_engine() {
    gocc_gosync::set_procs(8);
    let handle = spawn(config(Mode::Gocc)).expect("spawn");
    let mut c = Client::connect(handle.port());
    // A zero budget is expired on arrival by definition: the SET must be
    // answered DeadlineExceeded and must NOT be applied.
    assert_eq!(
        c.call_v2(
            &Request::Set {
                key: b"never",
                value: 1,
                ttl: 0
            },
            Some(0)
        ),
        Response::DeadlineExceeded
    );
    assert_eq!(
        c.call(&Request::Get { key: b"never" }),
        Response::Value {
            found: false,
            value: 0
        },
        "an expired request must never execute against the engine"
    );
    // A generous budget executes normally through the same v2 path.
    assert_eq!(
        c.call_v2(
            &Request::Set {
                key: b"soon",
                value: 2,
                ttl: 0
            },
            Some(2_000_000)
        ),
        Response::Done
    );
    assert_eq!(
        c.call(&Request::Get { key: b"soon" }),
        Response::Value {
            found: true,
            value: 2
        }
    );
    // HEALTH (a control verb, never deadline-checked) sees the miss.
    let Response::Health {
        deadline_misses, ..
    } = c.call_v2(&Request::Health, Some(0))
    else {
        panic!("health response expected");
    };
    assert_eq!(deadline_misses, 1);
    handle.request_shutdown();
    let summary = handle.join();
    assert_eq!(summary.deadline_misses, 1);
}

#[test]
fn shedding_state_rejects_writes_and_serves_reads() {
    gocc_gosync::set_procs(8);
    let mut cfg = config(Mode::Gocc);
    // Workers feed idle observations continuously; an effectively
    // unreachable recovery threshold pins whatever state the test forces.
    cfg.brownout.recover_obs = u32::MAX;
    let handle = spawn(cfg).expect("spawn");
    let mut c = Client::connect(handle.port());
    assert_eq!(
        c.call(&Request::Set {
            key: b"pre",
            value: 7,
            ttl: 0
        }),
        Response::Done
    );

    // Two saturated observations walk the controller H→D→S.
    handle.state().brownout().observe(1e18, 1e18);
    handle.state().brownout().observe(1e18, 1e18);
    assert_eq!(handle.state().brownout().state(), HealthState::Shedding);

    // Writes are shed with the retriable Overloaded response...
    let Response::Overloaded { state } = c.call(&Request::Set {
        key: b"shed",
        value: 1,
        ttl: 0,
    }) else {
        panic!("writes must be shed while Shedding");
    };
    assert_eq!(HealthState::from_u8(state), HealthState::Shedding);
    // ... SCAN likewise ...
    assert!(matches!(
        c.call(&Request::Scan { limit: 10 }),
        Response::Overloaded { .. }
    ));
    // ... but reads and the control plane still work on the SAME
    // connection — shedding is per-request, not per-connection.
    assert_eq!(
        c.call(&Request::Get { key: b"pre" }),
        Response::Value {
            found: true,
            value: 7
        }
    );
    assert!(matches!(
        c.call(&Request::Health),
        Response::Health { state: 2, .. }
    ));
    handle.request_shutdown();
    let summary = handle.join();
    assert!(summary.shed_total >= 2, "{summary:?}");
}

#[test]
fn brownout_recovers_to_healthy_after_load_removal() {
    gocc_gosync::set_procs(8);
    let mut cfg = config(Mode::Gocc);
    cfg.brownout.alpha = 0.5;
    cfg.brownout.recover_obs = 3;
    let handle = spawn(cfg).expect("spawn");
    let mut c = Client::connect(handle.port());
    handle.state().brownout().observe(1_000.0, 0.0);
    handle.state().brownout().observe(1_000.0, 0.0);
    assert_eq!(handle.state().brownout().state(), HealthState::Shedding);
    // With no load, the workers' idle observations decay the EWMAs and
    // the server must walk back to Healthy well within 5 seconds.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Response::Health { state, .. } = c.call(&Request::Health) {
            if HealthState::from_u8(state) == HealthState::Healthy {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server failed to recover within 5s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let t = handle.state().brownout().transitions();
    assert!(
        t[2] >= 1 && t[3] >= 1,
        "recovery edges must be counted: {t:?}"
    );
    handle.request_shutdown();
    let _ = handle.join();
}

#[test]
fn queue_limit_sheds_a_pipelined_burst() {
    gocc_gosync::set_procs(8);
    let mut cfg = config(Mode::Gocc);
    cfg.queue_limit = 4;
    let handle = spawn(cfg).expect("spawn");
    let mut c = Client::connect(handle.port());
    // One giant pipelined burst: far more frames than the queue limit
    // arrive in a single pump pass, so the tail must be shed.
    const BURST: usize = 64;
    let mut wire = Vec::new();
    for i in 0..BURST {
        let key = format!("burst-{i}");
        encode_request(
            &Request::Set {
                key: key.as_bytes(),
                value: i as u64,
                ttl: 0,
            },
            &mut wire,
        );
    }
    c.stream.write_all(&wire).unwrap();
    c.stream.flush().unwrap();
    let (mut done, mut overloaded) = (0, 0);
    for _ in 0..BURST {
        assert!(read_frame(&mut c.stream, &mut c.respbuf).unwrap());
        match decode_response(&c.respbuf).unwrap() {
            Response::Done => done += 1,
            Response::Overloaded { .. } => overloaded += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(done >= 1, "some of the burst must be admitted");
    assert!(
        overloaded >= 1,
        "a burst past queue_limit must shed its tail (done={done})"
    );
    // The connection survived all of it.
    assert_eq!(
        c.call(&Request::Get { key: b"burst-0" }),
        Response::Value {
            found: true,
            value: 0
        }
    );
    handle.request_shutdown();
    let summary = handle.join();
    assert_eq!(summary.shed_total, overloaded);
}

#[test]
fn oversized_frame_survives_and_resynchronizes_on_the_wire() {
    gocc_gosync::set_procs(8);
    let handle = spawn(config(Mode::Gocc)).expect("spawn");
    let mut c = Client::connect(handle.port());
    // A frame declaring more than MAX_FRAME bytes, fully delivered, then
    // a valid request: the server must answer an Error for the oversized
    // frame, discard its body, and serve the valid request on the same
    // connection.
    let oversized = (MAX_FRAME + 17) as u32;
    let mut wire = Vec::new();
    wire.extend_from_slice(&oversized.to_le_bytes());
    wire.resize(wire.len() + oversized as usize, 0xEE);
    encode_request(
        &Request::Set {
            key: b"after-oversize",
            value: 9,
            ttl: 0,
        },
        &mut wire,
    );
    c.stream.write_all(&wire).unwrap();
    c.stream.flush().unwrap();
    assert!(read_frame(&mut c.stream, &mut c.respbuf).unwrap());
    let Response::Error { message } = decode_response(&c.respbuf).unwrap() else {
        panic!("oversized frame must be answered with an Error");
    };
    assert!(message.contains("size limit"), "{message}");
    assert!(read_frame(&mut c.stream, &mut c.respbuf).unwrap());
    assert_eq!(decode_response(&c.respbuf).unwrap(), Response::Done);
    assert_eq!(
        c.call(&Request::Get {
            key: b"after-oversize"
        }),
        Response::Value {
            found: true,
            value: 9
        }
    );
    handle.request_shutdown();
    let summary = handle.join();
    assert_eq!(summary.oversized_frames, 1);
    assert_eq!(summary.malformed_frames, 0);
}
