//! End-to-end replication tests: a primary and a replica `goccd`, wired
//! over real sockets, with version-checked batch apply, snapshot resync
//! for late joiners, synchronous-ack gating, promotion, and lease-based
//! fencing.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gocc_server::{spawn, Mode, ServerConfig, ServerHandle};
use gocc_telemetry::JsonValue;
use gocc_wire::{
    decode_response, encode_repl_request, encode_request, read_frame, write_frame, ReplRequest,
    Request, Response,
};

/// Blocking request/response helper over one client connection.
struct Client {
    stream: TcpStream,
    wirebuf: Vec<u8>,
    respbuf: Vec<u8>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            wirebuf: Vec::new(),
            respbuf: Vec::new(),
        }
    }

    fn call(&mut self, req: &Request<'_>) -> Response<'_> {
        self.wirebuf.clear();
        encode_request(req, &mut self.wirebuf);
        write_frame(&mut self.stream, &self.wirebuf).expect("send");
        assert!(
            read_frame(&mut self.stream, &mut self.respbuf).expect("recv"),
            "server closed mid-conversation"
        );
        decode_response(&self.respbuf).expect("well-formed response")
    }

    /// Sends a replication verb (the operator plane: REPL_PROMOTE).
    fn repl_call(&mut self, req: &ReplRequest<'_>) -> Response<'_> {
        self.wirebuf.clear();
        encode_repl_request(req, &mut self.wirebuf);
        write_frame(&mut self.stream, &self.wirebuf).expect("send");
        assert!(
            read_frame(&mut self.stream, &mut self.respbuf).expect("recv"),
            "server closed mid-conversation"
        );
        decode_response(&self.respbuf).expect("well-formed response")
    }

    fn stats(&mut self) -> JsonValue {
        match self.call(&Request::Stats) {
            Response::Stats { json } => JsonValue::parse(json).expect("stats JSON parses"),
            other => panic!("expected Stats, got {other:?}"),
        }
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn primary_config(mode: Mode) -> ServerConfig {
    ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 2048,
        repl_accept: true,
        ..ServerConfig::default()
    }
}

fn replica_config(mode: Mode, primary_port: u16) -> ServerConfig {
    ServerConfig {
        mode,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 2048,
        replica_of: Some(format!("127.0.0.1:{primary_port}")),
        ..ServerConfig::default()
    }
}

/// Polls the replica until `key` reads back as `want`, or panics after
/// `deadline` — the bounded-staleness assertion.
fn await_value(replica: &mut Client, key: &[u8], want: Response<'_>, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let got = replica.call(&Request::Get { key });
        if got == want {
            return;
        }
        assert!(
            Instant::now() < until,
            "replica did not converge on {:?} within {:?} (last: {:?})",
            String::from_utf8_lossy(key),
            deadline,
            got,
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn shutdown(handle: ServerHandle) {
    handle.request_shutdown();
    let _ = handle.join();
}

/// Writes stream from primary to replica; the replica serves them, and
/// redirects writes at the primary with a hint. Both execution modes.
#[test]
fn replica_follows_the_primary_and_redirects_writes() {
    gocc_gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        let primary = spawn(primary_config(mode)).expect("spawn primary");
        let replica = spawn(replica_config(mode, primary.port())).expect("spawn replica");
        let mut p = Client::connect(primary.port());
        let mut r = Client::connect(replica.port());

        for i in 0..100u64 {
            let key = format!("key-{i}");
            assert_eq!(
                p.call(&Request::Set {
                    key: key.as_bytes(),
                    value: i * 3,
                    ttl: 0
                }),
                Response::Done
            );
        }
        assert_eq!(
            p.call(&Request::Del { key: b"key-7" }),
            Response::Deleted { existed: true }
        );
        assert_eq!(
            p.call(&Request::Incr {
                key: b"ctr",
                delta: 9
            }),
            Response::Counter { value: 9 }
        );

        // Bounded staleness: the whole batch converges on the replica.
        await_value(
            &mut r,
            b"ctr",
            Response::Value {
                found: true,
                value: 9,
            },
            Duration::from_secs(5),
        );
        await_value(
            &mut r,
            b"key-7",
            Response::Value {
                found: false,
                value: 0,
            },
            Duration::from_secs(5),
        );
        for i in 0..100u64 {
            if i == 7 {
                continue;
            }
            let key = format!("key-{i}");
            await_value(
                &mut r,
                key.as_bytes(),
                Response::Value {
                    found: true,
                    value: i * 3,
                },
                Duration::from_secs(5),
            );
        }

        // Writes at the replica are redirected, with the primary's
        // address as the hint.
        let hint = format!("127.0.0.1:{}", primary.port());
        assert_eq!(
            r.call(&Request::Set {
                key: b"nope",
                value: 1,
                ttl: 0
            }),
            Response::NotPrimary { hint: &hint }
        );
        assert_eq!(
            r.call(&Request::Del { key: b"nope" }),
            Response::NotPrimary { hint: &hint }
        );

        // Roles and the repl object surface in STATS on both sides.
        let ps = p.stats();
        assert_eq!(ps.get("role").unwrap().as_str(), Some("primary"));
        let repl = ps.get("repl").unwrap();
        assert_eq!(repl.get("role").unwrap().as_str(), Some("primary"));
        assert!(repl.get("batches_sent").unwrap().as_f64().unwrap() >= 1.0);
        let rs = r.stats();
        assert_eq!(rs.get("role").unwrap().as_str(), Some("replica"));
        let repl = rs.get("repl").unwrap();
        assert_eq!(repl.get("upstream").unwrap().as_str(), Some(hint.as_str()));
        assert!(repl.get("batches_applied").unwrap().as_f64().unwrap() >= 1.0);

        shutdown(replica);
        shutdown(primary);
    }
}

/// A replica that joins after the primary already has state (here: a
/// WAL-backed primary, so the stream rides the durable tap) must catch
/// up via snapshot resync and then follow incrementally.
#[test]
fn late_replica_catches_up_via_snapshot_resync() {
    gocc_gosync::set_procs(8);
    let dir = temp_dir("late-join");
    let mut config = primary_config(Mode::Gocc);
    config.data_dir = Some(dir.clone());
    config.wal.fsync_wait_us = 50;
    let primary = spawn(config).expect("spawn primary");
    let mut p = Client::connect(primary.port());

    // State exists before any replica subscribes: the subscriber starts
    // behind and must resync from a live snapshot, not the stream.
    for i in 0..150u64 {
        let key = format!("pre-{i}");
        assert_eq!(
            p.call(&Request::Set {
                key: key.as_bytes(),
                value: i,
                ttl: 0
            }),
            Response::Done
        );
    }

    let replica = spawn(replica_config(Mode::Gocc, primary.port())).expect("spawn replica");
    let mut r = Client::connect(replica.port());
    for i in [0u64, 73, 149] {
        let key = format!("pre-{i}");
        await_value(
            &mut r,
            key.as_bytes(),
            Response::Value {
                found: true,
                value: i,
            },
            Duration::from_secs(5),
        );
    }

    // And the stream keeps flowing after the resync.
    assert_eq!(
        p.call(&Request::Set {
            key: b"post",
            value: 424_242,
            ttl: 0
        }),
        Response::Done
    );
    await_value(
        &mut r,
        b"post",
        Response::Value {
            found: true,
            value: 424_242,
        },
        Duration::from_secs(5),
    );
    let rs = r.stats();
    let resyncs = rs
        .get("repl")
        .unwrap()
        .get("snap_resyncs")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(resyncs >= 1.0, "late joiner must have snapshot-resynced");

    shutdown(replica);
    shutdown(primary);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `min_acks: 1`, an acknowledged write is already applied on the
/// replica — reading it there immediately must succeed, no polling.
#[test]
fn synchronous_acks_are_immediately_readable_on_the_replica() {
    gocc_gosync::set_procs(8);
    let mut config = primary_config(Mode::Gocc);
    config.repl_min_acks = 1;
    config.repl_lease = Duration::from_millis(500);
    config.repl_ack_timeout = Duration::from_secs(5);
    let primary = spawn(config).expect("spawn primary");
    let replica = spawn(replica_config(Mode::Gocc, primary.port())).expect("spawn replica");
    let mut p = Client::connect(primary.port());
    let mut r = Client::connect(replica.port());

    // With `min_acks: 1` the primary is fenced until the replica's
    // subscription lands — wait for the attach before asserting acks.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let subs = p
            .stats()
            .get("repl")
            .and_then(|repl| repl.get("subscribers"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if subs >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never subscribed to the primary"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    for i in 0..50u64 {
        let key = format!("sync-{i}");
        assert_eq!(
            p.call(&Request::Set {
                key: key.as_bytes(),
                value: i + 1,
                ttl: 0
            }),
            Response::Done,
            "synchronous write must be acknowledged"
        );
        // No await: the ack implies the replica applied it.
        assert_eq!(
            r.call(&Request::Get {
                key: key.as_bytes()
            }),
            Response::Value {
                found: true,
                value: i + 1
            },
            "acked write missing on the replica — ack-before-apply bug"
        );
    }

    shutdown(replica);
    shutdown(primary);
}

/// Regression: with a single worker the writing client and the
/// replica's subscription are forced onto the same worker. Subscriber
/// streams are pumped by the dedicated repl-out thread, so a `min_acks`
/// write must still be acknowledged — when the worker pumped the
/// subscriber itself, its blocking `wait_replicated` starved the very
/// batch it was waiting on and every write timed out until the lease
/// falsely fenced the primary.
#[test]
fn synchronous_acks_survive_a_single_worker() {
    gocc_gosync::set_procs(8);
    let mut config = primary_config(Mode::Gocc);
    config.workers = 1;
    config.repl_min_acks = 1;
    config.repl_lease = Duration::from_millis(500);
    config.repl_ack_timeout = Duration::from_secs(5);
    let primary = spawn(config).expect("spawn primary");
    let mut replica_cfg = replica_config(Mode::Gocc, primary.port());
    replica_cfg.workers = 1;
    let replica = spawn(replica_cfg).expect("spawn replica");
    let mut p = Client::connect(primary.port());

    // Unfence: wait for the subscription to land and the first ack.
    let until = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = p.call(&Request::Set {
            key: b"warm",
            value: 1,
            ttl: 0,
        });
        if resp == Response::Done {
            break;
        }
        assert!(Instant::now() < until, "primary never unfenced: {resp:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Every synchronous write must ack promptly — no repl_ack_timeout
    // stalls, no false fencing.
    for i in 0..50u64 {
        let key = format!("one-worker-{i}");
        let t0 = Instant::now();
        assert_eq!(
            p.call(&Request::Set {
                key: key.as_bytes(),
                value: i,
                ttl: 0
            }),
            Response::Done,
            "min_acks write must be acknowledged with workers=1"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "ack stalled — subscriber stream starved by the worker"
        );
    }

    shutdown(replica);
    shutdown(primary);
}

/// REPL_PROMOTE with an empty upstream turns the replica into a primary:
/// role flips, writes are accepted, and the feed is re-based.
#[test]
fn promotion_turns_the_replica_into_a_writable_primary() {
    gocc_gosync::set_procs(8);
    let primary = spawn(primary_config(Mode::Gocc)).expect("spawn primary");
    let replica = spawn(replica_config(Mode::Gocc, primary.port())).expect("spawn replica");
    let mut p = Client::connect(primary.port());
    let mut r = Client::connect(replica.port());

    assert_eq!(
        p.call(&Request::Set {
            key: b"before",
            value: 1,
            ttl: 0
        }),
        Response::Done
    );
    await_value(
        &mut r,
        b"before",
        Response::Value {
            found: true,
            value: 1,
        },
        Duration::from_secs(5),
    );

    // Writes rejected before promotion, accepted after.
    assert!(matches!(
        r.call(&Request::Set {
            key: b"after",
            value: 2,
            ttl: 0
        }),
        Response::NotPrimary { .. }
    ));
    assert_eq!(
        r.repl_call(&ReplRequest::Promote { upstream: b"" }),
        Response::Done
    );
    assert_eq!(
        r.call(&Request::Set {
            key: b"after",
            value: 2,
            ttl: 0
        }),
        Response::Done
    );
    assert_eq!(
        r.call(&Request::Get { key: b"before" }),
        Response::Value {
            found: true,
            value: 1
        },
        "promotion must keep the replicated state"
    );
    assert_eq!(r.stats().get("role").unwrap().as_str(), Some("primary"));

    shutdown(replica);
    shutdown(primary);
}

/// Lease fencing: a primary that requires an ack and has no live replica
/// rejects writes — at boot (no subscriber yet), then again after its
/// only replica goes away. In between, with the replica attached, writes
/// flow.
#[test]
fn fenced_primary_rejects_writes_without_live_replicas() {
    gocc_gosync::set_procs(8);
    let mut config = primary_config(Mode::Gocc);
    config.repl_min_acks = 1;
    config.repl_lease = Duration::from_millis(200);
    config.repl_ack_timeout = Duration::from_secs(5);
    let primary = spawn(config).expect("spawn primary");
    let mut p = Client::connect(primary.port());

    // No replica has ever connected: fenced from the start.
    assert!(
        matches!(
            p.call(&Request::Set {
                key: b"k",
                value: 1,
                ttl: 0
            }),
            Response::Error { .. }
        ),
        "write must be fenced with zero live replicas"
    );

    // Attach the replica; writes unfence once the stream acks.
    let replica = spawn(replica_config(Mode::Gocc, primary.port())).expect("spawn replica");
    let until = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = p.call(&Request::Set {
            key: b"k",
            value: 2,
            ttl: 0,
        });
        if resp == Response::Done {
            break;
        }
        assert!(Instant::now() < until, "primary never unfenced: {resp:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Partition (here: kill) the only replica. Once the lease expires the
    // primary must stop acknowledging writes and say why.
    shutdown(replica);
    let until = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = p.call(&Request::Set {
            key: b"k",
            value: 3,
            ttl: 0,
        });
        if matches!(resp, Response::Error { .. }) {
            break;
        }
        assert!(
            Instant::now() < until,
            "primary kept acking past the lease: {resp:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let fenced = p
        .stats()
        .get("repl")
        .unwrap()
        .get("fenced_rejects")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(fenced >= 1.0, "fenced rejects must be counted");

    shutdown(primary);
}

/// Self-healing failover: when the primary dies, the replicas' failure
/// detectors fire, a quorum election runs, and exactly one replica
/// promotes itself — no operator REPL_PROMOTE anywhere. The loser is
/// repointed at the winner by the epoch announce and keeps following.
#[test]
fn auto_promotion_elects_exactly_one_new_primary() {
    gocc_gosync::set_procs(8);
    let primary = spawn(primary_config(Mode::Gocc)).expect("spawn primary");
    let mut rc_a = replica_config(Mode::Gocc, primary.port());
    rc_a.repl_auto_promote = true;
    rc_a.repl_suspect = Duration::from_millis(200);
    rc_a.repl_seed = 41;
    let mut rc_b = replica_config(Mode::Gocc, primary.port());
    rc_b.repl_auto_promote = true;
    rc_b.repl_suspect = Duration::from_millis(200);
    rc_b.repl_seed = 42;
    let a = spawn(rc_a).expect("spawn replica a");
    let b = spawn(rc_b).expect("spawn replica b");
    // Electorate: the other replica plus the (soon dead) primary.
    a.state().set_repl_peers(vec![
        format!("127.0.0.1:{}", b.port()),
        format!("127.0.0.1:{}", primary.port()),
    ]);
    b.state().set_repl_peers(vec![
        format!("127.0.0.1:{}", a.port()),
        format!("127.0.0.1:{}", primary.port()),
    ]);

    let mut p = Client::connect(primary.port());
    for i in 0..40u64 {
        let key = format!("pre-{i}");
        assert_eq!(
            p.call(&Request::Set {
                key: key.as_bytes(),
                value: i,
                ttl: 0
            }),
            Response::Done
        );
    }
    let mut ra = Client::connect(a.port());
    let mut rb = Client::connect(b.port());
    for r in [&mut ra, &mut rb] {
        await_value(
            r,
            b"pre-39",
            Response::Value {
                found: true,
                value: 39,
            },
            Duration::from_secs(5),
        );
    }

    // Kill the primary. No promote call follows.
    shutdown(primary);

    // Detection + election + promotion, all self-driven.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (winner, loser) = loop {
        let (pa, pb) = (!a.state().is_replica(), !b.state().is_replica());
        assert!(
            !(pa && pb),
            "split brain: both replicas promoted themselves"
        );
        if pa {
            break (&a, &b);
        }
        if pb {
            break (&b, &a);
        }
        assert!(
            Instant::now() < deadline,
            "no replica promoted itself within 10s"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(winner.state().epoch() >= 1, "promotion must bump the epoch");
    assert!(
        winner.state().repl_elections() >= 1,
        "the winner must have stood as a candidate"
    );

    // The winner takes writes; replicated history survived.
    let mut w = Client::connect(winner.port());
    assert_eq!(
        w.call(&Request::Set {
            key: b"post-failover",
            value: 7,
            ttl: 0
        }),
        Response::Done
    );
    assert_eq!(
        w.call(&Request::Get { key: b"pre-17" }),
        Response::Value {
            found: true,
            value: 17
        },
        "acked pre-failover write lost across promotion"
    );

    // The loser was repointed by the announce (or a NotPrimary hint) and
    // keeps following the new primary.
    let want = format!("127.0.0.1:{}", winner.port());
    let deadline = Instant::now() + Duration::from_secs(5);
    while loser.state().upstream_hint() != want {
        assert!(
            Instant::now() < deadline,
            "loser never repointed at the winner (upstream {:?})",
            loser.state().upstream_hint()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut l = Client::connect(loser.port());
    await_value(
        &mut l,
        b"post-failover",
        Response::Value {
            found: true,
            value: 7,
        },
        Duration::from_secs(5),
    );
    assert!(
        loser.state().is_replica(),
        "exactly one node may end up primary"
    );

    shutdown(b);
    shutdown(a);
}

/// Read-your-writes over the wire: `SET_S` hands back a version token,
/// `GET_S` with that floor answers `Behind` on a lagging copy and the
/// value once the floor is met. The primary satisfies its own acks
/// immediately.
#[test]
fn session_verbs_enforce_the_version_floor() {
    gocc_gosync::set_procs(8);
    let primary = spawn(primary_config(Mode::Gocc)).expect("spawn primary");
    let replica = spawn(replica_config(Mode::Gocc, primary.port())).expect("spawn replica");
    let mut p = Client::connect(primary.port());
    let mut r = Client::connect(replica.port());

    let version = match p.call(&Request::SetS {
        key: b"ryw",
        value: 11,
        ttl: 0,
    }) {
        Response::DoneAt { version, .. } => version,
        other => panic!("expected DoneAt, got {other:?}"),
    };
    assert!(version >= 1);

    // The acking node satisfies the floor at once.
    assert_eq!(
        p.call(&Request::GetS {
            key: b"ryw",
            min_version: version
        }),
        Response::Value {
            found: true,
            value: 11
        }
    );

    // An impossible floor answers Behind (with where the shard actually
    // is) rather than serving a possibly-stale value.
    assert!(matches!(
        r.call(&Request::GetS {
            key: b"ryw",
            min_version: u64::MAX
        }),
        Response::Behind { .. }
    ));

    // The real floor converges on the replica.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match r.call(&Request::GetS {
            key: b"ryw",
            min_version: version,
        }) {
            Response::Value { found: true, value } => {
                assert_eq!(value, 11);
                break;
            }
            Response::Behind { .. } => {
                assert!(Instant::now() < deadline, "replica never met the floor");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("unexpected session-read answer: {other:?}"),
        }
    }

    // SET_S is a write: replicas redirect it like SET.
    assert!(matches!(
        r.call(&Request::SetS {
            key: b"ryw",
            value: 12,
            ttl: 0
        }),
        Response::NotPrimary { .. }
    ));

    shutdown(replica);
    shutdown(primary);
}

/// Replica-side durable WAL: with `min_acks: 1` and a replica running
/// with a data dir, every acknowledged write is on the replica's disk —
/// restarting from that directory alone (as a standalone primary, the
/// post-failover shape) serves the full acked history.
#[test]
fn replica_wal_makes_acked_writes_survive_a_replica_restart() {
    gocc_gosync::set_procs(8);
    let dir = temp_dir("replica-wal");
    let mut pc = primary_config(Mode::Gocc);
    pc.repl_min_acks = 1;
    pc.repl_lease = Duration::from_millis(500);
    pc.repl_ack_timeout = Duration::from_secs(5);
    let primary = spawn(pc).expect("spawn primary");
    let mut rc = replica_config(Mode::Gocc, primary.port());
    rc.data_dir = Some(dir.clone());
    let replica = spawn(rc).expect("spawn replica");
    let mut p = Client::connect(primary.port());

    // Wait out the boot fence, then write the acked history.
    let until = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = p.call(&Request::Set {
            key: b"durable-0",
            value: 0,
            ttl: 0,
        });
        if resp == Response::Done {
            break;
        }
        assert!(Instant::now() < until, "primary never unfenced: {resp:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    for i in 1..120u64 {
        let key = format!("durable-{i}");
        assert_eq!(
            p.call(&Request::Set {
                key: key.as_bytes(),
                value: i * 7,
                ttl: 0
            }),
            Response::Done,
            "acked write {i}"
        );
    }

    // The ack contract: everything above is already in the replica's WAL.
    // Restart from the directory alone, as a standalone primary.
    shutdown(replica);
    shutdown(primary);
    let reborn = spawn(ServerConfig {
        mode: Mode::Gocc,
        port: 0,
        workers: 2,
        shards: 2,
        capacity_per_shard: 2048,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("respawn from the replica's data dir");
    let mut c = Client::connect(reborn.port());
    for i in [0u64, 1, 59, 119] {
        let key = format!("durable-{i}");
        assert_eq!(
            c.call(&Request::Get {
                key: key.as_bytes()
            }),
            Response::Value {
                found: true,
                value: i * 7
            },
            "acked write durable-{i} missing after replica restart"
        );
    }
    shutdown(reborn);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hostile upstream that hangs up mid-handshake (accept, then close)
/// must not kill the replica: it degrades to retry-with-backoff, keeps
/// serving reads, and converges once repointed at a real primary.
#[test]
fn replica_survives_mid_handshake_hangups_and_recovers() {
    gocc_gosync::set_procs(8);
    // A listener that accepts and immediately drops every connection:
    // the replica's HELLO never gets an answer.
    let hangup = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let hangup_port = hangup.local_addr().unwrap().port();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    hangup.set_nonblocking(true).unwrap();
    let hangup_thread = std::thread::spawn(move || {
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            match hangup.accept() {
                Ok((s, _)) => drop(s),
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    });

    let replica = spawn(replica_config(Mode::Gocc, hangup_port)).expect("spawn replica");
    let mut r = Client::connect(replica.port());

    // Let it eat several hangups, then prove it is alive and degraded,
    // not dead: reads answer, and the reconnect counter is climbing.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reconnects = r
            .stats()
            .get("repl")
            .unwrap()
            .get("reconnects")
            .unwrap()
            .as_f64()
            .unwrap();
        if reconnects >= 3.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica stopped retrying after hangups (reconnects {reconnects})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        r.call(&Request::Get { key: b"missing" }),
        Response::Value {
            found: false,
            value: 0
        },
        "a degraded replica must still serve reads"
    );

    // Repoint at a real primary: the sink must recover on the next dial.
    let primary = spawn(primary_config(Mode::Gocc)).expect("spawn primary");
    let upstream = format!("127.0.0.1:{}", primary.port());
    assert_eq!(
        r.repl_call(&ReplRequest::Promote {
            upstream: upstream.as_bytes()
        }),
        Response::Done
    );
    let mut p = Client::connect(primary.port());
    assert_eq!(
        p.call(&Request::Set {
            key: b"recovered",
            value: 5,
            ttl: 0
        }),
        Response::Done
    );
    await_value(
        &mut r,
        b"recovered",
        Response::Value {
            found: true,
            value: 5,
        },
        Duration::from_secs(5),
    );

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    hangup_thread.join().unwrap();
    shutdown(primary);
    shutdown(replica);
}
