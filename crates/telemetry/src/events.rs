//! A bounded, sharded-per-thread trace of elision decisions.
//!
//! Every `FastLock` decision appends one [`Event`] — which site, which
//! lock, what the predictor said, and how the section ended. Threads hash
//! to one of a fixed set of shards (no allocation, no locks); each shard
//! is a ring that overwrites its oldest entries, so a run traces its tail
//! regardless of length and [`EventRing::drain`] recovers the most recent
//! window after the run.
//!
//! Slots are three relaxed atomics written in claim order; a reader racing
//! a writer can observe a torn event, which is acceptable for a trace (the
//! registry, not the ring, is the source of exact counts). Drains happen
//! after worker threads join in every shipped use.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shards (threads hash onto these).
const SHARDS: usize = 16;
/// Slots per shard ring.
const SLOTS: usize = 1024;

/// How a traced critical section concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventOutcome {
    /// Committed speculatively.
    FastCommit,
    /// Completed under the real lock.
    SlowSection,
    /// Aborted; payload is the abort-cause index
    /// (see [`crate::ABORT_CAUSE_NAMES`]).
    Abort(u8),
}

impl EventOutcome {
    fn encode(self) -> u64 {
        match self {
            EventOutcome::FastCommit => 0,
            EventOutcome::SlowSection => 1,
            EventOutcome::Abort(cause) => 2 | (u64::from(cause) << 8),
        }
    }

    fn decode(word: u64) -> EventOutcome {
        match word & 0xFF {
            0 => EventOutcome::FastCommit,
            1 => EventOutcome::SlowSection,
            _ => EventOutcome::Abort(((word >> 8) & 0xFF) as u8),
        }
    }
}

/// One traced elision decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Call-site identity.
    pub site: usize,
    /// Lock identity.
    pub lock: usize,
    /// Whether the predictor chose the fast path.
    pub predicted_fast: bool,
    /// How the section ended.
    pub outcome: EventOutcome,
}

#[derive(Debug)]
struct Slot {
    site: AtomicUsize,
    lock: AtomicUsize,
    /// Bit 0..16: outcome encoding; bit 16: predicted_fast; bit 17: valid.
    meta: AtomicU64,
}

#[derive(Debug)]
struct Shard {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

/// The sharded ring buffer.
#[derive(Debug)]
pub struct EventRing {
    shards: Box<[Shard]>,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new()
    }
}

fn thread_shard() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

const PREDICT_BIT: u64 = 1 << 16;
const VALID_BIT: u64 = 1 << 17;

impl EventRing {
    /// Creates an empty ring (16 shards × 1024 slots).
    #[must_use]
    pub fn new() -> Self {
        EventRing {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    cursor: AtomicU64::new(0),
                    slots: (0..SLOTS)
                        .map(|_| Slot {
                            site: AtomicUsize::new(0),
                            lock: AtomicUsize::new(0),
                            meta: AtomicU64::new(0),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Appends an event to the calling thread's shard, overwriting the
    /// oldest entry once the ring is full.
    pub fn push(&self, event: Event) {
        let shard = &self.shards[thread_shard()];
        let idx = shard.cursor.fetch_add(1, Ordering::Relaxed) as usize % SLOTS;
        let slot = &shard.slots[idx];
        slot.site.store(event.site, Ordering::Relaxed);
        slot.lock.store(event.lock, Ordering::Relaxed);
        let mut meta = event.outcome.encode() | VALID_BIT;
        if event.predicted_fast {
            meta |= PREDICT_BIT;
        }
        slot.meta.store(meta, Ordering::Relaxed);
    }

    /// Total events ever pushed (including overwritten ones).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cursor.load(Ordering::Relaxed))
            .sum()
    }

    /// Events still retained in the ring (what [`EventRing::drain`] would
    /// return, modulo races).
    #[must_use]
    pub fn retained(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cursor.load(Ordering::Relaxed).min(SLOTS as u64))
            .sum()
    }

    /// Events overwritten by ring wrap-around — pushed minus retained.
    /// Nonzero means the drained window is a truncated tail of the run.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.cursor
                    .load(Ordering::Relaxed)
                    .saturating_sub(SLOTS as u64)
            })
            .sum()
    }

    /// Copies out every retained event, oldest-first per shard.
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let cursor = shard.cursor.load(Ordering::Relaxed) as usize;
            let (start, len) = if cursor > SLOTS {
                (cursor % SLOTS, SLOTS)
            } else {
                (0, cursor.min(SLOTS))
            };
            for k in 0..len {
                let slot = &shard.slots[(start + k) % SLOTS];
                let meta = slot.meta.load(Ordering::Relaxed);
                if meta & VALID_BIT == 0 {
                    continue;
                }
                out.push(Event {
                    site: slot.site.load(Ordering::Relaxed),
                    lock: slot.lock.load(Ordering::Relaxed),
                    predicted_fast: meta & PREDICT_BIT != 0,
                    outcome: EventOutcome::decode(meta),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_roundtrip() {
        let ring = EventRing::new();
        ring.push(Event {
            site: 0x10,
            lock: 0x20,
            predicted_fast: true,
            outcome: EventOutcome::FastCommit,
        });
        ring.push(Event {
            site: 0x11,
            lock: 0x21,
            predicted_fast: false,
            outcome: EventOutcome::Abort(3),
        });
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert!(events.contains(&Event {
            site: 0x10,
            lock: 0x20,
            predicted_fast: true,
            outcome: EventOutcome::FastCommit,
        }));
        assert!(events.contains(&Event {
            site: 0x11,
            lock: 0x21,
            predicted_fast: false,
            outcome: EventOutcome::Abort(3),
        }));
    }

    #[test]
    fn ring_is_bounded() {
        let ring = EventRing::new();
        for i in 0..(SLOTS * 3) {
            ring.push(Event {
                site: i + 1,
                lock: 1,
                predicted_fast: true,
                outcome: EventOutcome::SlowSection,
            });
        }
        let events = ring.drain();
        assert_eq!(events.len(), SLOTS, "one shard, capped at its capacity");
        // Retained events are the most recent window.
        assert!(events.iter().all(|e| e.site > SLOTS));
        assert_eq!(ring.pushed(), (SLOTS * 3) as u64);
        assert_eq!(ring.retained(), SLOTS as u64);
        assert_eq!(ring.dropped(), (SLOTS * 2) as u64);
        assert_eq!(ring.pushed(), ring.retained() + ring.dropped());
    }

    #[test]
    fn outcome_encoding_roundtrip() {
        for outcome in [
            EventOutcome::FastCommit,
            EventOutcome::SlowSection,
            EventOutcome::Abort(0),
            EventOutcome::Abort(6),
        ] {
            assert_eq!(EventOutcome::decode(outcome.encode()), outcome);
        }
    }

    #[test]
    fn threads_use_stable_shards() {
        let ring = EventRing::new();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..100 {
                        ring.push(Event {
                            site: t * 1000 + i + 1,
                            lock: 7,
                            predicted_fast: true,
                            outcome: EventOutcome::FastCommit,
                        });
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 800);
        assert!(!ring.drain().is_empty());
    }
}
