//! Exponentially weighted moving averages.
//!
//! The overload layer in `crates/server` drives its brownout state machine
//! from smoothed load signals (queue depth, request latency); smoothing
//! lives here so the controller's inputs use the same primitive everywhere
//! and can be unit-tested without a server. The filter is the textbook
//! `v ← v + α·(x − v)` with first-sample priming (the first observation
//! sets the value outright instead of averaging against a fictional zero).

/// A scalar EWMA filter: `value ← value + alpha * (x - value)`.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// A filter with smoothing factor `alpha` in `(0, 1]`. Larger alpha
    /// tracks faster; `alpha == 1` is no smoothing at all.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            value: 0.0,
            primed: false,
        }
    }

    /// Feeds one sample and returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
        self.value
    }

    /// The current average (0.0 before any sample).
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been observed.
    #[must_use]
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// Resets to the unprimed state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.primed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_primes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), 0.0);
        assert!(!e.primed());
        assert!((e.observe(100.0) - 100.0).abs() < 1e-12);
        assert!(e.primed());
    }

    #[test]
    fn converges_toward_constant_input() {
        let mut e = Ewma::new(0.25);
        e.observe(0.0);
        for _ in 0..64 {
            e.observe(10.0);
        }
        assert!((e.value() - 10.0).abs() < 1e-6, "value {}", e.value());
    }

    #[test]
    fn decays_when_input_drops() {
        let mut e = Ewma::new(0.5);
        e.observe(1000.0);
        e.observe(0.0);
        assert!((e.value() - 500.0).abs() < 1e-9);
        e.observe(0.0);
        assert!((e.value() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_is_passthrough() {
        let mut e = Ewma::new(1.0);
        for x in [3.0, -7.5, 42.0] {
            assert!((e.observe(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_unprimes() {
        let mut e = Ewma::new(0.3);
        e.observe(9.0);
        e.reset();
        assert!(!e.primed());
        assert!((e.observe(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }
}
