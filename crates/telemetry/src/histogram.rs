//! Log2-bucketed latency histograms on plain atomics.
//!
//! 64 buckets cover the full `u64` nanosecond range: bucket *i* holds
//! samples whose value's bit length is *i* (bucket 0 = 0 ns, bucket 1 =
//! 1 ns, bucket 2 = 2–3 ns, bucket 10 = 512–1023 ns, …). Recording is one
//! `leading_zeros` plus two relaxed `fetch_add`s — cheap enough to sit on
//! the critical-section completion path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (full `u64` range).
pub const BUCKETS: usize = 64;

/// A concurrent log2 histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: its bit length.
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample (nanoseconds).
    pub fn record(&self, ns: u64) {
        let idx = bucket_of(ns).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copies the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket *i* covers values with bit length
    /// *i*, i.e. `[2^(i-1), 2^i)` for `i >= 2`.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Largest recorded sample (ns).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Inclusive lower bound of a bucket, in ns.
    #[must_use]
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Mean sample value; 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Approximate p-quantile (`0.0..=1.0`) with linear interpolation
    /// inside the bucket holding the p-th sample. 0 when empty.
    ///
    /// Log2 buckets double in width, so returning only the bucket floor
    /// collapses every sub-2× difference: a sweep whose p50, p90 and p99
    /// all land in the `[262144, 524287]` bucket reports three identical
    /// numbers. Interpolating by rank within the bucket (samples assumed
    /// uniform across it — the standard histogram-quantile estimate)
    /// recovers the sub-bucket resolution. The bucket ceiling is clamped
    /// to the recorded maximum, so a lone sample reports itself exactly.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = HistogramSnapshot::bucket_floor(i);
                // Inclusive upper bound of bucket i: 0 for bucket 0, else
                // 2^i - 1; never past the largest recorded sample.
                let hi = match i {
                    0 => 0,
                    _ => ((1u128 << i) - 1).min(u128::from(self.max)) as u64,
                };
                let rank = target - seen; // 1..=c within this bucket
                let span = u128::from(hi.saturating_sub(lo));
                let off = (span * u128::from(rank) / u128::from(c)) as u64;
                return lo + off;
            }
            seen += c;
        }
        self.max
    }

    /// Iterator over non-empty `(bucket_floor_ns, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (HistogramSnapshot::bucket_floor(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64 - 1 + 1); // clamped by record()
    }

    #[test]
    fn record_and_snapshot() {
        let h = LatencyHistogram::new();
        for ns in [0, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1_001_106);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 2, "2 and 3 share a bucket");
        assert!((s.mean() - 1_001_106.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_monotone() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) <= s.quantile(0.99));
        assert_eq!(s.quantile(1.0), 999, "top quantile reaches the max sample");
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // Uniform 0..999: bucket 10 holds 512..=999 (488 samples). Without
        // interpolation p50/p90/p99 would all collapse to bucket floors;
        // with rank interpolation they separate and pin to exact values.
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let s = h.snapshot();
        // target=500 lands in bucket 9 (256..=511, 256 samples, seen=256
        // before): lo=256, hi=511, rank=244 -> 256 + 255*244/256 = 499.
        assert_eq!(s.quantile(0.5), 499);
        // target=990, bucket 10 (512..=999 after max clamp, 488 samples,
        // seen=512): lo=512, hi=999, rank=478 -> 512 + 487*478/488 = 989.
        assert_eq!(s.quantile(0.99), 989);
        assert_eq!(s.quantile(1.0), 999);
        assert!(s.quantile(0.5) < s.quantile(0.9));
        assert!(s.quantile(0.9) < s.quantile(0.99));

        // A single sample reports itself exactly at every quantile: the
        // bucket ceiling clamps to max, and rank==count pins to it.
        let one = LatencyHistogram::new();
        one.record(100);
        let os = one.snapshot();
        assert_eq!(os.quantile(0.5), 100);
        assert_eq!(os.quantile(0.99), 100);
    }

    #[test]
    fn concurrent_counts_are_exact() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        h.record(i % 512);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }
}
