//! A hand-rolled JSON emitter and a small parser.
//!
//! The workspace is offline (no serde); telemetry reports and the
//! `BENCH_*.json` artifacts are written through [`JsonWriter`], which
//! preserves insertion order so output is byte-stable for golden tests,
//! and read back through [`JsonValue::parse`] in round-trip tests and any
//! downstream tooling that wants to consume the artifacts in-tree.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An order-preserving JSON document builder.
///
/// The writer is a state machine over a single output string: `begin_*` /
/// `end_*` nest, `key` names the next value inside an object, and the
/// scalar methods emit values. Commas and quoting are handled internally.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current container already has an element.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pad(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Opens the root or a nested object.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pad();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pad();
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push(']');
        self
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pad();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value after a key must not emit another comma.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.pad();
        write_escaped(&mut self.out, v);
        self
    }

    /// Emits an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pad();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Emits a signed integer.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.pad();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Emits a float with a stable short representation (3 decimal places
    /// — enough for ns/op and percentages, and byte-stable across runs of
    /// identical inputs). Non-finite values become `null`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pad();
        if v.is_finite() {
            let _ = write!(self.out, "{v:.3}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Emits a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pad();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits a `null` — the convention for "no value", e.g. a statistic
    /// over an empty set (as opposed to a zero, which reads as measured).
    pub fn null(&mut self) -> &mut Self {
        self.pad();
        self.out.push_str("null");
        self
    }

    /// Splices an already-rendered JSON document in as a value — how the
    /// server nests a [`crate::TelemetryReport`]'s JSON inside its own
    /// stats document without re-parsing it. The caller owns the claim
    /// that `json` is well-formed; garbage in, garbage out.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.pad();
        self.out.push_str(json);
        self
    }

    /// Convenience: `key` + `u64`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64(v)
    }

    /// Convenience: `key` + `f64`.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64(v)
    }

    /// Convenience: `key` + `string`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).string(v)
    }

    /// Convenience: `key` + `bool`.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool(v)
    }

    /// Convenience: `key` + `raw`.
    pub fn field_raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k).raw(json)
    }

    /// Finishes and returns the document.
    #[must_use]
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unclosed container");
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (for round-trip tests and in-tree consumers).
///
/// Objects are stored in a `BTreeMap`, so structural equality ignores key
/// order — exactly the equivalence round-trip tests want.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a JSON document. Returns an error message with a byte
    /// offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a boundary).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_values_round_trip() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("missing")
            .null()
            .key("list")
            .begin_array()
            .null()
            .u64(1)
            .end_array()
            .end_object();
        let s = w.finish();
        assert_eq!(s, r#"{"missing":null,"list":[null,1]}"#);
        let v = JsonValue::parse(&s).expect("parses");
        assert_eq!(v.get("missing").unwrap(), &JsonValue::Null);
        assert_eq!(
            v.get("list").unwrap().as_array().unwrap()[0],
            JsonValue::Null
        );
    }

    #[test]
    fn writer_emits_stable_order() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "x")
            .field_u64("count", 3)
            .key("nested")
            .begin_object()
            .field_f64("ratio", 0.5)
            .end_object()
            .key("list")
            .begin_array()
            .u64(1)
            .u64(2)
            .end_array()
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"x","count":3,"nested":{"ratio":0.500},"list":[1,2]}"#
        );
    }

    #[test]
    fn escaping() {
        let mut w = JsonWriter::new();
        w.begin_object().field_str("k", "a\"b\\c\nd").end_object();
        let text = w.finish();
        assert_eq!(text, "{\"k\":\"a\\\"b\\\\c\\nd\"}");
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str().unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":1,"b":[true,false,null],"c":{"d":"e"},"f":-2.5}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str().unwrap(), "e");
        assert_eq!(v.get("f").unwrap().as_f64().unwrap(), -2.5);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn raw_splices_nested_documents() {
        let mut inner = JsonWriter::new();
        inner.begin_object().field_u64("sites", 3).end_object();
        let inner = inner.finish();
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("mode", "gocc")
            .field_raw("telemetry", &inner)
            .key("list")
            .begin_array()
            .raw("1")
            .raw("2")
            .end_array()
            .end_object();
        let text = w.finish();
        assert_eq!(
            text,
            r#"{"mode":"gocc","telemetry":{"sites":3},"list":[1,2]}"#
        );
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(
            v.get("telemetry").unwrap().get("sites").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object().field_f64("x", f64::NAN).end_object();
        assert_eq!(w.finish(), r#"{"x":null}"#);
    }
}
