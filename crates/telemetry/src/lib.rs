//! Observability primitives for the GOCC runtime.
//!
//! The paper's entire evaluation (§6, Figures 6–10) is an observability
//! argument: speedups and regressions are explained through abort causes,
//! perceptron back-off dynamics, and fast-path ratios. The flat global
//! counters in `gocc-htm`/`gocc-optilock` cannot attribute any of that to
//! a call site or a lock; this crate adds the missing layer:
//!
//! * [`SiteRegistry`] — a fixed-size hashed `(call_site, mutex_id)` table
//!   (the same 4K hashed-index design as the perceptron's weight tables)
//!   recording starts, commits, slow-path falls and aborts by cause,
//!   lock-free and allocation-free on the hot path;
//! * [`LatencyHistogram`] — log2-bucketed atomic histograms for fast-path
//!   vs. slow-path critical-section duration;
//! * [`EventRing`] — a bounded, sharded-per-thread trace of elision
//!   decisions (site, lock, prediction, outcome), drainable after a run;
//! * [`JsonWriter`]/[`JsonValue`] — a hand-rolled JSON emitter (stable key
//!   order) and a small parser for round-trip tests, so the registry stays
//!   dependency-free;
//! * [`rng::SplitMix64`] — the in-tree deterministic PRNG used by
//!   workloads, benchmarks and the ported property suites (the build is
//!   fully offline; no `rand`).
//!
//! The crate deliberately depends on nothing, not even the HTM crate:
//! abort causes are carried as indices (see [`ABORT_CAUSE_NAMES`]) so the
//! runtime layers above decide the mapping.

mod events;
mod ewma;
mod histogram;
mod json;
mod registry;
mod report;
pub mod rng;
pub mod trace;

pub use events::{Event, EventOutcome, EventRing};
pub use ewma::Ewma;
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use json::{JsonValue, JsonWriter};
pub use registry::{SiteRecord, SiteRegistry, ABORT_CAUSES, ABORT_CAUSE_NAMES};
pub use report::TelemetryReport;
pub use rng::SplitMix64;
pub use trace::{Span, SpanKind, TraceRecorder, SPAN_KIND_NAMES};

use std::sync::atomic::{AtomicU64, Ordering};

/// The bundle of telemetry state one runtime instance carries.
///
/// Constructed only when telemetry is enabled; a disabled runtime holds no
/// `Telemetry` at all, so the hot path pays a single pointer test.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Per-`(call_site, mutex)` attribution counters.
    pub sites: SiteRegistry,
    /// Critical-section latency, fast path (speculative commit).
    pub fast_latency: LatencyHistogram,
    /// Critical-section latency, slow path (under the real lock).
    pub slow_latency: LatencyHistogram,
    /// Bounded trace of elision decisions.
    pub events: EventRing,
    /// Sections whose latency was dropped because the clock went backwards
    /// or the section never completed (diagnostic; normally zero).
    dropped_samples: AtomicU64,
    /// Sections the livelock watchdog hard-forced onto the lock path
    /// after their abort count crossed the policy bound. Nonzero means
    /// the bounded-retry guarantee was exercised, not that anything went
    /// wrong — the section still completed, pessimistically.
    watchdog_forced: AtomicU64,
    /// Speculative attempts that reused a cached per-thread transaction
    /// context (the allocation-free steady state). Attempts minus this is
    /// how many times the runtime had to allocate an arena.
    ctx_reused: AtomicU64,
    /// Speculative attempts aborted because a *physical* context bound
    /// (inline write table, staged-value size, read/subscription
    /// capacity) overflowed, as opposed to the modeled HTM capacity.
    inline_overflows: AtomicU64,
}

impl Telemetry {
    /// Creates an empty telemetry bundle.
    #[must_use]
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Notes a sample that could not be attributed.
    pub fn note_dropped(&self) {
        self.dropped_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of dropped samples.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_samples.load(Ordering::Relaxed)
    }

    /// Notes a section hard-forced to the lock path by the watchdog.
    pub fn note_watchdog_forced(&self) {
        self.watchdog_forced.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of watchdog-forced sections.
    #[must_use]
    pub fn watchdog_forced(&self) -> u64 {
        self.watchdog_forced.load(Ordering::Relaxed)
    }

    /// Notes a speculative attempt that reused a cached context.
    pub fn note_ctx_reused(&self) {
        self.ctx_reused.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of attempts that reused a cached context.
    #[must_use]
    pub fn ctx_reused(&self) -> u64 {
        self.ctx_reused.load(Ordering::Relaxed)
    }

    /// Notes an abort caused by a physical context-capacity overflow.
    pub fn note_inline_overflow(&self) {
        self.inline_overflows.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of physical context-capacity overflows.
    #[must_use]
    pub fn inline_overflows(&self) -> u64 {
        self.inline_overflows.load(Ordering::Relaxed)
    }

    /// Snapshots everything into a serializable report.
    #[must_use]
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport {
            sites: self.sites.snapshot(),
            aliased_sites: self.sites.aliased(),
            fast_latency: self.fast_latency.snapshot(),
            slow_latency: self.slow_latency.snapshot(),
            events: self.events.drain(),
            events_pushed: self.events.pushed(),
            events_dropped: self.events.dropped(),
            dropped_samples: self.dropped(),
            watchdog_forced: self.watchdog_forced(),
            ctx_reused: self.ctx_reused(),
            inline_overflows: self.inline_overflows(),
        }
    }
}
