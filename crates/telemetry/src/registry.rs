//! Per-`(call_site, mutex)` attribution counters.
//!
//! The design copies the perceptron's hashed-table shape (§5.4.1): a fixed
//! 4K-entry array indexed by a SplitMix64-finalized hash of the
//! `(site, lock)` pair. Cells are claimed with one CAS on first touch and
//! every later update is a relaxed `fetch_add` — lock-free and
//! allocation-free on the hot path, which is what lets the registry sit
//! inside `FastLock`/`FastUnlock` without perturbing what it measures.
//!
//! Hash aliasing is handled the way the perceptron handles it: the
//! colliding pair shares the cell (attribution smears rather than stalls)
//! and a global `aliased` counter reports how often that happened so
//! reports can carry a confidence note.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of distinguishable abort causes (mirrors `gocc_htm::AbortCause`:
/// explicit, retry, conflict, capacity, debug, nested, unfriendly).
pub const ABORT_CAUSES: usize = 7;

/// Stable names for the abort-cause indices, in index order.
pub const ABORT_CAUSE_NAMES: [&str; ABORT_CAUSES] = [
    "explicit",
    "retry",
    "conflict",
    "capacity",
    "debug",
    "nested",
    "unfriendly",
];

/// Entries in the registry (same 4K shape as the perceptron tables).
const TABLE_ENTRIES: usize = 4096;
const INDEX_MASK: usize = TABLE_ENTRIES - 1;

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct SiteCell {
    /// Claimed call-site identity; 0 = empty (sites are `static` addresses
    /// and locks are heap/stack addresses, so 0 never occurs naturally).
    site: AtomicUsize,
    lock: AtomicUsize,
    starts: AtomicU64,
    commits: AtomicU64,
    slow_sections: AtomicU64,
    aborts: [AtomicU64; ABORT_CAUSES],
}

/// One row of a registry snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteRecord {
    /// Call-site identity (the `call_site!` static's address).
    pub site: usize,
    /// Lock identity (`ElidableMutex::id`-style address).
    pub lock: usize,
    /// HTM attempts started from this pair.
    pub starts: u64,
    /// Fast-path commits.
    pub commits: u64,
    /// Sections that completed under the real lock.
    pub slow_sections: u64,
    /// Aborts by cause index (see [`ABORT_CAUSE_NAMES`]).
    pub aborts: [u64; ABORT_CAUSES],
}

impl SiteRecord {
    /// Total aborts across all causes.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }
}

/// The fixed-size hashed `(site, lock)` table.
#[derive(Debug)]
pub struct SiteRegistry {
    cells: Box<[SiteCell]>,
    aliased: AtomicU64,
}

impl Default for SiteRegistry {
    fn default() -> Self {
        SiteRegistry::new()
    }
}

impl SiteRegistry {
    /// Creates an empty registry (4096 cells, ~1.3 MiB, allocated once).
    #[must_use]
    pub fn new() -> Self {
        SiteRegistry {
            cells: (0..TABLE_ENTRIES).map(|_| SiteCell::default()).collect(),
            aliased: AtomicU64::new(0),
        }
    }

    fn cell(&self, site: usize, lock: usize) -> &SiteCell {
        let idx = mix((site as u64).rotate_left(17) ^ lock as u64) as usize & INDEX_MASK;
        let cell = &self.cells[idx];
        match cell
            .site
            .compare_exchange(0, site, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                cell.lock.store(lock, Ordering::Relaxed);
            }
            Err(owner) => {
                if owner != site || cell.lock.load(Ordering::Relaxed) != lock {
                    self.aliased.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        cell
    }

    /// Records one HTM attempt for the pair.
    pub fn record_start(&self, site: usize, lock: usize) {
        self.cell(site, lock).starts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fast-path commit for the pair.
    pub fn record_commit(&self, site: usize, lock: usize) {
        self.cell(site, lock)
            .commits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one slow-path section completion for the pair.
    pub fn record_slow(&self, site: usize, lock: usize) {
        self.cell(site, lock)
            .slow_sections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one abort for the pair. Out-of-range cause indices are
    /// clamped into the last (unfriendly) bucket rather than panicking —
    /// the registry is diagnostics, never control flow.
    pub fn record_abort(&self, site: usize, lock: usize, cause_idx: usize) {
        let idx = cause_idx.min(ABORT_CAUSES - 1);
        self.cell(site, lock).aborts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of updates that landed in a cell claimed by a different
    /// pair (hash aliasing).
    #[must_use]
    pub fn aliased(&self) -> u64 {
        self.aliased.load(Ordering::Relaxed)
    }

    /// Snapshots every occupied cell, ordered by (site, lock) so output is
    /// stable across runs of the same program.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SiteRecord> {
        let mut out: Vec<SiteRecord> = self
            .cells
            .iter()
            .filter(|c| c.site.load(Ordering::Relaxed) != 0)
            .map(|c| SiteRecord {
                site: c.site.load(Ordering::Relaxed),
                lock: c.lock.load(Ordering::Relaxed),
                starts: c.starts.load(Ordering::Relaxed),
                commits: c.commits.load(Ordering::Relaxed),
                slow_sections: c.slow_sections.load(Ordering::Relaxed),
                aborts: std::array::from_fn(|i| c.aborts[i].load(Ordering::Relaxed)),
            })
            .collect();
        out.sort_unstable_by_key(|r| (r.site, r.lock));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_attribute_to_their_pair() {
        let reg = SiteRegistry::new();
        reg.record_start(0x1000, 0x2000);
        reg.record_start(0x1000, 0x2000);
        reg.record_commit(0x1000, 0x2000);
        reg.record_abort(0x1000, 0x2000, 2);
        reg.record_slow(0x3000, 0x2000);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        let a = snap.iter().find(|r| r.site == 0x1000).unwrap();
        assert_eq!(a.starts, 2);
        assert_eq!(a.commits, 1);
        assert_eq!(a.aborts[2], 1);
        assert_eq!(a.total_aborts(), 1);
        let b = snap.iter().find(|r| r.site == 0x3000).unwrap();
        assert_eq!(b.slow_sections, 1);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = SiteRegistry::new();
        for site in [0x9000usize, 0x1000, 0x5000] {
            reg.record_start(site, 0x42);
        }
        let snap = reg.snapshot();
        let sites: Vec<usize> = snap.iter().map(|r| r.site).collect();
        let mut sorted = sites.clone();
        sorted.sort_unstable();
        assert_eq!(sites, sorted);
    }

    #[test]
    fn out_of_range_cause_clamps() {
        let reg = SiteRegistry::new();
        reg.record_abort(0x10, 0x20, 999);
        let snap = reg.snapshot();
        assert_eq!(snap[0].aborts[ABORT_CAUSES - 1], 1);
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let reg = SiteRegistry::new();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let reg = &reg;
                s.spawn(move || {
                    let site = 0x1000 + (t % 2) * 0x1000;
                    for _ in 0..10_000 {
                        reg.record_start(site, 0xAB);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let total: u64 = snap.iter().map(|r| r.starts).sum();
        assert_eq!(total, 40_000, "no lost counts under contention");
    }
}
