//! Serializable snapshot of a [`crate::Telemetry`] bundle.

use std::fmt::Write as _;

use crate::events::{Event, EventOutcome};
use crate::histogram::HistogramSnapshot;
use crate::json::JsonWriter;
use crate::registry::{SiteRecord, ABORT_CAUSE_NAMES};

/// Everything one telemetry-enabled run produced, in plain data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Per-site attribution rows, sorted by (site, lock).
    pub sites: Vec<SiteRecord>,
    /// Updates that landed in an aliased registry cell.
    pub aliased_sites: u64,
    /// Fast-path critical-section latency.
    pub fast_latency: HistogramSnapshot,
    /// Slow-path critical-section latency.
    pub slow_latency: HistogramSnapshot,
    /// Recent elision-decision trace.
    pub events: Vec<Event>,
    /// Events ever pushed into the ring (including overwritten ones).
    pub events_pushed: u64,
    /// Events lost to ring wrap-around (pushed minus retained); nonzero
    /// means `events` is a truncated tail of the run.
    pub events_dropped: u64,
    /// Samples dropped for lack of attribution.
    pub dropped_samples: u64,
    /// Sections the livelock watchdog hard-forced onto the lock path.
    pub watchdog_forced: u64,
    /// Speculative attempts that reused a cached per-thread context.
    pub ctx_reused: u64,
    /// Aborts caused by physical context-capacity overflows.
    pub inline_overflows: u64,
}

fn histogram_json(w: &mut JsonWriter, h: &HistogramSnapshot) {
    w.begin_object()
        .field_u64("count", h.count)
        .field_u64("sum_ns", h.sum)
        .field_u64("max_ns", h.max)
        .field_f64("mean_ns", h.mean())
        .field_u64("p50_ns", h.quantile(0.5))
        .field_u64("p99_ns", h.quantile(0.99))
        .key("buckets")
        .begin_array();
    for (floor, count) in h.nonzero() {
        w.begin_object()
            .field_u64("floor_ns", floor)
            .field_u64("count", count)
            .end_object();
    }
    w.end_array().end_object();
}

impl TelemetryReport {
    /// Renders the report as a JSON document with stable key and row
    /// order (sites sorted, histogram buckets ascending, abort causes in
    /// [`ABORT_CAUSE_NAMES`] order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("aliased_sites", self.aliased_sites)
            .field_u64("dropped_samples", self.dropped_samples)
            .field_u64("watchdog_forced", self.watchdog_forced)
            .field_u64("ctx_reused", self.ctx_reused)
            .field_u64("inline_overflows", self.inline_overflows)
            .key("sites")
            .begin_array();
        for s in &self.sites {
            w.begin_object()
                .field_str("site", &format!("0x{:x}", s.site))
                .field_str("lock", &format!("0x{:x}", s.lock))
                .field_u64("starts", s.starts)
                .field_u64("commits", s.commits)
                .field_u64("slow_sections", s.slow_sections)
                .key("aborts")
                .begin_object();
            for (name, &count) in ABORT_CAUSE_NAMES.iter().zip(&s.aborts) {
                w.field_u64(name, count);
            }
            w.end_object().end_object();
        }
        w.end_array().key("fast_latency");
        histogram_json(&mut w, &self.fast_latency);
        w.key("slow_latency");
        histogram_json(&mut w, &self.slow_latency);
        w.field_u64("events_pushed", self.events_pushed)
            .field_u64("events_dropped", self.events_dropped)
            .key("events")
            .begin_array();
        for e in &self.events {
            let (outcome, cause) = match e.outcome {
                EventOutcome::FastCommit => ("fast_commit", None),
                EventOutcome::SlowSection => ("slow_section", None),
                EventOutcome::Abort(c) => ("abort", Some(c)),
            };
            w.begin_object()
                .field_str("site", &format!("0x{:x}", e.site))
                .field_str("lock", &format!("0x{:x}", e.lock))
                .field_bool("predicted_fast", e.predicted_fast)
                .field_str("outcome", outcome);
            if let Some(c) = cause {
                w.field_str(
                    "cause",
                    ABORT_CAUSE_NAMES
                        .get(c as usize)
                        .copied()
                        .unwrap_or("unknown"),
                );
            }
            w.end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Renders an aligned human-readable table (the `perf report` analog:
    /// hottest sites first by total sections).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:<18} {:>10} {:>10} {:>8} {:>8}  abort breakdown",
            "site", "lock", "starts", "commits", "slow", "aborts"
        );
        let mut rows: Vec<&SiteRecord> = self.sites.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.commits + r.slow_sections));
        for r in rows {
            let mut causes = String::new();
            for (name, &count) in ABORT_CAUSE_NAMES.iter().zip(&r.aborts) {
                if count > 0 {
                    let _ = write!(causes, "{name}={count} ");
                }
            }
            let _ = writeln!(
                out,
                "{:<18} {:<18} {:>10} {:>10} {:>8} {:>8}  {}",
                format!("0x{:x}", r.site),
                format!("0x{:x}", r.lock),
                r.starts,
                r.commits,
                r.slow_sections,
                r.total_aborts(),
                causes.trim_end()
            );
        }
        for (label, h) in [
            ("fast latency", &self.fast_latency),
            ("slow latency", &self.slow_latency),
        ] {
            let _ = writeln!(
                out,
                "{label:<14} n={} mean={:.0}ns p50={}ns p99={}ns max={}ns",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            );
        }
        if self.aliased_sites > 0 {
            let _ = writeln!(
                out,
                "note: {} updates hit aliased registry cells",
                self.aliased_sites
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn sample() -> TelemetryReport {
        let mut aborts = [0u64; crate::ABORT_CAUSES];
        aborts[2] = 4; // conflict
        TelemetryReport {
            sites: vec![SiteRecord {
                site: 0x1000,
                lock: 0x2000,
                starts: 10,
                commits: 6,
                slow_sections: 4,
                aborts,
            }],
            aliased_sites: 0,
            fast_latency: HistogramSnapshot::default(),
            slow_latency: HistogramSnapshot::default(),
            events: vec![Event {
                site: 0x1000,
                lock: 0x2000,
                predicted_fast: true,
                outcome: EventOutcome::Abort(2),
            }],
            events_pushed: 5,
            events_dropped: 4,
            dropped_samples: 0,
            watchdog_forced: 2,
            ctx_reused: 8,
            inline_overflows: 1,
        }
    }

    #[test]
    fn json_is_stable_and_parseable() {
        let report = sample();
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "byte-stable for identical reports");
        let v = JsonValue::parse(&a).expect("self-emitted JSON parses");
        assert_eq!(v.get("watchdog_forced").unwrap(), &JsonValue::Number(2.0));
        assert_eq!(v.get("ctx_reused").unwrap(), &JsonValue::Number(8.0));
        assert_eq!(v.get("inline_overflows").unwrap(), &JsonValue::Number(1.0));
        assert_eq!(v.get("events_pushed").unwrap(), &JsonValue::Number(5.0));
        assert_eq!(v.get("events_dropped").unwrap(), &JsonValue::Number(4.0));
        let sites = v.get("sites").unwrap().as_array().unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(
            sites[0].get("aborts").unwrap().get("conflict").unwrap(),
            &JsonValue::Number(4.0)
        );
        assert_eq!(
            v.get("events").unwrap().as_array().unwrap()[0]
                .get("cause")
                .unwrap()
                .as_str()
                .unwrap(),
            "conflict"
        );
    }

    #[test]
    fn text_report_mentions_causes() {
        let text = sample().to_text();
        assert!(text.contains("conflict=4"), "{text}");
        assert!(text.contains("0x1000"));
    }
}
