//! Deterministic in-tree PRNGs.
//!
//! The workspace builds fully offline, so `rand` is not available; every
//! randomized workload, benchmark and ported property suite draws from
//! [`SplitMix64`] instead. SplitMix64 passes BigCrush, is seedable from a
//! single `u64`, and its whole state is one word — exactly what seeded
//! reproducibility wants.

/// Sebastiano Vigna's SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); the modulo bias is below
    /// 2⁻³² for every bound these tests use.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A uniformly random `bool`.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the canonical C code.
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, r.next_u64(), "stream advances");
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.1));
        }
    }

    #[test]
    fn below_covers_small_domains() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
