//! Per-request flight recorder: bounded, lock-free span rings.
//!
//! The aggregate layers (site registry, histograms, [`crate::EventRing`])
//! answer "how often"; this module answers "what happened to *this*
//! request". A sampled request gets a nonzero trace id at frame decode;
//! every layer it passes through — admission, engine section, each HTM
//! attempt, perceptron decisions, the store op, the response write —
//! appends one fixed-size [`Span`] tagged with that id. Records go into a
//! sharded ring of atomics (same discipline as the event ring and PR 4's
//! `TxContext`: no allocation, no locks on the hot path) and are drained
//! either live over the wire (`TRACE` verb) or as a Chrome trace-event
//! dump at shutdown.
//!
//! Timestamps are monotonic nanoseconds from a process-wide epoch taken on
//! first use ([`now_ns`]). The TL2 version clock (`htm::clock`) is a
//! *logical* counter — useless for durations — so HTM attempt spans carry
//! its snapshot in the `b` payload instead, tying each attempt to the
//! ordering the commit protocol actually saw.
//!
//! Sampling is deterministic and seeded: a per-thread countdown fires on
//! the first request a thread sees and every N-th after (no shared
//! counter, no division on the per-request path), and the decision is made
//! once per request so a sampled request traces its entire attempt chain.
//! A process-global [`tracing_active`] gate — one relaxed load — keeps the
//! disabled path out of every hot loop.

use crate::{JsonWriter, ABORT_CAUSE_NAMES};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Shards (threads hash onto these).
const SHARDS: usize = 16;
/// Slots per shard ring. 16 × 512 spans ≈ 8K retained; at ~90 bytes of
/// JSON per span a full drain stays well under the 1 MiB wire frame cap.
const SLOTS: usize = 512;

/// Where in the request path a span was recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Wire frame decode (server ingest).
    WireDecode = 0,
    /// Time between socket ingest and admission (queue wait).
    QueueWait = 1,
    /// Request rejected by overload protection; `a` = shed-cause index.
    Shed = 2,
    /// Engine critical-section entry to exit (whole elision envelope).
    Section = 3,
    /// One HTM attempt; `a` = outcome (0 = commit, 1+cause = abort per
    /// [`ABORT_CAUSE_NAMES`]), `b` = TL2 version-clock snapshot.
    HtmAttempt = 4,
    /// Perceptron activity; `a` = action index per
    /// [`PERCEPTRON_ACTION_NAMES`].
    Perceptron = 5,
    /// Store verb execution; `a` = verb opcode.
    StoreOp = 6,
    /// Response encode onto the outbound buffer.
    ResponseWrite = 7,
    /// Wait for the WAL group-commit barrier to cover a staged write;
    /// `a` = the awaited per-shard ticket.
    WalCommit = 8,
    /// Replica apply of one replication batch; `a` = shard,
    /// `b` = the batch's `prev_version` (so a NAKed gap is visible as a
    /// mismatch against the neighboring spans).
    ReplApply = 9,
    /// One shard-group executed through a single elided section;
    /// `a` = requests in the group, `b` = shard. Parents the group's
    /// per-request [`SpanKind::StoreOp`] spans.
    BatchExec = 10,
}

/// Names indexed by `SpanKind as u8`.
pub const SPAN_KIND_NAMES: [&str; 11] = [
    "wire_decode",
    "queue_wait",
    "shed",
    "section",
    "htm_attempt",
    "perceptron",
    "store_op",
    "response_write",
    "wal_commit",
    "repl_apply",
    "batch_exec",
];

/// Perceptron span `a`-payload values.
pub const PERCEPTRON_PREDICT_HTM: u64 = 0;
/// Predictor chose the slow path.
pub const PERCEPTRON_PREDICT_SLOW: u64 = 1;
/// Weights rewarded after a fast commit.
pub const PERCEPTRON_REWARD: u64 = 2;
/// Weights penalized after a slow section.
pub const PERCEPTRON_PENALIZE: u64 = 3;

/// Names indexed by the perceptron `a`-payload.
pub const PERCEPTRON_ACTION_NAMES: [&str; 4] =
    ["predict_htm", "predict_slow", "reward", "penalize"];

impl SpanKind {
    fn from_u8(v: u8) -> SpanKind {
        match v {
            1 => SpanKind::QueueWait,
            2 => SpanKind::Shed,
            3 => SpanKind::Section,
            4 => SpanKind::HtmAttempt,
            5 => SpanKind::Perceptron,
            6 => SpanKind::StoreOp,
            7 => SpanKind::ResponseWrite,
            8 => SpanKind::WalCommit,
            9 => SpanKind::ReplApply,
            10 => SpanKind::BatchExec,
            _ => SpanKind::WireDecode,
        }
    }

    /// The wire/JSON name of this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        SPAN_KIND_NAMES[self as usize]
    }
}

/// One fixed-size flight-recorder record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The request's trace id (nonzero for sampled requests).
    pub trace_id: u64,
    /// What this span measured.
    pub kind: SpanKind,
    /// Start, monotonic nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload (outcome / cause / action / opcode).
    pub a: u64,
    /// Kind-specific payload (TL2 clock snapshot for HTM attempts).
    pub b: u64,
}

impl Span {
    /// Decoded payload name, for kinds whose `a` payload is an
    /// enumeration: the HTM attempt outcome or the perceptron action.
    #[must_use]
    pub fn detail(&self) -> Option<&'static str> {
        match self.kind {
            SpanKind::HtmAttempt => Some(if self.a == 0 {
                "commit"
            } else {
                ABORT_CAUSE_NAMES
                    .get((self.a - 1) as usize)
                    .copied()
                    .unwrap_or("unknown")
            }),
            SpanKind::Perceptron => Some(
                PERCEPTRON_ACTION_NAMES
                    .get(self.a as usize)
                    .copied()
                    .unwrap_or("unknown"),
            ),
            _ => None,
        }
    }
}

const VALID_BIT: u64 = 1 << 8;

#[derive(Debug)]
struct Slot {
    trace_id: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    /// Bits 0..8: kind; bit 8: valid.
    meta: AtomicU64,
}

#[derive(Debug)]
struct Shard {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

/// Count of recorders with sampling enabled, process-wide. One relaxed
/// load of this gates every per-operation tracing check, so a process
/// with tracing off pays a single predictable branch.
static ACTIVE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The trace id of the request this thread is currently serving
    /// (0 = unsampled / no request). Valid because the server handles
    /// each request fully synchronously on one worker thread.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Per-thread sampling countdown: (recorder tag, requests until the
    /// next sample). Tagged so a thread that moves between recorders
    /// (tests, multiple runtimes) restarts its countdown.
    static SAMPLER: Cell<(usize, u64)> = const { Cell::new((0, 0)) };
}

/// True when any recorder in the process has sampling enabled.
#[inline]
#[must_use]
pub fn tracing_active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The calling thread's current trace id; 0 when tracing is globally off
/// or the current request is unsampled.
#[inline]
#[must_use]
pub fn current() -> u64 {
    if !tracing_active() {
        return 0;
    }
    CURRENT.with(Cell::get)
}

/// Marks the calling thread as serving the given trace id.
#[inline]
pub fn set_current(id: u64) {
    CURRENT.with(|c| c.set(id));
}

/// Clears the calling thread's trace id (request finished).
#[inline]
pub fn clear_current() {
    CURRENT.with(|c| c.set(0));
}

/// Monotonic nanoseconds since the process trace epoch (first call).
#[inline]
#[must_use]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// SplitMix64 finalizer — enough mixing to make trace ids from a seed and
/// a sequence number look unrelated.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The flight recorder: a sharded bounded span ring plus the sampling
/// configuration. One lives on every `GoccRuntime`, always present;
/// sampling is off (`sample_n == 0`) until [`TraceRecorder::configure`].
#[derive(Debug)]
pub struct TraceRecorder {
    /// 0 = disabled; N = sample one request in N per thread.
    sample_n: AtomicU64,
    seed: AtomicU64,
    /// Sampled-request sequence (feeds trace-id generation only).
    seq: AtomicU64,
    /// Spans overwritten before any drain observed them.
    overwritten: AtomicU64,
    /// Spans handed out by [`TraceRecorder::take`].
    taken: AtomicU64,
    shards: Box<[Shard]>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        if self.sample_n.load(Ordering::Relaxed) != 0 {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl TraceRecorder {
    /// Creates a disabled recorder (16 shards × 512 slots).
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder {
            sample_n: AtomicU64::new(0),
            seed: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            taken: AtomicU64::new(0),
            shards: (0..SHARDS)
                .map(|_| Shard {
                    cursor: AtomicU64::new(0),
                    slots: (0..SLOTS)
                        .map(|_| Slot {
                            trace_id: AtomicU64::new(0),
                            start_ns: AtomicU64::new(0),
                            dur_ns: AtomicU64::new(0),
                            a: AtomicU64::new(0),
                            b: AtomicU64::new(0),
                            meta: AtomicU64::new(0),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Sets the sampling rate (0 disables) and the trace-id seed, and
    /// keeps the process-wide [`tracing_active`] gate in sync.
    pub fn configure(&self, sample_n: u64, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
        let was = self.sample_n.swap(sample_n, Ordering::Relaxed);
        if was == 0 && sample_n != 0 {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        } else if was != 0 && sample_n == 0 {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The configured sampling rate (0 = disabled).
    #[must_use]
    pub fn sample_n(&self) -> u64 {
        self.sample_n.load(Ordering::Relaxed)
    }

    /// Makes the once-per-request sampling decision. Returns the new
    /// trace id (nonzero) if this request is sampled, else 0. The first
    /// request each thread sees is sampled, then every N-th after — a
    /// countdown decrement, no shared counter, no division.
    #[inline]
    pub fn begin_request(&self) -> u64 {
        let n = self.sample_n.load(Ordering::Relaxed);
        if n == 0 {
            return 0;
        }
        let tag = std::ptr::from_ref(self) as usize;
        SAMPLER.with(|s| {
            let (seen, left) = s.get();
            let left = if seen == tag { left } else { 1 };
            if left <= 1 {
                s.set((tag, n));
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                let id = mix64(self.seed.load(Ordering::Relaxed) ^ seq);
                if id == 0 {
                    1
                } else {
                    id
                }
            } else {
                s.set((tag, left - 1));
                0
            }
        })
    }

    fn shard(&self) -> &Shard {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        }
        &self.shards[SHARD.with(|s| *s)]
    }

    /// Appends a span to the calling thread's shard, overwriting the
    /// oldest once full. Relaxed atomics in claim order — a racing drain
    /// can observe a torn span, acceptable for a trace (counters, not the
    /// ring, are the source of exact numbers).
    pub fn push(&self, span: Span) {
        let shard = self.shard();
        let idx = shard.cursor.fetch_add(1, Ordering::Relaxed) as usize % SLOTS;
        let slot = &shard.slots[idx];
        if slot.meta.load(Ordering::Relaxed) & VALID_BIT != 0 {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        slot.trace_id.store(span.trace_id, Ordering::Relaxed);
        slot.start_ns.store(span.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(span.dur_ns, Ordering::Relaxed);
        slot.a.store(span.a, Ordering::Relaxed);
        slot.b.store(span.b, Ordering::Relaxed);
        slot.meta
            .store(u64::from(span.kind as u8) | VALID_BIT, Ordering::Relaxed);
    }

    /// Total spans ever pushed (including overwritten ones).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cursor.load(Ordering::Relaxed))
            .sum()
    }

    /// Spans overwritten before any drain observed them.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Spans handed out by [`TraceRecorder::take`] so far.
    #[must_use]
    pub fn taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// Drains up to `max` completed spans, clearing them from the ring
    /// (the live `TRACE` verb — a second call returns the next batch).
    /// Returns the spans plus how many valid spans were left behind
    /// because of the cap.
    #[must_use]
    pub fn take(&self, max: usize) -> (Vec<Span>, u64) {
        let mut out = Vec::new();
        let mut left_behind = 0u64;
        for shard in self.shards.iter() {
            let cursor = shard.cursor.load(Ordering::Relaxed) as usize;
            let (start, len) = if cursor > SLOTS {
                (cursor % SLOTS, SLOTS)
            } else {
                (0, cursor.min(SLOTS))
            };
            for k in 0..len {
                let slot = &shard.slots[(start + k) % SLOTS];
                let meta = slot.meta.load(Ordering::Relaxed);
                if meta & VALID_BIT == 0 {
                    continue;
                }
                if out.len() >= max {
                    left_behind += 1;
                    continue;
                }
                slot.meta.store(0, Ordering::Relaxed);
                out.push(Span {
                    trace_id: slot.trace_id.load(Ordering::Relaxed),
                    kind: SpanKind::from_u8((meta & 0xFF) as u8),
                    start_ns: slot.start_ns.load(Ordering::Relaxed),
                    dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                });
            }
        }
        self.taken.fetch_add(out.len() as u64, Ordering::Relaxed);
        (out, left_behind)
    }

    /// Copies out every retained span without clearing (shutdown dumps).
    #[must_use]
    pub fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let cursor = shard.cursor.load(Ordering::Relaxed) as usize;
            let (start, len) = if cursor > SLOTS {
                (cursor % SLOTS, SLOTS)
            } else {
                (0, cursor.min(SLOTS))
            };
            for k in 0..len {
                let slot = &shard.slots[(start + k) % SLOTS];
                let meta = slot.meta.load(Ordering::Relaxed);
                if meta & VALID_BIT == 0 {
                    continue;
                }
                out.push(Span {
                    trace_id: slot.trace_id.load(Ordering::Relaxed),
                    kind: SpanKind::from_u8((meta & 0xFF) as u8),
                    start_ns: slot.start_ns.load(Ordering::Relaxed),
                    dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                });
            }
        }
        out
    }
}

fn write_span(w: &mut JsonWriter, s: &Span) {
    w.begin_object()
        .field_u64("trace_id", s.trace_id)
        .field_str("kind", s.kind.name())
        .field_u64("start_ns", s.start_ns)
        .field_u64("dur_ns", s.dur_ns);
    if let Some(detail) = s.detail() {
        let key = match s.kind {
            SpanKind::HtmAttempt => "outcome",
            _ => "action",
        };
        w.field_str(key, detail);
    }
    w.field_u64("a", s.a).field_u64("b", s.b).end_object();
}

/// Renders a drained batch as the `TRACE` verb's response document.
#[must_use]
pub fn spans_json(spans: &[Span], pushed: u64, dropped: u64, truncated: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("spans").begin_array();
    for s in spans {
        write_span(&mut w, s);
    }
    w.end_array()
        .field_u64("count", spans.len() as u64)
        .field_u64("pushed", pushed)
        .field_u64("dropped", dropped)
        .field_u64("truncated", truncated)
        .end_object();
    w.finish()
}

/// Renders spans as a Chrome trace-event / Perfetto-compatible document
/// (`chrome://tracing` "JSON object format": complete `"X"` events with
/// microsecond timestamps; each trace id maps to a synthetic tid so one
/// request reads as one track).
#[must_use]
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("traceEvents").begin_array();
    for s in spans {
        w.begin_object()
            .field_str("name", s.kind.name())
            .field_str("cat", "gocc")
            .field_str("ph", "X")
            .field_f64("ts", s.start_ns as f64 / 1_000.0)
            .field_f64("dur", s.dur_ns as f64 / 1_000.0)
            .field_u64("pid", 1)
            .field_u64("tid", s.trace_id % 65_536)
            .key("args")
            .begin_object()
            .field_u64("trace_id", s.trace_id);
        if let Some(detail) = s.detail() {
            w.field_str("detail", detail);
        }
        w.field_u64("a", s.a)
            .field_u64("b", s.b)
            .end_object()
            .end_object();
    }
    w.end_array()
        .field_str("displayTimeUnit", "ns")
        .end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonValue;

    fn span(id: u64, kind: SpanKind, a: u64) -> Span {
        Span {
            trace_id: id,
            kind,
            start_ns: 100,
            dur_ns: 50,
            a,
            b: 7,
        }
    }

    #[test]
    fn sampling_is_deterministic_and_first_request_fires() {
        let rec = TraceRecorder::new();
        rec.configure(4, 0xDEAD_BEEF);
        let ids: Vec<u64> = (0..9).map(|_| rec.begin_request()).collect();
        // First request sampled, then every 4th.
        assert_ne!(ids[0], 0);
        assert_eq!(&ids[1..4], &[0, 0, 0]);
        assert_ne!(ids[4], 0);
        assert_eq!(&ids[5..8], &[0, 0, 0]);
        assert_ne!(ids[8], 0);
        assert_ne!(ids[0], ids[4], "distinct requests get distinct ids");

        // Same seed, fresh recorder, fresh thread: same id sequence.
        let replay = std::thread::spawn(|| {
            let rec = TraceRecorder::new();
            rec.configure(4, 0xDEAD_BEEF);
            (0..9).map(|_| rec.begin_request()).collect::<Vec<u64>>()
        })
        .join()
        .unwrap();
        assert_eq!(ids, replay);
        rec.configure(0, 0);
    }

    #[test]
    fn disabled_recorder_never_samples() {
        let rec = TraceRecorder::new();
        for _ in 0..100 {
            assert_eq!(rec.begin_request(), 0);
        }
    }

    #[test]
    fn configure_toggles_the_global_gate() {
        let rec = TraceRecorder::new();
        let before = ACTIVE.load(Ordering::Relaxed);
        rec.configure(8, 1);
        assert_eq!(ACTIVE.load(Ordering::Relaxed), before + 1);
        rec.configure(16, 1); // still enabled: no double count
        assert_eq!(ACTIVE.load(Ordering::Relaxed), before + 1);
        rec.configure(0, 0);
        assert_eq!(ACTIVE.load(Ordering::Relaxed), before);
        rec.configure(8, 1);
        drop(rec); // Drop releases the gate
        assert_eq!(ACTIVE.load(Ordering::Relaxed), before);
    }

    #[test]
    fn current_id_follows_set_and_clear() {
        let rec = TraceRecorder::new();
        rec.configure(1, 42);
        set_current(99);
        assert_eq!(current(), 99);
        clear_current();
        assert_eq!(current(), 0);
        rec.configure(0, 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_overwrites() {
        let rec = TraceRecorder::new();
        for i in 0..(SLOTS as u64 * 3) {
            rec.push(span(i + 1, SpanKind::Section, 0));
        }
        assert_eq!(rec.pushed(), SLOTS as u64 * 3);
        // One thread uses one shard: 2×SLOTS overwrote live spans.
        assert_eq!(rec.dropped(), SLOTS as u64 * 2);
        let spans = rec.drain();
        assert_eq!(spans.len(), SLOTS);
        assert!(spans.iter().all(|s| s.trace_id > SLOTS as u64));
    }

    #[test]
    fn take_clears_and_honors_the_cap() {
        let rec = TraceRecorder::new();
        for i in 0..10u64 {
            rec.push(span(i + 1, SpanKind::HtmAttempt, 0));
        }
        let (first, left) = rec.take(6);
        assert_eq!(first.len(), 6);
        assert_eq!(left, 4);
        let (second, left) = rec.take(100);
        assert_eq!(second.len(), 4);
        assert_eq!(left, 0);
        assert_eq!(rec.taken(), 10);
        let (third, _) = rec.take(100);
        assert!(third.is_empty(), "take clears what it returns");
    }

    #[test]
    fn span_json_names_abort_causes_and_round_trips() {
        let spans = [
            span(5, SpanKind::HtmAttempt, 0),
            span(5, SpanKind::HtmAttempt, 1 + 2), // cause index 2 = conflict
            span(5, SpanKind::Perceptron, PERCEPTRON_PREDICT_HTM),
            span(5, SpanKind::WireDecode, 0),
        ];
        let text = spans_json(&spans, 12, 3, 1);
        let v = JsonValue::parse(&text).expect("trace JSON parses");
        assert_eq!(v.get("pushed").unwrap().as_f64(), Some(12.0));
        assert_eq!(v.get("dropped").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("truncated").unwrap().as_f64(), Some(1.0));
        let arr = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].get("outcome").unwrap().as_str(), Some("commit"));
        assert_eq!(
            arr[1].get("outcome").unwrap().as_str(),
            Some(ABORT_CAUSE_NAMES[2])
        );
        assert_eq!(arr[2].get("action").unwrap().as_str(), Some("predict_htm"));
        assert_eq!(arr[3].get("kind").unwrap().as_str(), Some("wire_decode"));
    }

    #[test]
    fn chrome_dump_loads_structurally() {
        let spans = [
            span(9, SpanKind::Section, 0),
            span(9, SpanKind::HtmAttempt, 2),
        ];
        let text = chrome_trace_json(&spans);
        let v = JsonValue::parse(&text).expect("chrome trace parses");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("args").unwrap().get("trace_id").is_some());
        }
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("detail")
                .unwrap()
                .as_str(),
            Some(ABORT_CAUSE_NAMES[1])
        );
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
