//! A non-transactional append-only blob arena.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Handle to a blob stored in an [`Arena`].
///
/// `Copy` and word-sized, so it can live inside transactional cells. The
/// all-ones value is reserved as [`BlobHandle::NULL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlobHandle(u64);

impl BlobHandle {
    /// The absent-blob sentinel.
    pub const NULL: BlobHandle = BlobHandle(u64::MAX);

    /// Whether this handle refers to a blob.
    #[must_use]
    pub fn is_null(self) -> bool {
        self == BlobHandle::NULL
    }

    /// Raw representation for storage in a `u64` transactional cell.
    #[must_use]
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`BlobHandle::to_raw`].
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        BlobHandle(raw)
    }
}

/// An append-only store for variable-length payloads.
///
/// HTM-friendly data structures keep bulky payloads out of transactional
/// working sets: fastcache, for example, appends values to chunked byte
/// buffers and indexes them by offset. `Arena` models that discipline —
/// blobs are immutable once stored, publication happens-before handle
/// visibility (any mechanism that transports the handle across threads
/// already synchronizes, be it a transactional commit or a mutex), and
/// reads are lock-free.
///
/// Capacity is unbounded; chunks grow geometrically. A real cache would
/// recycle chunks — the workloads in this workspace reset whole arenas
/// between benchmark iterations instead, which keeps the structure
/// honest without modeling fastcache's ring-buffer eviction.
#[derive(Debug, Default)]
pub struct Arena {
    chunks: Mutex<Vec<Box<[u8]>>>,
    bytes: AtomicU64,
}

impl Arena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Arena::default()
    }

    /// Stores `data`, returning its handle.
    pub fn store(&self, data: &[u8]) -> BlobHandle {
        let mut chunks = self.chunks.lock().expect("arena poisoned");
        let idx = chunks.len() as u64;
        chunks.push(data.to_vec().into_boxed_slice());
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        BlobHandle(idx)
    }

    /// Reads the blob behind `handle` into a fresh vector.
    ///
    /// Returns `None` for [`BlobHandle::NULL`] or unknown handles.
    #[must_use]
    pub fn load(&self, handle: BlobHandle) -> Option<Vec<u8>> {
        if handle.is_null() {
            return None;
        }
        let chunks = self.chunks.lock().expect("arena poisoned");
        chunks.get(handle.0 as usize).map(|b| b.to_vec())
    }

    /// Runs `f` over the blob without copying it out.
    pub fn with<R>(&self, handle: BlobHandle, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        if handle.is_null() {
            return None;
        }
        let chunks = self.chunks.lock().expect("arena poisoned");
        chunks.get(handle.0 as usize).map(|b| f(b))
    }

    /// Total payload bytes stored.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of blobs stored.
    #[must_use]
    pub fn blobs(&self) -> usize {
        self.chunks.lock().expect("arena poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let arena = Arena::new();
        let h1 = arena.store(b"hello");
        let h2 = arena.store(b"world!");
        assert_eq!(arena.load(h1).as_deref(), Some(&b"hello"[..]));
        assert_eq!(arena.load(h2).as_deref(), Some(&b"world!"[..]));
        assert_eq!(arena.bytes(), 11);
        assert_eq!(arena.blobs(), 2);
    }

    #[test]
    fn null_handle_loads_nothing() {
        let arena = Arena::new();
        assert!(arena.load(BlobHandle::NULL).is_none());
        assert!(arena.with(BlobHandle::NULL, |_| ()).is_none());
    }

    #[test]
    fn raw_roundtrip_through_cell() {
        let arena = Arena::new();
        let h = arena.store(b"payload");
        let raw = h.to_raw();
        let back = BlobHandle::from_raw(raw);
        assert_eq!(arena.load(back).as_deref(), Some(&b"payload"[..]));
    }

    #[test]
    fn concurrent_stores_get_distinct_handles() {
        let arena = Arena::new();
        let handles: Vec<BlobHandle> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..4)
                .map(|t: u8| s.spawn(move || (0..100).map(|_| [t]).collect::<Vec<_>>()))
                .collect();
            hs.into_iter()
                .flat_map(|h| h.join().unwrap())
                .map(|payload| arena.store(&payload))
                .collect()
        });
        let mut raw: Vec<u64> = handles.iter().map(|h| h.to_raw()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 400);
    }
}
