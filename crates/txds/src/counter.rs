//! A transactional counter cell.

use gocc_htm::{Tx, TxResult, TxVar};

/// A `u64` counter updated inside critical sections.
///
/// The building block of the Tally-style metric workloads: counters,
/// histogram buckets and gauge timestamps are all counter cells.
#[derive(Debug, Default)]
pub struct TxCounter {
    value: TxVar<u64>,
}

impl TxCounter {
    /// Creates a counter at `initial`.
    #[must_use]
    pub fn new(initial: u64) -> Self {
        TxCounter {
            value: TxVar::new(initial),
        }
    }

    /// Current value.
    pub fn get<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<u64> {
        tx.read(&self.value)
    }

    /// Adds `delta` (wrapping), returning the new value.
    pub fn add<'a>(&'a self, tx: &mut Tx<'a>, delta: u64) -> TxResult<u64> {
        let v = tx.read(&self.value)?.wrapping_add(delta);
        tx.write(&self.value, v)?;
        Ok(v)
    }

    /// Stores `value`.
    pub fn set<'a>(&'a self, tx: &mut Tx<'a>, value: u64) -> TxResult<()> {
        tx.write(&self.value, value)
    }

    /// Resets to zero and returns the previous value (metric snapshotting).
    pub fn take<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<u64> {
        let v = tx.read(&self.value)?;
        tx.write(&self.value, 0)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::{HtmConfig, HtmRuntime};

    #[test]
    fn add_set_take() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let c = TxCounter::new(5);
        let mut tx = Tx::fast(&rt);
        assert_eq!(c.get(&mut tx).unwrap(), 5);
        assert_eq!(c.add(&mut tx, 3).unwrap(), 8);
        c.set(&mut tx, 100).unwrap();
        assert_eq!(c.take(&mut tx).unwrap(), 100);
        assert_eq!(c.get(&mut tx).unwrap(), 0);
        tx.commit().unwrap();
    }

    #[test]
    fn add_wraps() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let c = TxCounter::new(u64::MAX);
        let mut tx = Tx::fast(&rt);
        assert_eq!(c.add(&mut tx, 1).unwrap(), 0);
        tx.commit().unwrap();
    }
}
