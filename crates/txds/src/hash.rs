//! Hash helpers shared by the transactional containers.

/// SplitMix64 finalizer: a fast, well-distributed `u64 → u64` mixer used to
/// spread map keys across probe sequences.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over bytes: how workloads derive `u64` keys from string keys,
/// mirroring fastcache's use of a byte-level hash.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a(b"foo"), fnv1a(b"bar"));
    }
}
