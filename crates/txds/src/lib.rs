//! Transactional data structures for GOCC workloads.
//!
//! Hardware transactional memory operates on raw words, so data structures
//! placed under elided locks need no special types. The software HTM in
//! `gocc-htm` versions [`TxVar`](gocc_htm::TxVar) cells instead, so this
//! crate provides the word-oriented building blocks the paper's evaluation
//! subjects (maps, sets, caches, metric registries) are assembled from:
//!
//! * [`TxMap`] — fixed-capacity open-addressing hash map (`u64 → u64`);
//! * [`TxSet`] — a set over [`TxMap`];
//! * [`TxVec`] — fixed-capacity vector with a transactional length;
//! * [`TxCounter`] — a counter cell;
//! * [`Arena`] — a non-transactional append-only blob store whose `Copy`
//!   handles let structured values (strings, byte blobs) live behind
//!   word-sized transactional cells, the same way HTM-friendly code keeps
//!   large payloads out of the write set.
//!
//! Every operation takes the ambient [`Tx`](gocc_htm::Tx) and works
//! identically on the speculative fast path and the mutex-held direct
//! path; callers are responsible for wrapping operations in critical
//! sections (see `gocc-optilock`).

mod arena;
mod counter;
mod hash;
mod map;
mod set;
mod vec;

pub use arena::{Arena, BlobHandle};
pub use counter::TxCounter;
pub use hash::{fnv1a, mix64};
pub use map::{InsertOutcome, TxMap};
pub use set::TxSet;
pub use vec::TxVec;
