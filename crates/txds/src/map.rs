//! A fixed-capacity transactional hash map.

use gocc_htm::{Tx, TxResult, TxVar};

use crate::hash::mix64;

/// Slot states. A `Copy` triple per slot keeps each entry one transactional
/// word group, so a lookup touches O(1) cache lines — the property that
/// makes short critical sections HTM-friendly.
const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMBSTONE: u8 = 2;

#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    state: u8,
    /// Generation stamp: slots from older generations read as empty, which
    /// is how [`TxMap::clear`] empties the table in O(1) — the same
    /// pointer-swap discipline Go code uses (`s.items = map[...]{}`).
    gen: u32,
    key: u64,
    value: u64,
}

/// A fixed-capacity open-addressing hash map from `u64` to `u64`.
///
/// All operations run inside a transaction context and therefore compose
/// into atomic critical sections. The capacity is fixed at construction
/// (a power of two); inserting into a full map returns `Ok(None)`-style
/// failure via [`TxMap::insert`]'s `inserted` flag rather than growing,
/// because a transactional rehash would overflow any realistic HTM write
/// set — real HTM-friendly designs size tables up front for the same
/// reason.
///
/// Structured values belong in an [`Arena`](crate::Arena); store the
/// handle here.
#[derive(Debug)]
pub struct TxMap {
    slots: Box<[TxVar<Slot>]>,
    len: TxVar<u64>,
    /// Current generation (wraps at 2^32; a table would need four billion
    /// clears between touches of one slot to confuse it).
    gen: TxVar<u64>,
    mask: u64,
}

impl TxMap {
    /// Creates a map with capacity for `capacity` entries (rounded up to a
    /// power of two, minimum 8). Probing degrades near full occupancy, so
    /// size at roughly 2× the expected element count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `2^32` slots.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().max(8);
        assert!(n <= (1 << 32), "TxMap capacity too large");
        TxMap {
            slots: (0..n).map(|_| TxVar::new(Slot::default())).collect(),
            len: TxVar::new(0),
            gen: TxVar::new(0),
            mask: (n - 1) as u64,
        }
    }

    /// Number of slots (the fixed capacity).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of entries.
    pub fn len<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<u64> {
        tx.read(&self.len)
    }

    /// Whether the map is empty.
    pub fn is_empty<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Looks up `key`.
    pub fn get<'a>(&'a self, tx: &mut Tx<'a>, key: u64) -> TxResult<Option<u64>> {
        let gen = tx.read(&self.gen)? as u32;
        let mut idx = mix64(key) & self.mask;
        let mut probed = 0u64;
        loop {
            let slot = tx.read(&self.slots[idx as usize])?;
            if slot.state == EMPTY || slot.gen != gen {
                return Ok(None);
            }
            if slot.state == FULL && slot.key == key {
                return Ok(Some(slot.value));
            }
            idx = (idx + 1) & self.mask;
            probed += 1;
            if probed > self.mask {
                // The table contains no empty slot and the key is absent.
                return Ok(None);
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains<'a>(&'a self, tx: &mut Tx<'a>, key: u64) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Inserts or updates `key`, returning the previous value. Returns
    /// `Err`-free `Ok(None)` for fresh inserts; if the table is full the
    /// insert is a no-op and `inserted` reports `false` via the returned
    /// [`InsertOutcome`].
    pub fn insert<'a>(&'a self, tx: &mut Tx<'a>, key: u64, value: u64) -> TxResult<InsertOutcome> {
        let gen = tx.read(&self.gen)? as u32;
        let mut idx = mix64(key) & self.mask;
        let mut first_tombstone: Option<u64> = None;
        let mut probed = 0u64;
        loop {
            let var = &self.slots[idx as usize];
            let slot = tx.read(var)?;
            let stale = slot.state != EMPTY && slot.gen != gen;
            if slot.state == FULL && !stale && slot.key == key {
                tx.write(
                    var,
                    Slot {
                        state: FULL,
                        gen,
                        key,
                        value,
                    },
                )?;
                return Ok(InsertOutcome {
                    inserted: true,
                    previous: Some(slot.value),
                });
            }
            if slot.state == EMPTY || stale {
                let target = first_tombstone.unwrap_or(idx);
                tx.write(
                    &self.slots[target as usize],
                    Slot {
                        state: FULL,
                        gen,
                        key,
                        value,
                    },
                )?;
                let len = tx.read(&self.len)?;
                tx.write(&self.len, len + 1)?;
                return Ok(InsertOutcome {
                    inserted: true,
                    previous: None,
                });
            }
            if slot.state == TOMBSTONE && first_tombstone.is_none() {
                first_tombstone = Some(idx);
            }
            idx = (idx + 1) & self.mask;
            probed += 1;
            if probed > self.mask {
                // Table full of live FULL/TOMBSTONE slots and key absent.
                if let Some(t) = first_tombstone {
                    tx.write(
                        &self.slots[t as usize],
                        Slot {
                            state: FULL,
                            gen,
                            key,
                            value,
                        },
                    )?;
                    let len = tx.read(&self.len)?;
                    tx.write(&self.len, len + 1)?;
                    return Ok(InsertOutcome {
                        inserted: true,
                        previous: None,
                    });
                }
                return Ok(InsertOutcome {
                    inserted: false,
                    previous: None,
                });
            }
        }
    }

    /// Removes `key`, returning the previous value if present.
    pub fn remove<'a>(&'a self, tx: &mut Tx<'a>, key: u64) -> TxResult<Option<u64>> {
        let gen = tx.read(&self.gen)? as u32;
        let mut idx = mix64(key) & self.mask;
        let mut probed = 0u64;
        loop {
            let var = &self.slots[idx as usize];
            let slot = tx.read(var)?;
            if slot.state == EMPTY || slot.gen != gen {
                return Ok(None);
            }
            if slot.state == FULL && slot.key == key {
                tx.write(
                    var,
                    Slot {
                        state: TOMBSTONE,
                        gen,
                        key: 0,
                        value: 0,
                    },
                )?;
                let len = tx.read(&self.len)?;
                tx.write(&self.len, len - 1)?;
                return Ok(Some(slot.value));
            }
            idx = (idx + 1) & self.mask;
            probed += 1;
            if probed > self.mask {
                return Ok(None);
            }
        }
    }

    /// Removes every entry in O(1) by advancing the generation — the
    /// transactional equivalent of Go's `m = map[K]V{}` pointer swap,
    /// which is how go-cache's `Flush` and the set's `Clear` behave. The
    /// critical section stays tiny (two words), so concurrent `Clear`s
    /// conflict *genuinely but cheaply*, matching the paper's Figure 8
    /// description of the benchmark.
    pub fn clear<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<()> {
        let gen = tx.read(&self.gen)?;
        tx.write(&self.gen, gen + 1)?;
        tx.write(&self.len, 0)?;
        Ok(())
    }

    /// Calls `f` for every `(key, value)` pair.
    pub fn for_each<'a>(&'a self, tx: &mut Tx<'a>, mut f: impl FnMut(u64, u64)) -> TxResult<()> {
        let gen = tx.read(&self.gen)? as u32;
        for var in self.slots.iter() {
            let slot = tx.read(var)?;
            if slot.state == FULL && slot.gen == gen {
                f(slot.key, slot.value);
            }
        }
        Ok(())
    }
}

/// Result of a [`TxMap::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the entry was stored (`false` only when the table is full).
    pub inserted: bool,
    /// The value previously stored under the key, if any.
    pub previous: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::{HtmConfig, HtmRuntime};

    fn rt() -> HtmRuntime {
        HtmRuntime::new(HtmConfig::coffee_lake())
    }

    fn commit<'e, R>(rt: &'e HtmRuntime, f: impl FnOnce(&mut Tx<'e>) -> TxResult<R>) -> R {
        let mut tx = Tx::fast(rt);
        let r = f(&mut tx).expect("single-threaded tx must not abort");
        tx.commit().expect("single-threaded commit must succeed");
        r
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let rt = rt();
        let map = TxMap::with_capacity(64);
        commit(&rt, |tx| {
            assert_eq!(map.get(tx, 7)?, None);
            assert!(map.insert(tx, 7, 70)?.inserted);
            assert_eq!(map.get(tx, 7)?, Some(70));
            assert_eq!(map.len(tx)?, 1);
            Ok(())
        });
        commit(&rt, |tx| {
            assert_eq!(map.remove(tx, 7)?, Some(70));
            assert_eq!(map.get(tx, 7)?, None);
            assert_eq!(map.len(tx)?, 0);
            Ok(())
        });
    }

    #[test]
    fn update_returns_previous() {
        let rt = rt();
        let map = TxMap::with_capacity(16);
        commit(&rt, |tx| {
            map.insert(tx, 1, 10)?;
            let out = map.insert(tx, 1, 11)?;
            assert_eq!(out.previous, Some(10));
            assert_eq!(map.len(tx)?, 1, "update must not grow the map");
            Ok(())
        });
    }

    #[test]
    fn tombstones_are_reused() {
        let rt = rt();
        let map = TxMap::with_capacity(8);
        commit(&rt, |tx| {
            for k in 0..6 {
                map.insert(tx, k, k)?;
            }
            map.remove(tx, 3)?;
            let out = map.insert(tx, 100, 100)?;
            assert!(out.inserted);
            assert_eq!(map.get(tx, 100)?, Some(100));
            // All other keys still reachable across the tombstone.
            for k in [0, 1, 2, 4, 5] {
                assert_eq!(map.get(tx, k)?, Some(k));
            }
            Ok(())
        });
    }

    #[test]
    fn full_map_rejects_new_keys() {
        let rt = rt();
        let map = TxMap::with_capacity(8);
        commit(&rt, |tx| {
            for k in 0..8 {
                assert!(map.insert(tx, k, k)?.inserted);
            }
            let out = map.insert(tx, 99, 99)?;
            assert!(!out.inserted, "full table must reject");
            // Existing keys still updatable.
            assert!(map.insert(tx, 3, 33)?.inserted);
            assert_eq!(map.get(tx, 3)?, Some(33));
            Ok(())
        });
    }

    #[test]
    fn clear_empties_map() {
        let rt = rt();
        let map = TxMap::with_capacity(32);
        commit(&rt, |tx| {
            for k in 0..20 {
                map.insert(tx, k, k * 2)?;
            }
            map.clear(tx)?;
            assert_eq!(map.len(tx)?, 0);
            assert_eq!(map.get(tx, 5)?, None);
            map.insert(tx, 5, 50)?;
            assert_eq!(map.get(tx, 5)?, Some(50));
            Ok(())
        });
    }

    #[test]
    fn for_each_visits_all() {
        let rt = rt();
        let map = TxMap::with_capacity(64);
        commit(&rt, |tx| {
            for k in 0..10 {
                map.insert(tx, k, k + 100)?;
            }
            let mut seen = Vec::new();
            map.for_each(tx, |k, v| seen.push((k, v)))?;
            seen.sort_unstable();
            assert_eq!(seen, (0..10).map(|k| (k, k + 100)).collect::<Vec<_>>());
            Ok(())
        });
    }

    #[test]
    fn aborted_insert_rolls_back() {
        let rt = rt();
        let map = TxMap::with_capacity(16);
        let mut tx = Tx::fast(&rt);
        map.insert(&mut tx, 9, 90).unwrap();
        tx.rollback();
        commit(&rt, |tx| {
            assert_eq!(map.get(tx, 9)?, None);
            assert_eq!(map.len(tx)?, 0);
            Ok(())
        });
    }
}
