//! A transactional set over [`TxMap`].

use gocc_htm::{Tx, TxResult};

use crate::map::TxMap;

/// A fixed-capacity transactional set of `u64` items.
///
/// Models the `go-datastructures/set` subject of the paper's Figure 8:
/// `Len`, `Exists`, `Flatten` (with a caller-maintained cache) and `Clear`
/// map directly onto these operations.
#[derive(Debug)]
pub struct TxSet {
    map: TxMap,
}

impl TxSet {
    /// Creates a set holding up to roughly `capacity` items.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TxSet {
            map: TxMap::with_capacity(capacity),
        }
    }

    /// Adds `item`, returning whether it was newly inserted.
    pub fn add<'a>(&'a self, tx: &mut Tx<'a>, item: u64) -> TxResult<bool> {
        let out = self.map.insert(tx, item, 1)?;
        Ok(out.inserted && out.previous.is_none())
    }

    /// Whether `item` is in the set.
    pub fn exists<'a>(&'a self, tx: &mut Tx<'a>, item: u64) -> TxResult<bool> {
        self.map.contains(tx, item)
    }

    /// Removes `item`, returning whether it was present.
    pub fn remove<'a>(&'a self, tx: &mut Tx<'a>, item: u64) -> TxResult<bool> {
        Ok(self.map.remove(tx, item)?.is_some())
    }

    /// Number of items.
    pub fn len<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<u64> {
        self.map.len(tx)
    }

    /// Copies every item into `out` (the set `Flatten` operation).
    pub fn flatten_into<'a>(&'a self, tx: &mut Tx<'a>, out: &mut Vec<u64>) -> TxResult<()> {
        self.map.for_each(tx, |k, _| out.push(k))
    }

    /// Removes all items.
    pub fn clear<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<()> {
        self.map.clear(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::{HtmConfig, HtmRuntime};

    fn commit<'e, R>(rt: &'e HtmRuntime, f: impl FnOnce(&mut Tx<'e>) -> TxResult<R>) -> R {
        let mut tx = Tx::fast(rt);
        let r = f(&mut tx).expect("single-threaded tx must not abort");
        tx.commit().expect("single-threaded commit must succeed");
        r
    }

    #[test]
    fn add_exists_remove() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let set = TxSet::with_capacity(32);
        commit(&rt, |tx| {
            assert!(set.add(tx, 5)?);
            assert!(!set.add(tx, 5)?, "second add is not a new insert");
            assert!(set.exists(tx, 5)?);
            assert_eq!(set.len(tx)?, 1);
            assert!(set.remove(tx, 5)?);
            assert!(!set.exists(tx, 5)?);
            assert!(!set.remove(tx, 5)?);
            Ok(())
        });
    }

    #[test]
    fn flatten_and_clear() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let set = TxSet::with_capacity(128);
        commit(&rt, |tx| {
            for i in 0..50 {
                set.add(tx, i)?;
            }
            let mut items = Vec::new();
            set.flatten_into(tx, &mut items)?;
            items.sort_unstable();
            assert_eq!(items, (0..50).collect::<Vec<_>>());
            set.clear(tx)?;
            assert_eq!(set.len(tx)?, 0);
            Ok(())
        });
    }
}
