//! A fixed-capacity transactional vector.

use gocc_htm::{Tx, TxResult, TxVar};

/// A fixed-capacity vector of `u64` with a transactional length.
///
/// Used for caches and buffers inside critical sections (e.g. the set
/// `Flatten` benchmark's cached flattening, or a metrics registry's
/// pending-update queue).
#[derive(Debug)]
pub struct TxVec {
    slots: Box<[TxVar<u64>]>,
    len: TxVar<u64>,
}

impl TxVec {
    /// Creates an empty vector that can hold `capacity` elements.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TxVec {
            slots: (0..capacity).map(|_| TxVar::new(0)).collect(),
            len: TxVar::new(0),
        }
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current length.
    pub fn len<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<u64> {
        tx.read(&self.len)
    }

    /// Appends `value`; returns `false` (and does nothing) when full.
    pub fn push<'a>(&'a self, tx: &mut Tx<'a>, value: u64) -> TxResult<bool> {
        let len = tx.read(&self.len)?;
        if len as usize >= self.slots.len() {
            return Ok(false);
        }
        tx.write(&self.slots[len as usize], value)?;
        tx.write(&self.len, len + 1)?;
        Ok(true)
    }

    /// Removes and returns the last element.
    pub fn pop<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<Option<u64>> {
        let len = tx.read(&self.len)?;
        if len == 0 {
            return Ok(None);
        }
        let value = tx.read(&self.slots[(len - 1) as usize])?;
        tx.write(&self.len, len - 1)?;
        Ok(Some(value))
    }

    /// Reads index `i`, or `None` when out of bounds.
    pub fn get<'a>(&'a self, tx: &mut Tx<'a>, i: usize) -> TxResult<Option<u64>> {
        let len = tx.read(&self.len)?;
        if i as u64 >= len {
            return Ok(None);
        }
        Ok(Some(tx.read(&self.slots[i])?))
    }

    /// Writes index `i`; returns `false` when out of bounds.
    pub fn set<'a>(&'a self, tx: &mut Tx<'a>, i: usize, value: u64) -> TxResult<bool> {
        let len = tx.read(&self.len)?;
        if i as u64 >= len {
            return Ok(false);
        }
        tx.write(&self.slots[i], value)?;
        Ok(true)
    }

    /// Truncates to length zero.
    pub fn clear<'a>(&'a self, tx: &mut Tx<'a>) -> TxResult<()> {
        tx.write(&self.len, 0)
    }

    /// Copies the contents into `out`.
    pub fn read_into<'a>(&'a self, tx: &mut Tx<'a>, out: &mut Vec<u64>) -> TxResult<()> {
        let len = tx.read(&self.len)?;
        for i in 0..len as usize {
            out.push(tx.read(&self.slots[i])?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::{HtmConfig, HtmRuntime};

    fn commit<'e, R>(rt: &'e HtmRuntime, f: impl FnOnce(&mut Tx<'e>) -> TxResult<R>) -> R {
        let mut tx = Tx::fast(rt);
        let r = f(&mut tx).expect("single-threaded tx must not abort");
        tx.commit().expect("single-threaded commit must succeed");
        r
    }

    #[test]
    fn push_pop_get_set() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let v = TxVec::with_capacity(4);
        commit(&rt, |tx| {
            assert!(v.push(tx, 10)?);
            assert!(v.push(tx, 20)?);
            assert_eq!(v.len(tx)?, 2);
            assert_eq!(v.get(tx, 0)?, Some(10));
            assert_eq!(v.get(tx, 5)?, None);
            assert!(v.set(tx, 1, 21)?);
            assert_eq!(v.pop(tx)?, Some(21));
            assert_eq!(v.pop(tx)?, Some(10));
            assert_eq!(v.pop(tx)?, None);
            Ok(())
        });
    }

    #[test]
    fn push_respects_capacity() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let v = TxVec::with_capacity(2);
        commit(&rt, |tx| {
            assert!(v.push(tx, 1)?);
            assert!(v.push(tx, 2)?);
            assert!(!v.push(tx, 3)?, "full vector must reject");
            assert_eq!(v.len(tx)?, 2);
            Ok(())
        });
    }

    #[test]
    fn clear_and_read_into() {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let v = TxVec::with_capacity(8);
        commit(&rt, |tx| {
            for i in 0..5 {
                v.push(tx, i * i)?;
            }
            let mut out = Vec::new();
            v.read_into(tx, &mut out)?;
            assert_eq!(out, vec![0, 1, 4, 9, 16]);
            v.clear(tx)?;
            assert_eq!(v.len(tx)?, 0);
            Ok(())
        });
    }
}
