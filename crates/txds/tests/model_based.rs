//! Property-based model tests: transactional containers against `std`
//! oracles under random operation sequences, with every operation running
//! in its own committed transaction (so roll-back/commit machinery is on
//! the hot path of the test, not bypassed).

use std::collections::HashMap;

use gocc_htm::{HtmConfig, HtmRuntime, Tx, TxResult};
use gocc_txds::{TxMap, TxVec};
use proptest::prelude::*;

fn commit<'e, R>(rt: &'e HtmRuntime, f: impl FnOnce(&mut Tx<'e>) -> TxResult<R>) -> R {
    let mut tx = Tx::fast(rt);
    let r = f(&mut tx).expect("single-threaded tx must not abort");
    tx.commit().expect("single-threaded commit must succeed");
    r
}

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Len,
    Clear,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    // Keys from a small domain so operations actually collide.
    let key = 0u64..32;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        2 => key.clone().prop_map(MapOp::Remove),
        4 => key.prop_map(MapOp::Get),
        1 => Just(MapOp::Len),
        1 => Just(MapOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn txmap_matches_hashmap_model(ops in proptest::collection::vec(map_op(), 1..200)) {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let map = TxMap::with_capacity(128);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let out = commit(&rt, |tx| map.insert(tx, k, v));
                    prop_assert!(out.inserted);
                    prop_assert_eq!(out.previous, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let got = commit(&rt, |tx| map.remove(tx, k));
                    prop_assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = commit(&rt, |tx| map.get(tx, k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
                MapOp::Len => {
                    let got = commit(&rt, |tx| map.len(tx));
                    prop_assert_eq!(got as usize, model.len());
                }
                MapOp::Clear => {
                    commit(&rt, |tx| map.clear(tx));
                    model.clear();
                }
            }
        }
        // Final full-content check.
        let mut contents = Vec::new();
        commit(&rt, |tx| map.for_each(tx, |k, v| contents.push((k, v))));
        contents.sort_unstable();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(contents, expected);
    }

    #[test]
    fn txvec_matches_vec_model(ops in proptest::collection::vec(any::<Option<u64>>(), 1..200)) {
        // Some(v) = push, None = pop.
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let v = TxVec::with_capacity(64);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(x) => {
                    let pushed = commit(&rt, |tx| v.push(tx, x));
                    if model.len() < 64 {
                        prop_assert!(pushed);
                        model.push(x);
                    } else {
                        prop_assert!(!pushed);
                    }
                }
                None => {
                    let got = commit(&rt, |tx| v.pop(tx));
                    prop_assert_eq!(got, model.pop());
                }
            }
            let len = commit(&rt, |tx| v.len(tx));
            prop_assert_eq!(len as usize, model.len());
        }
        let mut out = Vec::new();
        commit(&rt, |tx| v.read_into(tx, &mut out));
        prop_assert_eq!(out, model);
    }

    #[test]
    fn rolled_back_ops_leave_no_trace(
        committed in proptest::collection::vec((0u64..16, any::<u64>()), 1..50),
        aborted in proptest::collection::vec((0u64..16, any::<u64>()), 1..50),
    ) {
        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let map = TxMap::with_capacity(64);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v) in committed {
            commit(&rt, |tx| map.insert(tx, k, v));
            model.insert(k, v);
        }
        // Perform a batch of inserts/removes and roll the whole thing back.
        let mut tx = Tx::fast(&rt);
        for (k, v) in &aborted {
            map.insert(&mut tx, *k, *v).unwrap();
            map.remove(&mut tx, k.wrapping_add(1) % 16).unwrap();
        }
        tx.rollback();
        // The map must exactly match the pre-abort model.
        let mut contents = Vec::new();
        commit(&rt, |tx| map.for_each(tx, |k, v| contents.push((k, v))));
        contents.sort_unstable();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(contents, expected);
    }
}
