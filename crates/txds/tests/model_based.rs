//! Property-based model tests: transactional containers against `std`
//! oracles under random operation sequences, with every operation running
//! in its own committed transaction (so roll-back/commit machinery is on
//! the hot path of the test, not bypassed). Operation streams come from a
//! seeded [`SplitMix64`] so the suite is deterministic with no external
//! crates.

use std::collections::HashMap;

use gocc_htm::{HtmConfig, HtmRuntime, Tx, TxResult};
use gocc_telemetry::SplitMix64;
use gocc_txds::{TxMap, TxVec};

fn commit<'e, R>(rt: &'e HtmRuntime, f: impl FnOnce(&mut Tx<'e>) -> TxResult<R>) -> R {
    let mut tx = Tx::fast(rt);
    let r = f(&mut tx).expect("single-threaded tx must not abort");
    tx.commit().expect("single-threaded commit must succeed");
    r
}

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Len,
    Clear,
}

fn random_map_op(rng: &mut SplitMix64) -> MapOp {
    // Keys from a small domain so operations actually collide; weights
    // mirror the old proptest strategy (4:2:4:1:1).
    match rng.below(12) {
        0..=3 => MapOp::Insert(rng.below(32), rng.next_u64()),
        4..=5 => MapOp::Remove(rng.below(32)),
        6..=9 => MapOp::Get(rng.below(32)),
        10 => MapOp::Len,
        _ => MapOp::Clear,
    }
}

#[test]
fn txmap_matches_hashmap_model() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x7A9_4A9 + case);
        let ops: Vec<MapOp> = (0..rng.range(1, 200))
            .map(|_| random_map_op(&mut rng))
            .collect();

        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let map = TxMap::with_capacity(128);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let out = commit(&rt, |tx| map.insert(tx, k, v));
                    assert!(out.inserted);
                    assert_eq!(out.previous, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let got = commit(&rt, |tx| map.remove(tx, k));
                    assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = commit(&rt, |tx| map.get(tx, k));
                    assert_eq!(got, model.get(&k).copied());
                }
                MapOp::Len => {
                    let got = commit(&rt, |tx| map.len(tx));
                    assert_eq!(got as usize, model.len());
                }
                MapOp::Clear => {
                    commit(&rt, |tx| map.clear(tx));
                    model.clear();
                }
            }
        }
        // Final full-content check.
        let mut contents = Vec::new();
        commit(&rt, |tx| map.for_each(tx, |k, v| contents.push((k, v))));
        contents.sort_unstable();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(contents, expected, "case {case}");
    }
}

#[test]
fn txvec_matches_vec_model() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x7E_C7E4 + case);
        // Some(v) = push, None = pop.
        let ops: Vec<Option<u64>> = (0..rng.range(1, 200))
            .map(|_| rng.flip().then(|| rng.next_u64()))
            .collect();

        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let v = TxVec::with_capacity(64);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(x) => {
                    let pushed = commit(&rt, |tx| v.push(tx, x));
                    if model.len() < 64 {
                        assert!(pushed);
                        model.push(x);
                    } else {
                        assert!(!pushed);
                    }
                }
                None => {
                    let got = commit(&rt, |tx| v.pop(tx));
                    assert_eq!(got, model.pop());
                }
            }
            let len = commit(&rt, |tx| v.len(tx));
            assert_eq!(len as usize, model.len());
        }
        let mut out = Vec::new();
        commit(&rt, |tx| v.read_into(tx, &mut out));
        assert_eq!(out, model, "case {case}");
    }
}

#[test]
fn rolled_back_ops_leave_no_trace() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x20_11BAC + case);
        let committed: Vec<(u64, u64)> = (0..rng.range(1, 50))
            .map(|_| (rng.below(16), rng.next_u64()))
            .collect();
        let aborted: Vec<(u64, u64)> = (0..rng.range(1, 50))
            .map(|_| (rng.below(16), rng.next_u64()))
            .collect();

        let rt = HtmRuntime::new(HtmConfig::coffee_lake());
        let map = TxMap::with_capacity(64);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v) in committed {
            commit(&rt, |tx| map.insert(tx, k, v));
            model.insert(k, v);
        }
        // Perform a batch of inserts/removes and roll the whole thing back.
        let mut tx = Tx::fast(&rt);
        for (k, v) in &aborted {
            map.insert(&mut tx, *k, *v).unwrap();
            map.remove(&mut tx, k.wrapping_add(1) % 16).unwrap();
        }
        tx.rollback();
        // The map must exactly match the pre-abort model.
        let mut contents = Vec::new();
        commit(&rt, |tx| map.for_each(tx, |k, v| contents.push((k, v))));
        contents.sort_unstable();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(contents, expected, "case {case}");
    }
}
