//! Checkpoint side-file: a consistent per-shard snapshot that bounds
//! replay.
//!
//! A checkpoint is written to `checkpoint.tmp`, fsynced, then renamed to
//! `checkpoint.ckpt` — so the live file is always either absent or a
//! complete, checksummed image (rename is atomic on the same filesystem).
//! Recovery deletes any leftover `.tmp` unread: a crash mid-write costs
//! nothing but the attempt.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic      u64   "GCCCKPT1"
//! shards     u32
//! base_gen   u64   first WAL segment generation NOT covered
//! per shard:
//!   seq      u64   shard mutation counter at snapshot time
//!   now      u64   shard TTL clock at snapshot time
//!   count    u64
//!   entries  count × (key u64, value u64, exp u64)
//! crc32      u32   over everything above
//! ```
//!
//! The snapshot is taken inside one read section per shard (the same
//! shard versioning every verb uses), so each shard's image is a
//! serializable point: every mutation with `seq ≤` the recorded value is
//! included, every later one is excluded and still lives in the WAL tail.

use crate::record::crc32;

/// Checkpoint magic: ASCII "GCCCKPT1".
pub const CKPT_MAGIC: u64 = u64::from_le_bytes(*b"GCCCKPT1");

/// One shard's recovered (or to-be-checkpointed) state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardImage {
    /// Live entries as `(key, value, exp)` post-images.
    pub entries: Vec<(u64, u64, u64)>,
    /// Shard mutation counter; the cache's `seq` resumes from here.
    pub seq: u64,
    /// Shard TTL clock.
    pub now: u64,
}

/// A full consistent snapshot plus the WAL generation it truncates to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Segments with generation `< base_gen` are covered and deletable.
    pub base_gen: u64,
    /// Per-shard images, indexed by shard.
    pub shards: Vec<ShardImage>,
}

impl CheckpointImage {
    /// Total entries across shards.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.shards.iter().map(|s| s.entries.len() as u64).sum()
    }
}

/// Serializes `image` into `out` (cleared first).
pub fn encode_checkpoint(image: &CheckpointImage, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    out.extend_from_slice(&(image.shards.len() as u32).to_le_bytes());
    out.extend_from_slice(&image.base_gen.to_le_bytes());
    for shard in &image.shards {
        out.extend_from_slice(&shard.seq.to_le_bytes());
        out.extend_from_slice(&shard.now.to_le_bytes());
        out.extend_from_slice(&(shard.entries.len() as u64).to_le_bytes());
        for &(k, v, exp) in &shard.entries {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&exp.to_le_bytes());
        }
    }
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Bounds-checked little-endian reader (panic-free on any input).
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Deserializes a checkpoint, verifying magic and CRC.
///
/// Any corruption — truncation, bit rot, wrong magic — returns `Err`
/// with a human-readable reason. Because the live file only ever appears
/// via atomic rename, a decode failure here means real damage, not a
/// crash artifact; recovery refuses to guess and surfaces it.
pub fn decode_checkpoint(buf: &[u8]) -> Result<CheckpointImage, String> {
    if buf.len() < 4 {
        return Err("checkpoint shorter than its checksum".into());
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err("checkpoint checksum mismatch".into());
    }
    let mut c = Cur { buf: body, pos: 0 };
    if c.u64() != Some(CKPT_MAGIC) {
        return Err("bad checkpoint magic".into());
    }
    let shards = c.u32().ok_or("truncated shard count")? as usize;
    if shards > 1 << 20 {
        return Err("implausible shard count".into());
    }
    let base_gen = c.u64().ok_or("truncated base_gen")?;
    let mut image = CheckpointImage {
        base_gen,
        shards: Vec::with_capacity(shards),
    };
    for s in 0..shards {
        let seq = c.u64().ok_or(format!("shard {s}: truncated seq"))?;
        let now = c.u64().ok_or(format!("shard {s}: truncated now"))?;
        let count = c.u64().ok_or(format!("shard {s}: truncated count"))? as usize;
        // The CRC already passed, so counts are trustworthy; this bound
        // only guards against pathological hand-built inputs in tests.
        if count > body.len() / 24 + 1 {
            return Err(format!("shard {s}: implausible entry count {count}"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let k = c.u64().ok_or(format!("shard {s}: truncated entry"))?;
            let v = c.u64().ok_or(format!("shard {s}: truncated entry"))?;
            let exp = c.u64().ok_or(format!("shard {s}: truncated entry"))?;
            entries.push((k, v, exp));
        }
        image.shards.push(ShardImage { entries, seq, now });
    }
    if c.pos != body.len() {
        return Err("trailing bytes after checkpoint image".into());
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointImage {
        CheckpointImage {
            base_gen: 7,
            shards: (0..4)
                .map(|s| ShardImage {
                    entries: (0..s * 3).map(|i| (i as u64, i as u64 * 2, 0)).collect(),
                    seq: s as u64 * 100,
                    now: s as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrips() {
        let image = sample();
        let mut buf = Vec::new();
        encode_checkpoint(&image, &mut buf);
        assert_eq!(decode_checkpoint(&buf).unwrap(), image);
    }

    #[test]
    fn every_single_byte_mutation_is_rejected() {
        let mut buf = Vec::new();
        encode_checkpoint(&sample(), &mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(decode_checkpoint(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let mut buf = Vec::new();
        encode_checkpoint(&sample(), &mut buf);
        for len in 0..buf.len() {
            assert!(decode_checkpoint(&buf[..len]).is_err(), "truncate to {len}");
        }
    }
}
