//! The `WalFile` seam: where bytes meet disk, and where faults are
//! injected.
//!
//! The syncer thread writes segments through the [`WalFile`] trait so the
//! same group-commit machinery runs over three backends:
//!
//! * [`WalBackend::Real`] — a plain `File` with `write_all`/`sync_data`.
//!   Production.
//! * [`WalBackend::Sim`] — an in-memory model of a file with an explicit
//!   *durable prefix*: appends buffer, an honest fsync advances the
//!   durable watermark, a short fsync advances it only partially, and a
//!   seeded crash **materializes** exactly the surviving bytes (durable
//!   prefix + whatever fraction of the unsynced tail the page cache
//!   happened to flush, possibly ending in a torn record) to the real
//!   path, then poisons every later operation. Recovery then reads the
//!   materialized file — the in-process equivalent of `kill -9` at a
//!   chosen byte.
//! * [`WalBackend::Abort`] — a real `File` that, on a seeded crash draw,
//!   writes a torn prefix of the fatal append and calls
//!   `process::abort()`. The end-to-end harness uses this to kill a live
//!   `goccd` at a reproducible LSN.
//!
//! The sim backend is deliberately *adversarial*: `close` without a crash
//! materializes everything (a graceful shutdown persists its buffers),
//! but a crash keeps only what an honest kernel must keep.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gocc_faultplane::StorageFaultPlan;

use crate::record::RECORD_LEN;

/// Error surface of a [`WalFile`] operation.
#[derive(Debug)]
pub enum WalIoError {
    /// Real I/O failure.
    Io(io::Error),
    /// A seeded crash fired (sim backend); the log is dead.
    Crashed,
}

impl From<io::Error> for WalIoError {
    fn from(e: io::Error) -> Self {
        WalIoError::Io(e)
    }
}

/// One open WAL segment, as seen by the syncer thread.
pub trait WalFile: Send {
    /// Appends `buf`, whose first record carries `lsn`.
    fn append(&mut self, lsn: u64, buf: &[u8]) -> Result<(), WalIoError>;
    /// Durability barrier attempt. `fsync_idx` is the log-lifetime fsync
    /// counter (fault-schedule key). Returns the number of file bytes
    /// now known durable — a **short fsync** reports success from the
    /// kernel but persisted less than everything, so the syncer compares
    /// the return against its append watermark and retries the barrier
    /// until the batch is actually covered. Acks release only then.
    fn sync(&mut self, fsync_idx: u64) -> Result<u64, WalIoError>;
    /// Graceful close: persist what a clean shutdown should persist.
    fn close(&mut self) -> Result<(), WalIoError>;
}

/// How segments are opened; carries the fault plan for the test backends.
#[derive(Clone, Debug)]
pub enum WalBackend {
    /// Plain files, no faults.
    Real,
    /// In-memory durable-prefix model; crashes materialize and poison.
    Sim(Arc<StorageFaultPlan>),
    /// Real files; a crash draw tears the append and aborts the process.
    Abort(Arc<StorageFaultPlan>),
}

impl WalBackend {
    /// Opens (creating or appending) the segment at `path`.
    pub fn open(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        match self {
            WalBackend::Real => Ok(Box::new(RealWalFile {
                file: OpenOptions::new().create(true).append(true).open(path)?,
            })),
            WalBackend::Sim(plan) => Ok(Box::new(SimWalFile {
                path: path.to_path_buf(),
                buffered: std::fs::read(path).unwrap_or_default(),
                durable: 0,
                crashed: false,
                plan: Arc::clone(plan),
            })),
            WalBackend::Abort(plan) => Ok(Box::new(AbortWalFile {
                file: OpenOptions::new().create(true).append(true).open(path)?,
                plan: Arc::clone(plan),
            })),
        }
    }

    /// The fault plan, when this backend carries one.
    #[must_use]
    pub fn plan(&self) -> Option<&Arc<StorageFaultPlan>> {
        match self {
            WalBackend::Real => None,
            WalBackend::Sim(p) | WalBackend::Abort(p) => Some(p),
        }
    }

    /// True for the backend that simulates crashes in-process.
    #[must_use]
    pub fn is_sim(&self) -> bool {
        matches!(self, WalBackend::Sim(_))
    }
}

struct RealWalFile {
    file: File,
}

impl WalFile for RealWalFile {
    fn append(&mut self, _lsn: u64, buf: &[u8]) -> Result<(), WalIoError> {
        self.file.write_all(buf)?;
        Ok(())
    }

    fn sync(&mut self, _fsync_idx: u64) -> Result<u64, WalIoError> {
        self.file.sync_data()?;
        Ok(u64::MAX) // a real fsync that returns covers everything
    }

    fn close(&mut self) -> Result<(), WalIoError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory file model with an explicit durable prefix.
struct SimWalFile {
    path: PathBuf,
    /// Everything appended since open (re-seeded from disk contents so a
    /// reopened segment keeps its recovered prefix).
    buffered: Vec<u8>,
    /// Bytes guaranteed to survive a crash.
    durable: usize,
    crashed: bool,
    plan: Arc<StorageFaultPlan>,
}

impl SimWalFile {
    /// Writes the surviving bytes to the real path and poisons the file.
    fn crash(&mut self, surviving: usize) -> WalIoError {
        self.crashed = true;
        let keep = surviving.min(self.buffered.len());
        // Materialize atomically enough for a test harness: recovery runs
        // in the same process after this returns, never concurrently.
        if std::fs::write(&self.path, &self.buffered[..keep]).is_err() {
            // Disk trouble while simulating disk trouble; the poisoned
            // flag still guarantees no later op succeeds.
        }
        WalIoError::Crashed
    }
}

impl WalFile for SimWalFile {
    fn append(&mut self, lsn: u64, buf: &[u8]) -> Result<(), WalIoError> {
        if self.crashed {
            return Err(WalIoError::Crashed);
        }
        if self.plan.crash_at(lsn) {
            // Appends are prefix-ordered (ext4 ordered-mode model): what
            // survives is the durable prefix plus some prefix of the
            // unsynced tail. A torn draw means the fatal append itself
            // started landing — then everything before it landed too and
            // the partial record is the last thing on disk. Otherwise the
            // kernel flushed some fraction of the tail on its own.
            let tail = self.buffered.len() - self.durable;
            let torn = self.plan.surviving_append_bytes(lsn, buf.len());
            let surviving = if torn > 0 {
                self.buffered.extend_from_slice(&buf[..torn]);
                self.durable + tail + torn
            } else {
                self.durable + (tail as f64 * self.plan.surviving_tail_fraction(lsn)) as usize
            };
            return Err(self.crash(surviving));
        }
        self.buffered.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self, fsync_idx: u64) -> Result<u64, WalIoError> {
        if self.crashed {
            return Err(WalIoError::Crashed);
        }
        let pending = self.buffered.len() - self.durable;
        match self.plan.short_fsync(fsync_idx) {
            // A short fsync persists only a prefix of the newly covered
            // bytes. The returned watermark is honest (the syncer retries
            // off it); the *lie* being modeled is the kernel's Ok.
            Some(frac) => self.durable += (pending as f64 * frac) as usize,
            None => self.durable = self.buffered.len(),
        }
        Ok(self.durable as u64)
    }

    fn close(&mut self) -> Result<(), WalIoError> {
        if self.crashed {
            return Err(WalIoError::Crashed);
        }
        self.durable = self.buffered.len();
        std::fs::write(&self.path, &self.buffered)?;
        Ok(())
    }
}

/// Real file that aborts the whole process at a seeded LSN.
struct AbortWalFile {
    file: File,
    plan: Arc<StorageFaultPlan>,
}

impl WalFile for AbortWalFile {
    fn append(&mut self, lsn: u64, buf: &[u8]) -> Result<(), WalIoError> {
        if self.plan.crash_at(lsn) {
            let torn = self.plan.surviving_append_bytes(lsn, buf.len());
            // Tear at sub-record granularity, push it to disk, and die the
            // way SIGKILL would: no unwinding, no destructors, no acks.
            let _ = self.file.write_all(&buf[..torn.min(RECORD_LEN)]);
            let _ = self.file.sync_data();
            std::process::abort();
        }
        self.file.write_all(buf)?;
        Ok(())
    }

    fn sync(&mut self, _fsync_idx: u64) -> Result<u64, WalIoError> {
        self.file.sync_data()?;
        Ok(u64::MAX)
    }

    fn close(&mut self) -> Result<(), WalIoError> {
        self.file.sync_data()?;
        Ok(())
    }
}
