//! `gocc-wal` — durability for the GOCC cache: group-commit write-ahead
//! logging, checkpoints, and seeded crash recovery.
//!
//! The paper's thesis is that optimistic concurrency pays off when the
//! cost of synchronization is amortized across many operations. This
//! crate applies the identical argument to the most expensive
//! synchronization primitive on the box — `fsync` — so that making the
//! cache durable does not give back what lock elision won:
//!
//! * [`record`] — fixed-layout 52-byte records, CRC-32 checksums, and a
//!   panic-free incremental decoder ([`RecordBuf`]) in the style of
//!   `gocc_wire::FrameBuf`.
//! * [`wal`] — the [`Wal`] itself: mutating sections stage post-images
//!   onto per-shard commit pipes; one syncer thread batches them into a
//!   single write + fsync and releases acknowledgements only after the
//!   barrier ([`SyncPolicy::Group`]), per record ([`SyncPolicy::Always`])
//!   or immediately ([`SyncPolicy::Off`]).
//! * [`checkpoint`] — consistent per-shard snapshots written to an
//!   atomically renamed side file, bounding replay and letting old
//!   segments be deleted.
//! * [`recover`] — boot-time replay of checkpoint + WAL tail with
//!   checksum verification and torn-tail truncation.
//! * [`file`] — the [`WalFile`] seam where `gocc_faultplane`'s
//!   `StorageFaultPlan` injects torn writes, short fsyncs and crashes at
//!   seeded `(seed, lsn)` points, in-process ([`WalBackend::Sim`]) or by
//!   aborting a live daemon ([`WalBackend::Abort`]).
//!
//! The invariant the whole crate exists to uphold, and that `crash_soak`
//! attacks at every seeded crash point: **an acknowledged write is in
//! the fsynced prefix and survives any crash; an unacknowledged write is
//! either fully replayed or fully absent, never torn in half.**

pub mod checkpoint;
pub mod file;
pub mod record;
pub mod recover;
#[allow(clippy::module_inception)]
pub mod wal;

pub use checkpoint::{decode_checkpoint, encode_checkpoint, CheckpointImage, ShardImage};
pub use file::{WalBackend, WalFile, WalIoError};
pub use record::{crc32, encode_record, RecordBuf, RecordError, WalKind, WalRecord, RECORD_LEN};
pub use recover::{recover, segment_path, Recovered, RecoveryStats, CKPT_FILE, CKPT_TMP};
pub use wal::{DurableTap, Staged, SyncPolicy, Wal, WalConfig, WalError, WalTicket};
