//! Fixed-layout WAL records: encode, checksum, incremental decode.
//!
//! Every mutation the server acknowledges is one 52-byte record:
//!
//! ```text
//! offset  size  field
//!      0     2  magic        0xA15C ("append-log, 52")
//!      2     1  kind         1 = Put, 2 = Del, 3 = PutVal
//!      3     1  reserved     must be 0
//!      4     4  shard        shard index (LE u32)
//!      8     8  seq          per-shard mutation sequence number
//!     16     8  lsn          global log sequence number
//!     24     8  key          FNV-1a key hash
//!     32     8  value
//!     40     8  exp          absolute expiry tick (0 = never)
//!     48     4  crc32        IEEE CRC-32 over bytes [0, 48)
//! ```
//!
//! Records carry **post-images**: an INCR is logged as the value it
//! produced (`PutVal`), a SET as value+expiry (`Put`). Replay therefore
//! only needs per-key, per-shard `seq` order — it never re-executes an
//! operation — so a record whose predecessors were lost in an unsynced
//! tail still replays to the correct state.
//!
//! [`RecordBuf`] is the incremental decoder, in the style of
//! `gocc_wire::FrameBuf`: feed it arbitrary byte chunks, pull complete
//! records. It never panics on any input; a record that fails the magic,
//! kind, reserved-byte or CRC check is reported as an error with its
//! byte offset, which recovery treats as the torn tail of the log.

/// Record wire size in bytes.
pub const RECORD_LEN: usize = 52;

/// Record magic (little-endian u16 at offset 0).
pub const RECORD_MAGIC: u16 = 0xA15C;

/// Mutation class carried by a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WalKind {
    /// Full post-image: value and expiry.
    Put = 1,
    /// Key removed.
    Del = 2,
    /// Value post-image only; the key's expiry is untouched (INCR).
    PutVal = 3,
}

impl WalKind {
    fn from_u8(v: u8) -> Option<WalKind> {
        match v {
            1 => Some(WalKind::Put),
            2 => Some(WalKind::Del),
            3 => Some(WalKind::PutVal),
            _ => None,
        }
    }
}

/// One decoded WAL record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Shard the mutation landed on.
    pub shard: u32,
    /// Per-shard mutation sequence number (assigned inside the section).
    pub seq: u64,
    /// Global log sequence number (assigned by the syncer at encode).
    pub lsn: u64,
    /// Mutation class.
    pub kind: WalKind,
    /// Key hash.
    pub key: u64,
    /// Post-image value (ignored for `Del`).
    pub value: u64,
    /// Post-image absolute expiry (only meaningful for `Put`).
    pub exp: u64,
}

/// Why a record failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// First two bytes are not [`RECORD_MAGIC`].
    BadMagic,
    /// Unknown `kind` byte or nonzero reserved byte.
    BadLayout,
    /// Body checksum mismatch (bit rot or a torn write).
    BadCrc,
}

// IEEE CRC-32 (reflected, poly 0xEDB88320), table built at compile time.
// Small and dependency-free; torn-tail detection needs error *detection*,
// not speed, and 52-byte records keep even the bytewise loop cheap.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends the 52-byte encoding of `rec` to `out`.
pub fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.push(rec.kind as u8);
    out.push(0); // reserved
    out.extend_from_slice(&rec.shard.to_le_bytes());
    out.extend_from_slice(&rec.seq.to_le_bytes());
    out.extend_from_slice(&rec.lsn.to_le_bytes());
    out.extend_from_slice(&rec.key.to_le_bytes());
    out.extend_from_slice(&rec.value.to_le_bytes());
    out.extend_from_slice(&rec.exp.to_le_bytes());
    let crc = crc32(&out[start..start + RECORD_LEN - 4]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes one record from the first [`RECORD_LEN`] bytes of `buf`.
///
/// The caller guarantees `buf.len() >= RECORD_LEN`; partial input is the
/// incremental decoder's concern, not this function's.
fn decode_one(buf: &[u8]) -> Result<WalRecord, RecordError> {
    if le_u32(&buf[48..52]) != crc32(&buf[..48]) {
        return Err(RecordError::BadCrc);
    }
    if u16::from_le_bytes([buf[0], buf[1]]) != RECORD_MAGIC {
        return Err(RecordError::BadMagic);
    }
    let kind = WalKind::from_u8(buf[2]).ok_or(RecordError::BadLayout)?;
    if buf[3] != 0 {
        return Err(RecordError::BadLayout);
    }
    Ok(WalRecord {
        shard: le_u32(&buf[4..8]),
        seq: le_u64(&buf[8..16]),
        lsn: le_u64(&buf[16..24]),
        kind,
        key: le_u64(&buf[24..32]),
        value: le_u64(&buf[32..40]),
        exp: le_u64(&buf[40..48]),
    })
}

/// Incremental record extraction over a byte stream.
///
/// Consumed bytes are compacted away lazily so steady-state operation
/// reuses one allocation. Unlike `FrameBuf` there is no resynchronization:
/// the WAL is a trusted local file, so the first bad record marks the torn
/// tail and everything after it is untrustworthy by definition.
#[derive(Debug, Default)]
pub struct RecordBuf {
    buf: Vec<u8>,
    start: usize,
    /// Bytes consumed over the stream's lifetime (error reporting).
    consumed: u64,
}

impl RecordBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        RecordBuf::default()
    }

    /// Appends newly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Byte offset (over the whole stream) of the next record boundary.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.consumed
    }

    /// Extracts the next complete record, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed. On `Err` the bad
    /// bytes are *not* consumed: [`RecordBuf::offset`] still points at the
    /// failed record, which is where recovery truncates.
    pub fn next_record(&mut self) -> Result<Option<WalRecord>, RecordError> {
        if self.pending() < RECORD_LEN {
            return Ok(None);
        }
        let rec = decode_one(&self.buf[self.start..self.start + RECORD_LEN])?;
        self.start += RECORD_LEN;
        self.consumed += RECORD_LEN as u64;
        Ok(Some(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> WalRecord {
        WalRecord {
            shard: (i % 7) as u32,
            seq: i * 3 + 1,
            lsn: i,
            kind: match i % 3 {
                0 => WalKind::Put,
                1 => WalKind::Del,
                _ => WalKind::PutVal,
            },
            key: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            value: !i,
            exp: i * 100,
        }
    }

    #[test]
    fn roundtrips() {
        let mut buf = Vec::new();
        for i in 0..50 {
            encode_record(&sample(i), &mut buf);
        }
        assert_eq!(buf.len(), 50 * RECORD_LEN);
        let mut rb = RecordBuf::new();
        let mut seen = Vec::new();
        // One byte at a time: every partial-record boundary exercised.
        for &b in &buf {
            rb.extend(&[b]);
            while let Some(rec) = rb.next_record().unwrap() {
                seen.push(rec);
            }
        }
        assert_eq!(seen.len(), 50);
        for (i, rec) in seen.iter().enumerate() {
            assert_eq!(*rec, sample(i as u64));
        }
        assert_eq!(rb.pending(), 0);
        assert_eq!(rb.offset(), buf.len() as u64);
    }

    #[test]
    fn crc_is_the_ieee_one() {
        // Classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn error_does_not_consume() {
        let mut buf = Vec::new();
        encode_record(&sample(1), &mut buf);
        buf[10] ^= 0x40;
        let mut rb = RecordBuf::new();
        rb.extend(&buf);
        assert_eq!(rb.next_record(), Err(RecordError::BadCrc));
        assert_eq!(rb.offset(), 0, "failed record must not advance offset");
        assert_eq!(rb.next_record(), Err(RecordError::BadCrc), "sticky");
    }
}
