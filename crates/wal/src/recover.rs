//! Boot-time recovery: checkpoint + WAL tail → per-shard images.
//!
//! The sequence is fixed and idempotent — running it twice (a crash
//! *during* recovery) converges to the same state:
//!
//! 1. Delete any `checkpoint.tmp` (a checkpoint that never committed).
//! 2. Load `checkpoint.ckpt` if present; its CRC must verify. The file
//!    only ever appears via atomic rename, so a damaged one is real
//!    corruption and recovery refuses to continue.
//! 3. Delete WAL segments the checkpoint covers (`gen < base_gen`) — a
//!    crash mid-truncation leaves some of them behind; their records are
//!    all `seq ≤` the checkpoint and replay would skip them anyway.
//! 4. Scan remaining segments in generation order through [`RecordBuf`].
//!    The first bad or partial record in the **newest** segment is the
//!    torn tail: the segment is physically truncated there so the next
//!    recovery sees a clean file. A bad record in an older segment is
//!    corruption and fails recovery.
//! 5. Sort each shard's surviving records by `seq` and apply post-images
//!    over the checkpoint: `Put` replaces value+expiry, `PutVal` only the
//!    value, `Del` removes. Records with `seq ≤` the checkpointed shard
//!    seq are skipped (already in the image).
//!
//! Group commit guarantees every *acknowledged* record is inside the
//! fsynced prefix, so the torn tail can only eat unacknowledged ones.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::checkpoint::{decode_checkpoint, CheckpointImage, ShardImage};
use crate::record::{RecordBuf, WalKind, RECORD_LEN};

/// Name of the committed checkpoint side-file.
pub const CKPT_FILE: &str = "checkpoint.ckpt";
/// Name of the in-flight checkpoint (never read, deleted on boot).
pub const CKPT_TMP: &str = "checkpoint.tmp";

/// Path of the WAL segment with generation `gen`.
#[must_use]
pub fn segment_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:016}.log"))
}

fn parse_segment_gen(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if rest.len() != 16 {
        return None;
    }
    rest.parse().ok()
}

/// What a recovery scan observed, surfaced in STATS.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// A committed checkpoint was loaded.
    pub checkpoint_loaded: bool,
    /// Entries restored from the checkpoint image.
    pub checkpoint_entries: u64,
    /// Records replayed from the WAL tail.
    pub replayed: u64,
    /// Records skipped because the checkpoint already covered them.
    pub skipped: u64,
    /// Bytes cut off the newest segment as a torn tail.
    pub truncated_bytes: u64,
    /// Segments scanned.
    pub segments: u64,
    /// Highest LSN seen; the log resumes above it.
    pub max_lsn: u64,
}

/// The state a recovered log hands to the server.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Per-shard images to load into the store before serving.
    pub shards: Vec<ShardImage>,
    /// Scan observations for STATS and the soak harness.
    pub stats: RecoveryStats,
    /// Segment generations still on disk, ascending.
    pub(crate) gens: Vec<u64>,
}

/// Runs the full recovery sequence over `dir` for a `shards`-way store.
pub fn recover(dir: &Path, shards: usize) -> io::Result<Recovered> {
    fs::create_dir_all(dir)?;
    let _ = fs::remove_file(dir.join(CKPT_TMP));

    let mut stats = RecoveryStats::default();
    let ckpt = match fs::read(dir.join(CKPT_FILE)) {
        Ok(bytes) => {
            let image = decode_checkpoint(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if image.shards.len() != shards {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint has {} shards, server configured for {shards}",
                        image.shards.len()
                    ),
                ));
            }
            stats.checkpoint_loaded = true;
            stats.checkpoint_entries = image.entry_count();
            image
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => CheckpointImage {
            base_gen: 0,
            shards: vec![ShardImage::default(); shards],
        },
        Err(e) => return Err(e),
    };

    // Enumerate segments; drop the ones the checkpoint covers.
    let mut gens: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(gen) = parse_segment_gen(name) else {
            continue;
        };
        if gen < ckpt.base_gen {
            fs::remove_file(entry.path())?;
        } else {
            gens.push(gen);
        }
    }
    gens.sort_unstable();

    // Scan, stopping at the newest segment's torn tail.
    let mut per_shard: Vec<Vec<crate::record::WalRecord>> = vec![Vec::new(); shards];
    for (i, &gen) in gens.iter().enumerate() {
        let last = i + 1 == gens.len();
        let path = segment_path(dir, gen);
        let bytes = fs::read(&path)?;
        stats.segments += 1;
        let mut rb = RecordBuf::new();
        rb.extend(&bytes);
        let torn_at = loop {
            match rb.next_record() {
                Ok(Some(rec)) => {
                    if (rec.shard as usize) < shards {
                        stats.max_lsn = stats.max_lsn.max(rec.lsn);
                        per_shard[rec.shard as usize].push(rec);
                    } else {
                        // A CRC-valid record naming an impossible shard
                        // can only be cross-configuration reuse of the
                        // data dir; refuse rather than drop writes.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("segment {gen}: record for shard {}", rec.shard),
                        ));
                    }
                }
                Ok(None) => {
                    if rb.pending() > 0 {
                        break Some(rb.offset()); // partial record at EOF
                    }
                    break None;
                }
                Err(_) => break Some(rb.offset()),
            }
        };
        if let Some(offset) = torn_at {
            if !last {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("segment {gen}: bad record at byte {offset} mid-log"),
                ));
            }
            stats.truncated_bytes = bytes.len() as u64 - offset;
            let f = fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(offset)?;
            f.sync_data()?;
        }
    }

    // Apply post-images in per-shard seq order over the checkpoint.
    let mut shards_out = Vec::with_capacity(shards);
    for (s, mut records) in per_shard.into_iter().enumerate() {
        let base = &ckpt.shards[s];
        let mut map: BTreeMap<u64, (u64, u64)> = base
            .entries
            .iter()
            .map(|&(k, v, exp)| (k, (v, exp)))
            .collect();
        let mut seq = base.seq;
        records.sort_by_key(|r| r.seq);
        for rec in records {
            if rec.seq <= base.seq {
                stats.skipped += 1;
                continue;
            }
            stats.replayed += 1;
            seq = seq.max(rec.seq);
            match rec.kind {
                WalKind::Put => {
                    map.insert(rec.key, (rec.value, rec.exp));
                }
                WalKind::PutVal => {
                    let exp = map.get(&rec.key).map_or(0, |&(_, e)| e);
                    map.insert(rec.key, (rec.value, exp));
                }
                WalKind::Del => {
                    map.remove(&rec.key);
                }
            }
        }
        shards_out.push(ShardImage {
            entries: map.into_iter().map(|(k, (v, exp))| (k, v, exp)).collect(),
            seq,
            now: base.now,
        });
    }

    debug_assert_eq!(RECORD_LEN % 4, 0);
    Ok(Recovered {
        shards: shards_out,
        stats,
        gens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, WalRecord};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gocc-wal-rec-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(shard: u32, seq: u64, lsn: u64, key: u64, value: u64) -> WalRecord {
        WalRecord {
            shard,
            seq,
            lsn,
            kind: WalKind::Put,
            key,
            value,
            exp: 0,
        }
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = tmp("empty");
        let rec = recover(&dir, 4).unwrap();
        assert_eq!(rec.shards.len(), 4);
        assert!(rec
            .shards
            .iter()
            .all(|s| s.entries.is_empty() && s.seq == 0));
        assert!(!rec.stats.checkpoint_loaded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replays_tail_and_truncates_torn_record() {
        let dir = tmp("torn");
        let mut buf = Vec::new();
        encode_record(&put(0, 1, 0, 10, 100), &mut buf);
        encode_record(&put(0, 2, 1, 10, 200), &mut buf);
        encode_record(&put(1, 1, 2, 11, 300), &mut buf);
        let whole = buf.len();
        encode_record(&put(1, 2, 3, 11, 999), &mut buf);
        buf.truncate(whole + 20); // torn mid-record
        fs::write(segment_path(&dir, 1), &buf).unwrap();

        let rec = recover(&dir, 2).unwrap();
        assert_eq!(rec.stats.replayed, 3);
        assert_eq!(rec.stats.truncated_bytes, 20);
        assert_eq!(rec.shards[0].entries, vec![(10, 200, 0)]);
        assert_eq!(rec.shards[0].seq, 2);
        assert_eq!(rec.shards[1].entries, vec![(11, 300, 0)]);
        // The torn bytes are physically gone: a second recovery is clean.
        let again = recover(&dir, 2).unwrap();
        assert_eq!(again.stats.truncated_bytes, 0);
        assert_eq!(again.stats.replayed, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_order_beats_file_order() {
        // Same key mutated twice; the records land in the file in the
        // wrong order (two pipes drained out of commit order). Post-image
        // + seq sort must still converge on the later mutation.
        let dir = tmp("seqorder");
        let mut buf = Vec::new();
        encode_record(&put(0, 5, 0, 42, 500), &mut buf);
        encode_record(&put(0, 4, 1, 42, 400), &mut buf);
        fs::write(segment_path(&dir, 1), &buf).unwrap();
        let rec = recover(&dir, 1).unwrap();
        assert_eq!(rec.shards[0].entries, vec![(42, 500, 0)]);
        assert_eq!(rec.shards[0].seq, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_is_deleted_and_mid_log_corruption_is_fatal() {
        let dir = tmp("midlog");
        fs::write(dir.join(CKPT_TMP), b"half a checkpoint").unwrap();
        let mut seg1 = Vec::new();
        encode_record(&put(0, 1, 0, 1, 1), &mut seg1);
        seg1[8] ^= 0xFF; // corrupt body of an *old* segment
        fs::write(segment_path(&dir, 1), &seg1).unwrap();
        let mut seg2 = Vec::new();
        encode_record(&put(0, 2, 1, 2, 2), &mut seg2);
        fs::write(segment_path(&dir, 2), &seg2).unwrap();

        assert!(recover(&dir, 1).is_err(), "old-segment corruption is fatal");
        assert!(!dir.join(CKPT_TMP).exists(), "tmp checkpoint deleted");
        let _ = fs::remove_dir_all(&dir);
    }
}
