//! Group commit: per-shard commit pipes, one syncer thread, one fsync
//! for many sections.
//!
//! The paper's core move is amortizing synchronization cost across an
//! elided section; this module applies the same amortization to the
//! *durability* barrier. A mutating section assigns its per-shard `seq`
//! inside the critical section, then [`Wal::stage`]s the post-image into
//! its shard's commit pipe — two mutex ops and a vec push, no
//! allocation in steady state, no fsync. A dedicated **syncer thread**
//! drains every pipe, encodes the records into one buffer, appends them
//! with a single write and covers the whole batch with a single fsync.
//! Only after that barrier does it publish the per-shard durable ticket
//! watermark and wake waiters: acknowledgements are released strictly
//! after the fsync, so an acked write is always inside the fsynced
//! prefix and a torn tail can only eat unacknowledged records.
//!
//! Three policies trade latency for durability:
//!
//! * **`always`** — one record per fsync. The floor group commit is
//!   measured against.
//! * **`group`** — batch until [`WalConfig::fsync_batch_size`] records
//!   or [`WalConfig::fsync_wait_us`] elapsed, whichever first.
//! * **`off`** — append asynchronously, never fsync, ack immediately.
//!   `FLUSH` and graceful shutdown still force a barrier.
//!
//! Checkpointing rotates the active segment *first*, then snapshots:
//! every record in a retired segment carries a `seq` assigned before the
//! snapshot's read section, so the checkpoint covers retired segments by
//! construction and they can be deleted after the side-file rename.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use gocc_telemetry::JsonWriter;

use crate::checkpoint::CheckpointImage;
use crate::file::{WalBackend, WalFile, WalIoError};
use crate::record::{encode_record, WalKind, WalRecord, RECORD_LEN};
use crate::recover::{recover, segment_path, Recovered, RecoveryStats, CKPT_FILE, CKPT_TMP};

/// When acknowledgements may be released.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Ack immediately; append asynchronously; never fsync per record.
    Off,
    /// Ack after the batched group-commit fsync.
    Group,
    /// Ack after a per-record fsync.
    Always,
}

impl SyncPolicy {
    /// Parses the `--wal-sync` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "off" => Some(SyncPolicy::Off),
            "group" => Some(SyncPolicy::Group),
            "always" => Some(SyncPolicy::Always),
            _ => None,
        }
    }

    /// Stable name, used in STATS and bench artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Off => "off",
            SyncPolicy::Group => "group",
            SyncPolicy::Always => "always",
        }
    }
}

/// Durability knobs.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Ack-release policy.
    pub sync: SyncPolicy,
    /// Group mode: fsync once this many records are pending…
    pub fsync_batch_size: usize,
    /// …or once the oldest pending record has waited this long. `0`
    /// (the default) never lingers: each fsync covers whatever staged
    /// while the previous one ran — natural batching. With a bounded
    /// worker pool every in-flight writer is already blocked on the
    /// barrier once its record is staged, so lingering can never grow
    /// the batch past the pool size; it only adds latency. Raise this
    /// when arrivals are open-loop and bursty.
    pub fsync_wait_us: u64,
    /// Checkpoint when this many records accumulated since the last one
    /// (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// File backend (real, simulated-crash, or aborting).
    pub backend: WalBackend,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync: SyncPolicy::Group,
            fsync_batch_size: 64,
            fsync_wait_us: 0,
            checkpoint_every: 0,
            backend: WalBackend::Real,
        }
    }
}

/// A staged mutation: the post-image a section publishes to its pipe.
#[derive(Clone, Copy, Debug)]
pub struct Staged {
    /// Shard the mutation landed on.
    pub shard: u32,
    /// Per-shard mutation sequence number (assigned in the section).
    pub seq: u64,
    /// Mutation class.
    pub kind: WalKind,
    /// Key hash.
    pub key: u64,
    /// Post-image value.
    pub value: u64,
    /// Post-image absolute expiry (`Put` only).
    pub exp: u64,
}

/// Receipt for one staged record; redeem with [`Wal::wait`].
#[derive(Clone, Copy, Debug)]
pub struct WalTicket {
    shard: u32,
    ticket: u64,
}

impl WalTicket {
    /// The per-shard ticket number this ticket waits on (diagnostics).
    #[must_use]
    pub fn number(&self) -> u64 {
        self.ticket
    }
}

/// Why a durability operation failed.
#[derive(Debug)]
pub enum WalError {
    /// A seeded crash (or I/O failure) killed the log; no further writes
    /// will be acknowledged.
    Crashed,
    /// Filesystem error outside the append path (checkpointing).
    Io(io::Error),
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Observer of the WAL's durable prefix. The syncer invokes
/// [`DurableTap::publish`] once per shard per pass, strictly **after**
/// the pass's durability barrier (under `off`, after the append — the
/// ack there makes no durability promise either), so everything a tap
/// sees is exactly what an acknowledgement may promise. Records within
/// one call are in pipe order, which is *not* necessarily `seq` order —
/// staging happens outside the critical section — so consumers that
/// need commit order (the replication feed) reorder by `Staged::seq`.
pub trait DurableTap: Send + Sync {
    /// A batch of shard `shard`'s records just became part of the
    /// durable prefix.
    fn publish(&self, shard: u32, records: &[Staged]);
}

/// Locks a mutex, recovering the guard from a poisoned lock. A panicking
/// peer must degrade the WAL (the crashed flag handles that), never
/// cascade panics into worker or syncer threads.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Records of retained capacity each pipe (and its syncer-side swap
/// partner) starts with. Staging stays allocation-free as long as the
/// per-shard backlog between fsync passes fits; beyond that the Vec
/// grows (amortized) and keeps the larger capacity forever.
const PIPE_RESERVE: usize = 1024;

#[derive(Debug)]
struct PipeInner {
    records: Vec<Staged>,
    /// Tickets issued (count of records ever staged on this shard).
    staged: u64,
}

impl PipeInner {
    fn new() -> Self {
        PipeInner {
            records: Vec::with_capacity(PIPE_RESERVE),
            staged: 0,
        }
    }
}

#[derive(Debug, Default)]
struct WalCounters {
    /// Next LSN to assign; also the count of records ever appended
    /// (offset by the recovered high-water mark).
    next_lsn: AtomicU64,
    /// Records appended in this process lifetime.
    appended: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    /// Group-commit batches written (one append each).
    batches: AtomicU64,
    flushes: AtomicU64,
    rotations: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_entries: AtomicU64,
    since_checkpoint: AtomicU64,
    /// LSN high-water mark covered by an fsync.
    durable_lsn: AtomicU64,
}

/// The write-ahead log: pipes in, one syncer thread out.
pub struct Wal {
    cfg: WalConfig,
    dir: PathBuf,
    pipes: Vec<Mutex<PipeInner>>,
    /// Per-shard ticket watermark that is durable (ack-releasable).
    durable: Vec<AtomicU64>,
    ack_mu: Mutex<()>,
    ack_cv: Condvar,
    wake_mu: Mutex<bool>,
    wake_cv: Condvar,
    /// True only while the syncer is (about to be) parked on `wake_cv`.
    /// `stage` skips the wake-mutex/notify entirely while the syncer is
    /// busy — the drain loop will pick the record up anyway — which
    /// keeps the staging hot path to one shard-local mutex op.
    syncer_idle: AtomicBool,
    crashed: AtomicBool,
    shutdown_flag: AtomicBool,
    flush_req: AtomicU64,
    flush_done: AtomicU64,
    rotate_req: AtomicU64,
    rotate_done: AtomicU64,
    /// Segment generations on disk, ascending; last is active.
    segments: Mutex<Vec<u64>>,
    /// Checkpoint attempt counter (fault-schedule key).
    ckpt_idx: AtomicU64,
    syncer: Mutex<Option<thread::JoinHandle<()>>>,
    /// Durable-prefix observer (the replication feed). Bumping `tap_gen`
    /// tells the syncer to re-read the slot, so the steady-state pass
    /// pays one relaxed load, not a lock.
    tap: Mutex<Option<Arc<dyn DurableTap>>>,
    tap_gen: AtomicU64,
    counters: WalCounters,
    recovery: RecoveryStats,
}

impl Wal {
    /// Recovers `dir`, opens a fresh active segment, starts the syncer.
    ///
    /// Returns the log plus the recovered per-shard images the caller
    /// must load into its store *before* staging anything.
    pub fn open(
        dir: impl Into<PathBuf>,
        shards: usize,
        cfg: WalConfig,
    ) -> io::Result<(Arc<Wal>, Recovered)> {
        let dir = dir.into();
        let recovered = recover(&dir, shards)?;
        let active_gen = recovered.gens.last().copied().unwrap_or(0) + 1;
        let file = cfg.backend.open(&segment_path(&dir, active_gen))?;
        let mut gens = recovered.gens.clone();
        gens.push(active_gen);
        let counters = WalCounters::default();
        let lsn_base = if recovered.stats.replayed + recovered.stats.skipped > 0 {
            recovered.stats.max_lsn + 1
        } else {
            0
        };
        counters.next_lsn.store(lsn_base, Ordering::Relaxed);
        counters.durable_lsn.store(lsn_base, Ordering::Relaxed);
        let wal = Arc::new(Wal {
            cfg,
            dir,
            pipes: (0..shards).map(|_| Mutex::new(PipeInner::new())).collect(),
            durable: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ack_mu: Mutex::new(()),
            ack_cv: Condvar::new(),
            wake_mu: Mutex::new(false),
            wake_cv: Condvar::new(),
            syncer_idle: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            shutdown_flag: AtomicBool::new(false),
            flush_req: AtomicU64::new(0),
            flush_done: AtomicU64::new(0),
            rotate_req: AtomicU64::new(0),
            rotate_done: AtomicU64::new(0),
            segments: Mutex::new(gens),
            ckpt_idx: AtomicU64::new(0),
            syncer: Mutex::new(None),
            tap: Mutex::new(None),
            tap_gen: AtomicU64::new(0),
            counters,
            recovery: recovered.stats,
        });
        let handle = {
            let w = Arc::clone(&wal);
            thread::Builder::new()
                .name("wal-syncer".into())
                .spawn(move || syncer_loop(&w, file))?
        };
        *lock_unpoisoned(&wal.syncer) = Some(handle);
        Ok((wal, recovered))
    }

    /// Installs (or replaces) the durable-prefix tap. The syncer picks
    /// the change up on its next pass; records already past their
    /// barrier when the tap lands are not replayed — a consumer that
    /// needs history resyncs from a snapshot, same as after a gap.
    pub fn set_tap(&self, tap: Arc<dyn DurableTap>) {
        *lock_unpoisoned(&self.tap) = Some(tap);
        self.tap_gen.fetch_add(1, Ordering::Release);
    }

    /// The configured ack-release policy.
    #[must_use]
    pub fn sync_policy(&self) -> SyncPolicy {
        self.cfg.sync
    }

    /// What recovery observed at open.
    #[must_use]
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// True once a seeded crash or I/O failure poisoned the log.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Stages one post-image on its shard's commit pipe.
    ///
    /// Steady-state cost: one shard-local mutex, one vec push (into
    /// retained capacity), one wake. No allocation, no I/O.
    pub fn stage(&self, rec: Staged) -> WalTicket {
        let shard = rec.shard;
        let ticket = {
            let mut p = lock_unpoisoned(&self.pipes[shard as usize]);
            p.records.push(rec);
            p.staged += 1;
            p.staged
        };
        // Wake only a parked syncer. The SeqCst pairing with the idle
        // transition makes this race-free: if this load reads `false`,
        // the push above is ordered before the syncer's post-publish
        // re-drain, which therefore sees the record (see `syncer_loop`).
        if self.syncer_idle.load(Ordering::SeqCst) {
            self.wake();
        }
        WalTicket { shard, ticket }
    }

    /// Blocks until the ticket's record is durable per the policy.
    ///
    /// Under `off` this returns immediately: the ack deliberately makes
    /// no durability promise. Under `group`/`always` it returns once the
    /// record is inside an fsynced prefix — the caller may then, and only
    /// then, release the acknowledgement.
    pub fn wait(&self, t: WalTicket) -> Result<(), WalError> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(WalError::Crashed);
        }
        if self.cfg.sync == SyncPolicy::Off {
            return Ok(());
        }
        let shard = t.shard as usize;
        if self.durable[shard].load(Ordering::Acquire) >= t.ticket {
            return Ok(());
        }
        let mut guard = lock_unpoisoned(&self.ack_mu);
        loop {
            if self.durable[shard].load(Ordering::Acquire) >= t.ticket {
                return Ok(());
            }
            if self.crashed.load(Ordering::Acquire) {
                return Err(WalError::Crashed);
            }
            // Timed wait: a lost wakeup costs 2ms, never a hang.
            guard = self
                .ack_cv
                .wait_timeout(guard, Duration::from_millis(2))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Forces a durability barrier over everything staged before the
    /// call, regardless of policy. Returns the durable LSN high-water
    /// mark. This is the FLUSH verb.
    pub fn flush(&self) -> Result<u64, WalError> {
        let token = self.flush_req.fetch_add(1, Ordering::SeqCst) + 1;
        self.wake();
        let mut guard = lock_unpoisoned(&self.ack_mu);
        loop {
            if self.flush_done.load(Ordering::SeqCst) >= token {
                return Ok(self.counters.durable_lsn.load(Ordering::Relaxed));
            }
            if self.crashed.load(Ordering::Acquire) {
                return Err(WalError::Crashed);
            }
            guard = self
                .ack_cv
                .wait_timeout(guard, Duration::from_millis(2))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// True when enough records accumulated to warrant a checkpoint.
    #[must_use]
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every > 0
            && !self.is_crashed()
            && self.counters.since_checkpoint.load(Ordering::Relaxed) >= self.cfg.checkpoint_every
    }

    /// Phase one of a checkpoint: rotate the active segment.
    ///
    /// On return every future append lands in a new segment, so any
    /// snapshot taken *after* this call covers all retired segments
    /// (their records' `seq`s were assigned before the snapshot's read
    /// sections). Returns `(base_gen, retired)`: the generation the
    /// checkpoint truncates to, and the segments it may delete.
    pub fn begin_checkpoint(&self) -> Result<(u64, Vec<u64>), WalError> {
        let token = self.rotate_req.fetch_add(1, Ordering::SeqCst) + 1;
        self.wake();
        let mut guard = lock_unpoisoned(&self.ack_mu);
        loop {
            if self.rotate_done.load(Ordering::SeqCst) >= token {
                break;
            }
            if self.crashed.load(Ordering::Acquire) {
                return Err(WalError::Crashed);
            }
            guard = self
                .ack_cv
                .wait_timeout(guard, Duration::from_millis(2))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        drop(guard);
        let segs = lock_unpoisoned(&self.segments);
        let Some(&active) = segs.last() else {
            // An empty segment list means the syncer died mid-rotation;
            // degrade instead of panicking in the checkpointer thread.
            drop(segs);
            return Err(self.poison());
        };
        let retired = segs[..segs.len() - 1].to_vec();
        Ok((active, retired))
    }

    /// Phase two: persist the snapshot and truncate the log.
    ///
    /// `image.base_gen` must be the value [`Wal::begin_checkpoint`]
    /// returned, and the snapshot must have been taken after that call.
    /// The sequence — write `checkpoint.tmp`, fsync, rename, fsync the
    /// directory, delete retired segments — is crash-safe at every step:
    /// before the rename the old checkpoint (or none) still rules;
    /// after it, leftover retired segments are covered and deleted on
    /// the next boot.
    pub fn finish_checkpoint(
        &self,
        image: &CheckpointImage,
        retired: &[u64],
    ) -> Result<(), WalError> {
        let ckpt = self.ckpt_idx.fetch_add(1, Ordering::SeqCst);
        let mut buf = Vec::new();
        crate::checkpoint::encode_checkpoint(image, &mut buf);
        let tmp = self.dir.join(CKPT_TMP);
        let live = self.dir.join(CKPT_FILE);

        // Phase 0: die mid-write, leaving a torn tmp.
        if self.ckpt_fault(ckpt, 0) {
            let _ = std::fs::write(&tmp, &buf[..buf.len() / 2]);
            return Err(self.poison());
        }
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        // Phase 1: die with a complete tmp that never committed.
        if self.ckpt_fault(ckpt, 1) {
            return Err(self.poison());
        }
        std::fs::rename(&tmp, &live)?;
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Phases 2..: die mid-truncation, leaving covered segments behind.
        for (i, &gen) in retired.iter().enumerate() {
            if self.ckpt_fault(ckpt, 2 + i as u64) {
                return Err(self.poison());
            }
            let _ = std::fs::remove_file(segment_path(&self.dir, gen));
        }
        lock_unpoisoned(&self.segments).retain(|&g| g >= image.base_gen);
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.counters
            .checkpoint_entries
            .store(image.entry_count(), Ordering::Relaxed);
        self.counters.since_checkpoint.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn ckpt_fault(&self, ckpt: u64, phase: u64) -> bool {
        match &self.cfg.backend {
            WalBackend::Real => false,
            WalBackend::Sim(plan) => plan.ckpt_crash(ckpt, phase),
            WalBackend::Abort(plan) => {
                if plan.ckpt_crash(ckpt, phase) {
                    // Die the way SIGKILL would, mid-sequence.
                    std::process::abort();
                }
                false
            }
        }
    }

    /// Final barrier and syncer join. Graceful: everything staged is
    /// appended and (policy permitting) persisted before return.
    pub fn shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::SeqCst);
        self.wake();
        let handle = lock_unpoisoned(&self.syncer).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn wake(&self) {
        let mut w = lock_unpoisoned(&self.wake_mu);
        *w = true;
        drop(w);
        self.wake_cv.notify_one();
    }

    fn poison(&self) -> WalError {
        self.crashed.store(true, Ordering::Release);
        self.ack_cv.notify_all();
        WalError::Crashed
    }

    /// Records appended in this process lifetime.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.counters.appended.load(Ordering::Relaxed)
    }

    /// Fsyncs issued in this process lifetime.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.counters.fsyncs.load(Ordering::Relaxed)
    }

    /// LSN high-water mark covered by a durability barrier.
    #[must_use]
    pub fn durable_lsn(&self) -> u64 {
        self.counters.durable_lsn.load(Ordering::Relaxed)
    }

    /// Checkpoints completed.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.counters.checkpoints.load(Ordering::Relaxed)
    }

    /// The STATS `"wal"` object.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let c = &self.counters;
        let appended = c.appended.load(Ordering::Relaxed);
        let fsyncs = c.fsyncs.load(Ordering::Relaxed);
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_bool("enabled", true)
            .field_str("sync", self.cfg.sync.name())
            .field_bool("crashed", self.is_crashed())
            .field_u64("records", appended)
            .field_u64("bytes", c.bytes.load(Ordering::Relaxed))
            .field_u64("fsyncs", fsyncs)
            .field_f64(
                "records_per_fsync",
                if fsyncs == 0 {
                    0.0
                } else {
                    appended as f64 / fsyncs as f64
                },
            )
            .field_u64("batches", c.batches.load(Ordering::Relaxed))
            .field_u64("flushes", c.flushes.load(Ordering::Relaxed))
            .field_u64("durable_lsn", c.durable_lsn.load(Ordering::Relaxed))
            .field_u64("rotations", c.rotations.load(Ordering::Relaxed))
            .field_u64("checkpoints", c.checkpoints.load(Ordering::Relaxed))
            .field_u64(
                "checkpoint_entries",
                c.checkpoint_entries.load(Ordering::Relaxed),
            )
            .field_u64(
                "since_checkpoint",
                c.since_checkpoint.load(Ordering::Relaxed),
            );
        w.key("recovery").begin_object();
        w.field_bool("checkpoint_loaded", self.recovery.checkpoint_loaded)
            .field_u64("checkpoint_entries", self.recovery.checkpoint_entries)
            .field_u64("recovery_replayed", self.recovery.replayed)
            .field_u64("recovery_skipped", self.recovery.skipped)
            .field_u64("truncated_bytes", self.recovery.truncated_bytes)
            .field_u64("segments", self.recovery.segments);
        w.end_object().end_object();
        w.finish()
    }
}

/// The syncer thread: drain pipes → encode → append → fsync → publish.
fn syncer_loop(wal: &Wal, mut file: Box<dyn WalFile>) {
    let shards = wal.pipes.len();
    let mut scratch: Vec<Vec<Staged>> = (0..shards)
        .map(|_| Vec::with_capacity(PIPE_RESERVE))
        .collect();
    let mut drained_to: Vec<u64> = vec![0; shards];
    let mut encode_buf: Vec<u8> = Vec::with_capacity(256 * RECORD_LEN);
    let mut flush_handled = 0u64;
    let mut rotate_handled = 0u64;
    // Bytes appended to the active segment; the barrier target.
    let mut file_bytes = 0u64;
    // Durable-prefix tap, cached; re-read only when the generation bumps.
    let mut tap: Option<Arc<dyn DurableTap>> = None;
    let mut tap_seen = 0u64;

    // A short fsync reports success without covering everything the
    // syncer appended, so a single `sync` call is not a barrier — this
    // loop is. It retries until the durable watermark reaches `target`;
    // a barrier that cannot make progress is a dead disk.
    fn barrier(wal: &Wal, file: &mut Box<dyn WalFile>, target: u64) -> Result<(), WalIoError> {
        for _ in 0..64 {
            let idx = wal.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
            if file.sync(idx)? >= target {
                return Ok(());
            }
        }
        Err(WalIoError::Crashed)
    }

    let result = (|| -> Result<(), WalIoError> {
        loop {
            // Read control targets BEFORE draining: anything staged before
            // a flush/rotate/shutdown request is then guaranteed drained
            // in the pass that services it.
            let flush_target = wal.flush_req.load(Ordering::SeqCst);
            let rotate_target = wal.rotate_req.load(Ordering::SeqCst);
            let shutting = wal.shutdown_flag.load(Ordering::SeqCst);

            let mut total = drain(wal, &mut scratch, &mut drained_to);
            let want_flush = flush_target > flush_handled;
            let want_rotate = rotate_target > rotate_handled;

            if total == 0 && !want_flush && !want_rotate && !shutting {
                // Publish idleness, then drain once more before parking:
                // a `stage` that read the flag as `false` (and so skipped
                // its wake) pushed before that read, and the SeqCst order
                // push → load(false) → store(true) → re-drain guarantees
                // this pass sees its record. A stage that reads `true`
                // notifies through `wake_mu`. Either way no record waits
                // on the 500us timeout backstop.
                wal.syncer_idle.store(true, Ordering::SeqCst);
                total = drain(wal, &mut scratch, &mut drained_to);
                if total == 0 {
                    let guard = lock_unpoisoned(&wal.wake_mu);
                    let mut guard = if *guard {
                        guard
                    } else {
                        wal.wake_cv
                            .wait_timeout(guard, Duration::from_micros(500))
                            .unwrap_or_else(PoisonError::into_inner)
                            .0
                    };
                    *guard = false;
                    wal.syncer_idle.store(false, Ordering::SeqCst);
                    continue;
                }
                wal.syncer_idle.store(false, Ordering::SeqCst);
            }

            // Group mode: linger for a fuller batch, but never while a
            // flush, rotation or shutdown is waiting on us.
            if wal.cfg.sync == SyncPolicy::Group
                && total > 0
                && total < wal.cfg.fsync_batch_size
                && !want_flush
                && !want_rotate
                && !shutting
            {
                let deadline = Instant::now() + Duration::from_micros(wal.cfg.fsync_wait_us);
                while total < wal.cfg.fsync_batch_size {
                    let now = Instant::now();
                    if now >= deadline
                        || wal.flush_req.load(Ordering::SeqCst) > flush_handled
                        || wal.shutdown_flag.load(Ordering::SeqCst)
                    {
                        break;
                    }
                    let wait = (deadline - now).min(Duration::from_micros(50));
                    let guard = lock_unpoisoned(&wal.wake_mu);
                    let mut guard = wal
                        .wake_cv
                        .wait_timeout(guard, wait)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                    *guard = false;
                    drop(guard);
                    total = drain(wal, &mut scratch, &mut drained_to);
                }
            }

            if total > 0 {
                match wal.cfg.sync {
                    SyncPolicy::Always => {
                        // One record, one append, one fsync, one ack.
                        for s in 0..shards {
                            for i in 0..scratch[s].len() {
                                let rec = scratch[s][i];
                                encode_buf.clear();
                                let lsn = wal.counters.next_lsn.fetch_add(1, Ordering::Relaxed);
                                encode_record(&to_record(&rec, lsn), &mut encode_buf);
                                file.append(lsn, &encode_buf)?;
                                file_bytes += encode_buf.len() as u64;
                                barrier(wal, &mut file, file_bytes)?;
                                wal.counters.durable_lsn.store(lsn + 1, Ordering::Relaxed);
                                note_appended(wal, 1);
                                wal.durable[s].fetch_add(1, Ordering::Release);
                                wal.ack_cv.notify_all();
                            }
                        }
                    }
                    SyncPolicy::Group | SyncPolicy::Off => {
                        encode_buf.clear();
                        let first_lsn = wal
                            .counters
                            .next_lsn
                            .fetch_add(total as u64, Ordering::Relaxed);
                        let mut lsn = first_lsn;
                        for recs in &scratch {
                            for rec in recs {
                                encode_record(&to_record(rec, lsn), &mut encode_buf);
                                lsn += 1;
                            }
                        }
                        file.append(first_lsn, &encode_buf)?;
                        file_bytes += encode_buf.len() as u64;
                        wal.counters.batches.fetch_add(1, Ordering::Relaxed);
                        note_appended(wal, total as u64);
                        if wal.cfg.sync == SyncPolicy::Group {
                            barrier(wal, &mut file, file_bytes)?;
                            wal.counters.durable_lsn.store(lsn, Ordering::Relaxed);
                        }
                        for s in 0..shards {
                            wal.durable[s].fetch_max(drained_to[s], Ordering::Release);
                        }
                        wal.ack_cv.notify_all();
                    }
                }
                // The pass's records are now inside the durable prefix
                // (or, under `off`, appended): hand them to the tap
                // before the scratch is recycled.
                let gen = wal.tap_gen.load(Ordering::Acquire);
                if gen != tap_seen {
                    tap = lock_unpoisoned(&wal.tap).clone();
                    tap_seen = gen;
                }
                if let Some(t) = &tap {
                    for (s, recs) in scratch.iter().enumerate() {
                        if !recs.is_empty() {
                            t.publish(s as u32, recs);
                        }
                    }
                }
                for recs in &mut scratch {
                    recs.clear();
                }
            }

            if want_flush {
                // Group/Always already synced everything they appended;
                // Off (and an empty pass) still owes the barrier.
                if wal.cfg.sync == SyncPolicy::Off || total == 0 {
                    barrier(wal, &mut file, file_bytes)?;
                }
                wal.counters.durable_lsn.store(
                    wal.counters.next_lsn.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                wal.counters.flushes.fetch_add(1, Ordering::Relaxed);
                flush_handled = flush_target;
                wal.flush_done.store(flush_target, Ordering::SeqCst);
                wal.ack_cv.notify_all();
            }

            if want_rotate {
                file.close()?;
                let next_gen = {
                    let segs = lock_unpoisoned(&wal.segments);
                    // A missing active segment is unrecoverable state;
                    // degrade to Crashed rather than panic the syncer.
                    match segs.last() {
                        Some(&g) => g + 1,
                        None => return Err(WalIoError::Crashed),
                    }
                };
                file = wal
                    .cfg
                    .backend
                    .open(&segment_path(&wal.dir, next_gen))
                    .map_err(WalIoError::Io)?;
                lock_unpoisoned(&wal.segments).push(next_gen);
                file_bytes = 0;
                wal.counters.rotations.fetch_add(1, Ordering::Relaxed);
                rotate_handled = rotate_target;
                wal.rotate_done.store(rotate_target, Ordering::SeqCst);
                wal.ack_cv.notify_all();
            }

            if shutting {
                file.close()?;
                return Ok(());
            }

            // `off` paces itself: no ack ever waits on this thread, so
            // spinning the drain loop only fights stagers for the pipe
            // mutexes. A short sleep lets records accumulate (well under
            // PIPE_RESERVE at any realistic rate) and turns the next
            // pass into one big append. Group/Always are paced by the
            // fsync itself. FLUSH pays at most this much extra latency.
            if wal.cfg.sync == SyncPolicy::Off && total > 0 {
                thread::sleep(Duration::from_micros(50));
            }
        }
    })();

    if result.is_err() {
        let _ = wal.poison();
    }
    // Wake anyone still parked, success or crash.
    wal.ack_cv.notify_all();
}

fn drain(wal: &Wal, scratch: &mut [Vec<Staged>], drained_to: &mut [u64]) -> usize {
    let mut total = 0;
    for (s, slot) in scratch.iter_mut().enumerate() {
        let mut p = lock_unpoisoned(&wal.pipes[s]);
        if !p.records.is_empty() {
            if slot.is_empty() {
                // Swap the empty scratch in; the pipe keeps its capacity.
                std::mem::swap(&mut p.records, slot);
            } else {
                slot.append(&mut p.records);
            }
        }
        drained_to[s] = p.staged;
        total += slot.len();
    }
    total
}

fn to_record(rec: &Staged, lsn: u64) -> WalRecord {
    WalRecord {
        shard: rec.shard,
        seq: rec.seq,
        lsn,
        kind: rec.kind,
        key: rec.key,
        value: rec.value,
        exp: rec.exp,
    }
}

fn note_appended(wal: &Wal, n: u64) {
    wal.counters.appended.fetch_add(n, Ordering::Relaxed);
    wal.counters
        .bytes
        .fetch_add(n * RECORD_LEN as u64, Ordering::Relaxed);
    wal.counters
        .since_checkpoint
        .fetch_add(n, Ordering::Relaxed);
}
