//! Allocation budget for the WAL-enabled hot path.
//!
//! PR 4 made the request hot path allocation-free; durability must not
//! give that back. The staging side of group commit is two mutex ops, a
//! push into retained capacity and a condvar wake — and the ack wait is
//! a condvar sleep. None of it may allocate once warm, *with a live
//! syncer thread draining the pipes* (the drain swaps buffers with the
//! staging side, so both sides' capacities must stabilize).
//!
//! Same counting-allocator pattern as `crates/optilock/tests/alloc_budget.rs`:
//! a per-thread counter, so the syncer thread's own (amortized, off-path)
//! allocations do not perturb the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use gocc_wal::{Staged, SyncPolicy, Wal, WalBackend, WalConfig, WalKind};

struct CountingAllocator;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only adds bookkeeping.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the allocator can be called while this thread's TLS is
        // being torn down, where `with` would abort the process.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

fn stage_put(wal: &Wal, seq: u64) -> gocc_wal::WalTicket {
    wal.stage(Staged {
        shard: 0,
        seq,
        kind: WalKind::Put,
        key: seq % 64,
        value: seq,
        exp: 0,
    })
}

fn measure(sync: SyncPolicy, iters: u64) -> u64 {
    let dir = std::env::temp_dir().join(format!(
        "gocc-wal-alloc-{}-{}",
        sync.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = WalConfig {
        sync,
        fsync_batch_size: 8,
        fsync_wait_us: 20,
        checkpoint_every: 0,
        backend: WalBackend::Real,
    };
    let (wal, _) = Wal::open(&dir, 1, config).unwrap();
    let mut seq = 0u64;
    // Warmup: pipe and syncer scratch buffers ping-pong via mem::swap;
    // both start at PIPE_RESERVE capacity but condvar/mutex internals and
    // lazily-grown syncer state still need a shakeout pass.
    for _ in 0..4096 {
        seq += 1;
        let t = stage_put(&wal, seq);
        wal.wait(t).unwrap();
    }
    wal.flush().unwrap();
    let before = allocations_on_this_thread();
    for i in 0..iters {
        seq += 1;
        let t = stage_put(&wal, seq);
        wal.wait(t).unwrap();
        // Under sync=off the wait is a no-op, so a closed loop with zero
        // per-op work outruns the syncer without bound — something no
        // real caller (which does network I/O per op) can do. Flush
        // periodically to keep the backlog inside the pipes' retained
        // capacity; the flush barrier is itself part of the measured
        // surface (the FLUSH verb rides on it).
        if i % 256 == 255 {
            wal.flush().unwrap();
        }
    }
    let allocs = allocations_on_this_thread() - before;
    wal.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    allocs
}

#[test]
fn staging_with_sync_off_does_not_allocate() {
    let allocs = measure(SyncPolicy::Off, 20_000);
    assert_eq!(
        allocs, 0,
        "stage+ack with sync=off must be allocation-free after warmup"
    );
}

#[test]
fn staging_with_group_commit_does_not_allocate() {
    let allocs = measure(SyncPolicy::Group, 5_000);
    assert_eq!(
        allocs, 0,
        "stage+wait through the group-commit barrier must be allocation-free after warmup"
    );
}
