//! Fuzz-style suites for the WAL record decoder, mirroring the
//! `crates/wire` decoder corpora.
//!
//! The contract: for *any* byte stream, [`RecordBuf`] either yields a
//! complete, checksum-verified record or returns `Err` — it never
//! panics, never loops, and never reads out of bounds. And because every
//! record byte is covered by the CRC, **every** single-byte (indeed
//! single-bit) mutation of a valid record must be rejected, not merely
//! most of them — that rejection is what recovery's torn-tail detection
//! is built on.

use gocc_telemetry::SplitMix64;
use gocc_wal::{encode_record, RecordBuf, RecordError, WalKind, WalRecord, RECORD_LEN};

/// A deterministic pool of valid records covering every kind.
fn sample_record(rng: &mut SplitMix64) -> WalRecord {
    WalRecord {
        shard: rng.below(64) as u32,
        seq: rng.next_u64(),
        lsn: rng.next_u64(),
        kind: match rng.below(3) {
            0 => WalKind::Put,
            1 => WalKind::Del,
            _ => WalKind::PutVal,
        },
        key: rng.next_u64(),
        value: rng.next_u64(),
        exp: rng.next_u64(),
    }
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = SplitMix64::new(0x0A15_C0DE);
    let mut rb = RecordBuf::new();
    let mut chunk = Vec::new();
    for _ in 0..20_000 {
        chunk.clear();
        for _ in 0..rng.below_usize(96) {
            chunk.push(rng.next_u64() as u8);
        }
        rb.extend(&chunk);
        // Any result is acceptable; the process not panicking is the test.
        if rb.next_record().is_err() {
            rb = RecordBuf::new();
        }
    }
}

#[test]
fn every_truncation_of_a_valid_record_is_incomplete() {
    let mut rng = SplitMix64::new(42);
    let mut wire = Vec::new();
    for _ in 0..500 {
        wire.clear();
        let rec = sample_record(&mut rng);
        encode_record(&rec, &mut wire);
        assert_eq!(wire.len(), RECORD_LEN);
        for cut in 0..wire.len() {
            let mut rb = RecordBuf::new();
            rb.extend(&wire[..cut]);
            assert_eq!(
                rb.next_record(),
                Ok(None),
                "truncation at {cut} must read as incomplete, not decode"
            );
            assert_eq!(rb.pending(), cut, "nothing may be consumed");
        }
        let mut rb = RecordBuf::new();
        rb.extend(&wire);
        assert_eq!(
            rb.next_record(),
            Ok(Some(rec)),
            "sanity: full record decodes"
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected_by_the_checksum() {
    let mut rng = SplitMix64::new(7);
    let mut wire = Vec::new();
    for _ in 0..200 {
        wire.clear();
        let rec = sample_record(&mut rng);
        encode_record(&rec, &mut wire);
        for byte in 0..RECORD_LEN {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[byte] ^= 1 << bit;
                let mut rb = RecordBuf::new();
                rb.extend(&mutated);
                let got = rb.next_record();
                assert!(
                    got.is_err(),
                    "bit {bit} of byte {byte} flipped yet decoded: {got:?}"
                );
                // CRC-32 detects every single-bit error, so the checksum —
                // checked first — is always the failure the caller sees.
                assert_eq!(got, Err(RecordError::BadCrc));
            }
        }
    }
}

#[test]
fn torn_tail_after_a_valid_stream_stops_cleanly() {
    // A stream of valid records, then a seeded partial record, fed in
    // seeded chunk sizes. The decoder must yield exactly the valid
    // prefix, then report incompleteness at the right offset forever.
    let mut rng = SplitMix64::new(0x0513);
    for _ in 0..50 {
        let n = 1 + rng.below_usize(40);
        let mut wire = Vec::new();
        let mut recs = Vec::new();
        for _ in 0..n {
            let rec = sample_record(&mut rng);
            encode_record(&rec, &mut wire);
            recs.push(rec);
        }
        let torn = 1 + rng.below_usize(RECORD_LEN - 1);
        let tail = sample_record(&mut rng);
        let before = wire.len();
        encode_record(&tail, &mut wire);
        wire.truncate(before + torn);

        let mut rb = RecordBuf::new();
        let mut seen = 0usize;
        for chunk in wire.chunks(1 + rng.below_usize(17)) {
            rb.extend(chunk);
            while let Ok(Some(rec)) = rb.next_record() {
                assert_eq!(rec, recs[seen]);
                seen += 1;
            }
        }
        assert_eq!(seen, n, "every whole record surfaced");
        assert_eq!(rb.next_record(), Ok(None), "torn tail reads as incomplete");
        assert_eq!(rb.offset(), before as u64, "offset marks the torn record");
        assert_eq!(rb.pending(), torn);
    }
}

#[test]
fn bit_flip_mid_stream_stops_at_the_flip_not_before() {
    let mut rng = SplitMix64::new(0xBEEF);
    for _ in 0..100 {
        let n = 2 + rng.below_usize(30);
        let mut wire = Vec::new();
        for _ in 0..n {
            encode_record(&sample_record(&mut rng), &mut wire);
        }
        let victim = rng.below_usize(n);
        let idx = victim * RECORD_LEN + rng.below_usize(RECORD_LEN);
        wire[idx] ^= 1 << rng.below(8);

        let mut rb = RecordBuf::new();
        rb.extend(&wire);
        let mut seen = 0usize;
        loop {
            match rb.next_record() {
                Ok(Some(_)) => seen += 1,
                Ok(None) => break,
                Err(_) => break,
            }
        }
        assert_eq!(seen, victim, "decode stops exactly at the corrupt record");
        assert_eq!(rb.offset(), (victim * RECORD_LEN) as u64);
    }
}
