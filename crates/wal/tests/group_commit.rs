//! End-to-end `Wal` behavior: group commit acks, flush barriers,
//! checkpoint rotation, and the acked-writes-survive invariant under
//! seeded crashes — all against the simulated durable-prefix backend, so
//! every "kill -9" lands at a reproducible byte.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use gocc_faultplane::{StorageFaultPlan, StorageMix};
use gocc_wal::{
    CheckpointImage, ShardImage, Staged, SyncPolicy, Wal, WalBackend, WalConfig, WalKind,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-wal-gc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn put(shard: u32, seq: u64, key: u64, value: u64) -> Staged {
    Staged {
        shard,
        seq,
        kind: WalKind::Put,
        key,
        value,
        exp: 0,
    }
}

fn cfg(sync: SyncPolicy, backend: WalBackend) -> WalConfig {
    WalConfig {
        sync,
        fsync_batch_size: 8,
        fsync_wait_us: 100,
        checkpoint_every: 0,
        backend,
    }
}

#[test]
fn staged_records_survive_graceful_restart_under_every_policy() {
    for sync in [SyncPolicy::Off, SyncPolicy::Group, SyncPolicy::Always] {
        let dir = tmp(&format!("restart-{}", sync.name()));
        let (wal, rec) = Wal::open(&dir, 2, cfg(sync, WalBackend::Real)).unwrap();
        assert!(rec.shards.iter().all(|s| s.entries.is_empty()));
        for i in 0..100u64 {
            let t = wal.stage(put((i % 2) as u32, i / 2 + 1, i, i * 10));
            wal.wait(t).unwrap();
        }
        wal.shutdown();
        let (wal2, rec2) = Wal::open(&dir, 2, cfg(sync, WalBackend::Real)).unwrap();
        let total: usize = rec2.shards.iter().map(|s| s.entries.len()).sum();
        assert_eq!(total, 100, "policy {}", sync.name());
        assert_eq!(rec2.stats.replayed, 100);
        for s in &rec2.shards {
            for &(k, v, _) in &s.entries {
                assert_eq!(v, k * 10);
            }
        }
        wal2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn flush_is_a_barrier_even_with_sync_off() {
    let dir = tmp("flush-off");
    let plan = Arc::new(StorageFaultPlan::new(5, StorageMix::default()));
    let (wal, _) = Wal::open(&dir, 1, cfg(SyncPolicy::Off, WalBackend::Sim(plan))).unwrap();
    for i in 0..50u64 {
        let t = wal.stage(put(0, i + 1, i, i));
        wal.wait(t).unwrap(); // off: immediate
    }
    let lsn = wal.flush().unwrap();
    assert!(lsn >= 50, "flush covers everything staged: {lsn}");
    assert!(wal.fsyncs() >= 1, "flush must really fsync");
    // Simulate death with no close: only the durable prefix survives.
    // The sim backend materializes on crash/close; a flushed file's
    // durable watermark covers all 50 records, so force-materialize by
    // dropping without shutdown and re-reading what close would write.
    wal.shutdown();
    let (_, rec) = Wal::open(&dir, 1, cfg(SyncPolicy::Off, WalBackend::Real)).unwrap();
    assert_eq!(rec.shards[0].entries.len(), 50);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_batches_many_records_per_fsync() {
    let dir = tmp("batching");
    let (wal, _) = Wal::open(&dir, 4, cfg(SyncPolicy::Group, WalBackend::Real)).unwrap();
    let wal = &wal;
    // 8 writer threads, closed loop: the syncer should coalesce their
    // records into far fewer fsyncs than records.
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            scope.spawn(move || {
                for i in 0..200u64 {
                    let shard = (t % 4) as u32;
                    let ticket = wal.stage(put(shard, t * 1000 + i, t * 1000 + i, i));
                    wal.wait(ticket).unwrap();
                }
            });
        }
    });
    assert_eq!(wal.appended(), 1600);
    let fsyncs = wal.fsyncs();
    assert!(
        fsyncs < 1600 / 2,
        "group commit must amortize: {fsyncs} fsyncs for 1600 records"
    );
    wal.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_and_recovery_uses_it() {
    let dir = tmp("ckpt");
    let (wal, _) = Wal::open(&dir, 1, cfg(SyncPolicy::Group, WalBackend::Real)).unwrap();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for i in 0..300u64 {
        let t = wal.stage(put(0, i + 1, i % 40, i));
        oracle.insert(i % 40, i);
        wal.wait(t).unwrap();
    }
    // Rotate, snapshot the oracle, commit the checkpoint.
    let (base_gen, retired) = wal.begin_checkpoint().unwrap();
    assert!(!retired.is_empty());
    let image = CheckpointImage {
        base_gen,
        shards: vec![ShardImage {
            entries: oracle.iter().map(|(&k, &v)| (k, v, 0)).collect(),
            seq: 300,
            now: 0,
        }],
    };
    wal.finish_checkpoint(&image, &retired).unwrap();
    assert_eq!(wal.checkpoints(), 1);
    // Tail after the checkpoint.
    for i in 300..350u64 {
        let t = wal.stage(put(0, i + 1, i % 40, i));
        oracle.insert(i % 40, i);
        wal.wait(t).unwrap();
    }
    wal.shutdown();

    let (_, rec) = Wal::open(&dir, 1, cfg(SyncPolicy::Group, WalBackend::Real)).unwrap();
    assert!(rec.stats.checkpoint_loaded);
    assert_eq!(rec.stats.checkpoint_entries, 40);
    assert_eq!(rec.stats.replayed, 50, "only the tail replays");
    assert_eq!(rec.shards[0].seq, 350);
    let got: HashMap<u64, u64> = rec.shards[0]
        .entries
        .iter()
        .map(|&(k, v, _)| (k, v))
        .collect();
    assert_eq!(got, oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole invariant, attacked with seeded crashes: after any
/// crash, every acked record's key maps to its acked value or a later
/// *issued* value for that key — never a lost ack, never half a record.
#[test]
fn acked_records_survive_seeded_crashes() {
    let mut crashes_seen = 0;
    for seed in 0..24u64 {
        for sync in [SyncPolicy::Group, SyncPolicy::Always] {
            let dir = tmp(&format!("crash-{seed}-{}", sync.name()));
            let plan = Arc::new(StorageFaultPlan::new(
                seed,
                StorageMix {
                    crash_per_append: 0.004,
                    torn_given_crash: 0.5,
                    short_fsync: 0.2,
                    ckpt_crash: 0.0,
                },
            ));
            let mut config = cfg(sync, WalBackend::Sim(plan));
            config.fsync_wait_us = 10;
            let (wal, _) = Wal::open(&dir, 2, config).unwrap();

            // Sequential writer, disjoint value history per key.
            let mut acked: HashMap<u64, u64> = HashMap::new();
            let mut issued: HashMap<u64, Vec<u64>> = HashMap::new();
            let mut crashed = false;
            for i in 0..1200u64 {
                let key = i % 16;
                let value = i + 1;
                let shard = (key % 2) as u32;
                issued.entry(key).or_default().push(value);
                let t = wal.stage(put(shard, i + 1, key, value));
                match wal.wait(t) {
                    Ok(()) => {
                        acked.insert(key, value);
                    }
                    Err(_) => {
                        crashed = true;
                        break;
                    }
                }
            }
            wal.shutdown();
            if crashed {
                crashes_seen += 1;
            }

            let (_, rec) = Wal::open(&dir, 2, cfg(sync, WalBackend::Real)).unwrap();
            let mut recovered: HashMap<u64, u64> = HashMap::new();
            for s in &rec.shards {
                for &(k, v, _) in &s.entries {
                    assert!(
                        issued.get(&k).is_some_and(|vals| vals.contains(&v)),
                        "seed {seed}: recovered ({k} -> {v}) was never issued"
                    );
                    recovered.insert(k, v);
                }
            }
            for (&key, &val) in &acked {
                let got = recovered.get(&key).copied();
                let ok = match got {
                    None => false,
                    // The recovered value must be the acked one or a later
                    // issued value (an unacked successor that made it).
                    Some(v) => v >= val && issued[&key].contains(&v),
                };
                assert!(
                    ok,
                    "seed {seed} sync {}: acked ({key} -> {val}) lost, got {got:?}",
                    sync.name()
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(
        crashes_seen >= 5,
        "the schedule must actually kill some runs: {crashes_seen}"
    );
}

/// Crashes injected at every checkpoint phase leave a recoverable store.
#[test]
fn checkpoint_phase_crashes_are_recoverable() {
    let mut ckpt_crashes = 0;
    for seed in 0..16u64 {
        let dir = tmp(&format!("ckptcrash-{seed}"));
        let plan = Arc::new(StorageFaultPlan::new(
            seed,
            StorageMix {
                crash_per_append: 0.0,
                torn_given_crash: 0.0,
                short_fsync: 0.0,
                ckpt_crash: 0.35,
            },
        ));
        let (wal, _) = Wal::open(&dir, 1, cfg(SyncPolicy::Group, WalBackend::Sim(plan))).unwrap();
        let mut acked: HashMap<u64, u64> = HashMap::new();
        let mut seq = 0u64;
        let mut interrupted = false;
        for round in 0..6u64 {
            for i in 0..40u64 {
                seq += 1;
                let key = i % 20;
                let value = round * 100 + i + 1;
                let t = wal.stage(put(0, seq, key, value));
                if wal.wait(t).is_err() {
                    interrupted = true;
                    break;
                }
                acked.insert(key, value);
            }
            if interrupted {
                break;
            }
            let (base_gen, retired) = match wal.begin_checkpoint() {
                Ok(x) => x,
                Err(_) => {
                    interrupted = true;
                    break;
                }
            };
            let image = CheckpointImage {
                base_gen,
                shards: vec![ShardImage {
                    entries: acked.iter().map(|(&k, &v)| (k, v, 0)).collect(),
                    seq,
                    now: 0,
                }],
            };
            if wal.finish_checkpoint(&image, &retired).is_err() {
                interrupted = true;
                ckpt_crashes += 1;
                break;
            }
        }
        wal.shutdown();

        // However the run died, the acked map must recover exactly:
        // writes here are acked-before-next, so recovery ≥ acked, and
        // values are unique per issue so equality is checkable per key.
        let (_, rec) = Wal::open(&dir, 1, cfg(SyncPolicy::Group, WalBackend::Real)).unwrap();
        let recovered: HashMap<u64, u64> = rec.shards[0]
            .entries
            .iter()
            .map(|&(k, v, _)| (k, v))
            .collect();
        for (&k, &v) in &acked {
            let got = recovered.get(&k).copied();
            assert!(
                got == Some(v) || got > Some(v),
                "seed {seed}: acked ({k} -> {v}) lost after ckpt crash (interrupted={interrupted}), got {got:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        ckpt_crashes >= 3,
        "schedule never hit a checkpoint: {ckpt_crashes}"
    );
}
