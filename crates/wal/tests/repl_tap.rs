//! The replication contract at the WAL layer: the durable-prefix tap
//! feeds exactly what acks promise, and a checkpoint landing in the
//! middle of a replica resync never breaks the
//! `checkpoint image + durable tail = recovered state` identity.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use gocc_faultplane::{StorageFaultPlan, StorageMix};
use gocc_wal::{
    CheckpointImage, DurableTap, ShardImage, Staged, SyncPolicy, Wal, WalBackend, WalConfig,
    WalKind,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gocc-wal-tap-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn put(shard: u32, seq: u64, key: u64, value: u64) -> Staged {
    Staged {
        shard,
        seq,
        kind: WalKind::Put,
        key,
        value,
        exp: 0,
    }
}

fn cfg(sync: SyncPolicy, backend: WalBackend) -> WalConfig {
    WalConfig {
        sync,
        fsync_batch_size: 8,
        fsync_wait_us: 50,
        checkpoint_every: 0,
        backend,
    }
}

/// Collects everything published, per shard.
#[derive(Default)]
struct Collector {
    by_shard: Mutex<HashMap<u32, Vec<Staged>>>,
}

impl DurableTap for Collector {
    fn publish(&self, shard: u32, records: &[Staged]) {
        self.by_shard
            .lock()
            .unwrap()
            .entry(shard)
            .or_default()
            .extend_from_slice(records);
    }
}

impl Collector {
    /// Shard `s`'s records sorted into commit (`seq`) order — the same
    /// reordering the replication feed performs.
    fn commit_order(&self, s: u32) -> Vec<Staged> {
        let mut v = self
            .by_shard
            .lock()
            .unwrap()
            .get(&s)
            .cloned()
            .unwrap_or_default();
        v.sort_by_key(|r| r.seq);
        v
    }
}

#[test]
fn tap_sees_every_acked_record_under_every_policy() {
    for sync in [SyncPolicy::Off, SyncPolicy::Group, SyncPolicy::Always] {
        let dir = tmp(&format!("ack-{}", sync.name()));
        let (wal, _) = Wal::open(&dir, 2, cfg(sync, WalBackend::Real)).unwrap();
        let tap = Arc::new(Collector::default());
        wal.set_tap(Arc::clone(&tap) as Arc<dyn DurableTap>);
        for i in 0..300u64 {
            let t = wal.stage(put((i % 2) as u32, i / 2 + 1, i, i * 3));
            wal.wait(t).unwrap();
        }
        // Graceful shutdown is a barrier; after it the tap must hold the
        // complete, gap-free history of both shards.
        wal.shutdown();
        for s in 0..2u32 {
            let recs = tap.commit_order(s);
            assert_eq!(recs.len(), 150, "policy {}", sync.name());
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(r.seq, i as u64 + 1, "gap-free seq on shard {s}");
                assert_eq!(r.value, r.key * 3);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite: a checkpoint that lands mid-replication-resync. The
/// replica's resync reads `(image, image.seq)` and then follows the
/// durable stream; records keep committing while the checkpoint's
/// rotate/snapshot/truncate sequence runs. Both the primary's own
/// recovery and the replica reconstruction (image + tapped tail) must
/// converge on the same state, under both ack policies.
#[test]
fn checkpoint_landing_mid_resync_keeps_recovery_and_tap_coherent() {
    for sync in [SyncPolicy::Group, SyncPolicy::Always] {
        let dir = tmp(&format!("midresync-{}", sync.name()));
        let (wal, _) = Wal::open(&dir, 1, cfg(sync, WalBackend::Real)).unwrap();
        let tap = Arc::new(Collector::default());
        wal.set_tap(Arc::clone(&tap) as Arc<dyn DurableTap>);

        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut seq = 0u64;
        let mut write = |wal: &Wal, oracle: &mut HashMap<u64, u64>, n: u64| {
            for _ in 0..n {
                seq += 1;
                let key = seq % 32;
                let t = wal.stage(put(0, seq, key, seq));
                oracle.insert(key, seq);
                wal.wait(t).unwrap();
            }
            seq
        };

        write(&wal, &mut oracle, 200);
        // Rotate first (begin), then — before the snapshot commits —
        // more records land: exactly the window a concurrent resync
        // lives in. The snapshot is taken at the rotation point.
        let (base_gen, retired) = wal.begin_checkpoint().unwrap();
        assert!(!retired.is_empty());
        let image = CheckpointImage {
            base_gen,
            shards: vec![ShardImage {
                entries: oracle.iter().map(|(&k, &v)| (k, v, 0)).collect(),
                seq: 200,
                now: 0,
            }],
        };
        let snap_entries = image.shards[0].entries.clone();
        write(&wal, &mut oracle, 50);
        wal.finish_checkpoint(&image, &retired).unwrap();
        let final_seq = write(&wal, &mut oracle, 50);
        wal.shutdown();

        // Primary-side recovery: new checkpoint + tail only.
        let (wal2, rec) = Wal::open(&dir, 1, cfg(sync, WalBackend::Real)).unwrap();
        wal2.shutdown();
        assert!(rec.stats.checkpoint_loaded, "policy {}", sync.name());
        assert_eq!(rec.shards[0].seq, final_seq);
        let recovered: HashMap<u64, u64> = rec.shards[0]
            .entries
            .iter()
            .map(|&(k, v, _)| (k, v))
            .collect();
        assert_eq!(recovered, oracle);

        // Replica-side reconstruction: the image at seq 200 plus every
        // tapped record with a later seq, applied in commit order.
        let mut replica: HashMap<u64, u64> = snap_entries.iter().map(|&(k, v, _)| (k, v)).collect();
        let tail: Vec<Staged> = tap
            .commit_order(0)
            .into_iter()
            .filter(|r| r.seq > 200)
            .collect();
        assert_eq!(tail.len(), 100, "tap covers the whole post-image tail");
        for r in &tail {
            replica.insert(r.key, r.value);
        }
        assert_eq!(replica, oracle, "image + durable tail = primary state");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Seeded crashes during the same interleaving: whatever the schedule
/// kills, every acked record is inside the tap's published prefix —
/// a replica fed from the tap can never be asked to forget an ack.
#[test]
fn seeded_crashes_never_ack_outside_the_tapped_prefix() {
    let mut crashes = 0;
    for seed in 0..12u64 {
        for sync in [SyncPolicy::Group, SyncPolicy::Always] {
            let dir = tmp(&format!("crash-{seed}-{}", sync.name()));
            let plan = Arc::new(StorageFaultPlan::new(
                seed,
                StorageMix {
                    crash_per_append: 0.003,
                    torn_given_crash: 0.5,
                    short_fsync: 0.2,
                    ckpt_crash: 0.25,
                },
            ));
            let mut config = cfg(sync, WalBackend::Sim(plan));
            config.fsync_wait_us = 10;
            let (wal, _) = Wal::open(&dir, 1, config).unwrap();
            let tap = Arc::new(Collector::default());
            wal.set_tap(Arc::clone(&tap) as Arc<dyn DurableTap>);

            let mut acked_max = 0u64;
            let mut cache: HashMap<u64, u64> = HashMap::new();
            let mut seq = 0u64;
            'run: for round in 0..5u64 {
                for _ in 0..60u64 {
                    seq += 1;
                    let t = wal.stage(put(0, seq, seq % 16, seq));
                    cache.insert(seq % 16, seq);
                    if wal.wait(t).is_err() {
                        crashes += 1;
                        break 'run;
                    }
                    acked_max = seq;
                }
                let (base_gen, retired) = match wal.begin_checkpoint() {
                    Ok(x) => x,
                    Err(_) => {
                        crashes += 1;
                        break 'run;
                    }
                };
                let image = CheckpointImage {
                    base_gen,
                    shards: vec![ShardImage {
                        entries: cache.iter().map(|(&k, &v)| (k, v, 0)).collect(),
                        seq,
                        now: 0,
                    }],
                };
                // The mid-resync write between begin and finish.
                seq += 1;
                let t = wal.stage(put(0, seq, seq % 16, seq));
                cache.insert(seq % 16, seq);
                if wal.wait(t).is_err() {
                    crashes += 1;
                    break 'run;
                }
                acked_max = seq;
                if wal.finish_checkpoint(&image, &retired).is_err() {
                    crashes += 1;
                    break 'run;
                }
                let _ = round;
            }
            wal.shutdown();

            let tapped = tap.commit_order(0);
            // Acks release strictly after the barrier that also feeds
            // the tap, so the tap prefix must cover every acked seq.
            let covered: std::collections::HashSet<u64> = tapped.iter().map(|r| r.seq).collect();
            for s in 1..=acked_max {
                assert!(
                    covered.contains(&s),
                    "seed {seed} {}: acked seq {s} missing from tap (max {acked_max})",
                    sync.name()
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(crashes >= 4, "schedule must actually crash runs: {crashes}");
}
