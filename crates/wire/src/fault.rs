//! Injectable I/O faults: a [`FaultyStream`] wrapper that perturbs any
//! `Read + Write` transport according to a seeded
//! [`TransportFaultPlan`](gocc_faultplane::TransportFaultPlan).
//!
//! Four fault classes, mapped onto ordinary `io` surface so every consumer
//! exercises its real error-handling paths rather than special cases:
//!
//! * **short read** — the next read is truncated to a deterministic prefix
//!   of the caller's buffer, splitting frames across arbitrary boundaries;
//! * **short write** — likewise for writes, forcing partial-write loops;
//! * **stall** — the call fails with `WouldBlock`, indistinguishable from
//!   an empty socket (non-blocking consumers retry; blocking consumers
//!   treat it as a timeout tick);
//! * **reset** — the call fails with `ConnectionReset`, which must cost
//!   exactly that one connection.
//!
//! Fault decisions are pure functions of `(seed, stream id, call index)`,
//! so a given stream's schedule is independent of all other traffic.
//! Wrapping with [`FaultyStream::passthrough`] (or a `None` plan) is
//! transparent: production paths pay one branch.

use std::io::{self, Read, Write};
use std::sync::Arc;

use gocc_faultplane::{TransportFault, TransportFaultPlan};

/// A `Read + Write` transport with seeded fault injection in front.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: Option<Arc<TransportFaultPlan>>,
    stream: u64,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, drawing faults from `plan` under a fresh stream id.
    pub fn new(inner: S, plan: Arc<TransportFaultPlan>) -> Self {
        let stream = plan.next_stream_id();
        FaultyStream {
            inner,
            plan: Some(plan),
            stream,
        }
    }

    /// Wraps `inner` with no injection at all (one branch of overhead).
    pub fn passthrough(inner: S) -> Self {
        FaultyStream {
            inner,
            plan: None,
            stream: 0,
        }
    }

    /// [`FaultyStream::new`] when a plan is present, otherwise
    /// [`FaultyStream::passthrough`].
    pub fn maybe(inner: S, plan: Option<Arc<TransportFaultPlan>>) -> Self {
        match plan {
            Some(p) => FaultyStream::new(inner, p),
            None => FaultyStream::passthrough(inner),
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped transport, mutably (bypasses injection).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// This stream's id in the fault plan (0 for passthrough).
    #[must_use]
    pub fn stream_id(&self) -> u64 {
        self.stream
    }
}

fn injected(kind: io::ErrorKind, what: &'static str) -> io::Error {
    io::Error::new(kind, what)
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(plan) = &self.plan else {
            return self.inner.read(buf);
        };
        match plan.draw_read(self.stream) {
            Some(TransportFault::Reset) => {
                Err(injected(io::ErrorKind::ConnectionReset, "injected reset"))
            }
            Some(TransportFault::Stall) => {
                Err(injected(io::ErrorKind::WouldBlock, "injected stall"))
            }
            Some(TransportFault::ShortRead) if buf.len() > 1 => {
                let n = plan.chop(self.stream, buf.len());
                self.inner.read(&mut buf[..n])
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(plan) = &self.plan else {
            return self.inner.write(buf);
        };
        match plan.draw_write(self.stream) {
            Some(TransportFault::Reset) => {
                Err(injected(io::ErrorKind::ConnectionReset, "injected reset"))
            }
            Some(TransportFault::Stall) => {
                Err(injected(io::ErrorKind::WouldBlock, "injected stall"))
            }
            Some(TransportFault::ShortWrite) if buf.len() > 1 => {
                let n = plan.chop(self.stream, buf.len());
                self.inner.write(&buf[..n])
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_faultplane::TransportMix;

    /// In-memory duplex: reads from `input`, writes into `output`.
    #[derive(Default)]
    struct Pipe {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn plan(mix: TransportMix, seed: u64) -> Arc<TransportFaultPlan> {
        Arc::new(TransportFaultPlan::new(seed, mix))
    }

    #[test]
    fn passthrough_is_transparent() {
        let mut pipe = Pipe::default();
        pipe.input = io::Cursor::new(b"hello".to_vec());
        let mut fs = FaultyStream::passthrough(pipe);
        let mut buf = [0u8; 16];
        assert_eq!(fs.read(&mut buf).unwrap(), 5);
        assert_eq!(fs.write(b"world").unwrap(), 5);
        assert_eq!(fs.get_ref().output, b"world");
        assert_eq!(fs.stream_id(), 0);
    }

    #[test]
    fn short_reads_still_deliver_every_byte() {
        // 100% short-read: the payload arrives fragmented but complete and
        // in order — exactly what frame reassembly must cope with.
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut pipe = Pipe::default();
        pipe.input = io::Cursor::new(payload.clone());
        let p = plan(
            TransportMix {
                short_read: 1.0,
                ..TransportMix::default()
            },
            3,
        );
        let mut fs = FaultyStream::new(pipe, Arc::clone(&p));
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        let mut saw_partial = false;
        loop {
            match fs.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    saw_partial |= n < 64;
                    got.extend_from_slice(&buf[..n]);
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(got, payload, "fragmented but complete and in order");
        assert!(saw_partial, "chop must actually fragment the stream");
        assert!(p.total_injected() > 0);
    }

    #[test]
    fn short_writes_force_partial_write_loops() {
        let p = plan(
            TransportMix {
                short_write: 1.0,
                ..TransportMix::default()
            },
            4,
        );
        let mut fs = FaultyStream::new(Pipe::default(), p);
        let payload = vec![7u8; 300];
        // write_all must converge despite every write being chopped.
        fs.write_all(&payload).unwrap();
        assert_eq!(fs.get_ref().output, payload);
    }

    #[test]
    fn stalls_and_resets_surface_as_io_errors() {
        let p = plan(
            TransportMix {
                stall: 1.0,
                ..TransportMix::default()
            },
            5,
        );
        let mut fs = FaultyStream::new(Pipe::default(), p);
        let mut buf = [0u8; 8];
        assert_eq!(
            fs.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(
            fs.write(&buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );

        let p = plan(
            TransportMix {
                reset: 1.0,
                ..TransportMix::default()
            },
            6,
        );
        let mut fs = FaultyStream::new(Pipe::default(), p);
        assert_eq!(
            fs.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn same_seed_same_fault_schedule_per_stream() {
        let run = |seed: u64| {
            let p = plan(TransportMix::uniform(0.5), seed);
            let mut kinds = Vec::new();
            let mut fs = FaultyStream::new(Pipe::default(), Arc::clone(&p));
            let mut buf = [0u8; 32];
            for _ in 0..50 {
                kinds.push(fs.read(&mut buf).map_err(|e| e.kind()));
                kinds.push(fs.write(&buf).map_err(|e| e.kind()));
            }
            (kinds, p.counts())
        };
        assert_eq!(run(9), run(9), "replay-by-seed contract");
        assert_ne!(run(9).1, run(10).1, "different seeds must diverge");
    }
}
