//! Frame extraction and blocking frame IO.
//!
//! [`FrameBuf`] is the server side's incremental reassembly buffer: bytes
//! arrive in arbitrary chunks from a non-blocking socket, and
//! [`FrameBuf::next_frame`] hands back complete frame bodies without
//! copying them out. [`read_frame`]/[`write_frame`] are the blocking
//! client-side helpers.

use std::io::{self, Read, Write};

use crate::{WireError, MAX_FRAME};

/// Incremental frame reassembly over a byte stream.
///
/// Consumed bytes are compacted away lazily so steady-state operation
/// reuses one allocation.
///
/// An **oversized** frame (a well-formed header declaring more than
/// [`MAX_FRAME`] bytes) is reported once as [`WireError::TooLarge`] and
/// then *skipped*: the declared bytes are discarded as they arrive — never
/// buffered — and extraction resynchronizes at the next frame boundary.
/// The connection survives; only a structurally corrupt header (length 0)
/// is unrecoverable.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
    /// Bytes of an oversized frame body still to be discarded.
    skip: usize,
}

impl FrameBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        // Only pay the memmove once the dead prefix dominates.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Extracts the next complete frame body, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    /// [`WireError::TooLarge`] is returned *once* per oversized frame and
    /// is recoverable: the frame's declared bytes are discarded and
    /// subsequent calls resume at the next frame boundary.
    /// [`WireError::Malformed`] (length 0) is unrecoverable — there is no
    /// way to resynchronize a corrupt length prefix.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        if self.skip > 0 {
            self.discard_skipped();
            if self.skip > 0 {
                return Ok(None);
            }
        }
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 {
            return Err(WireError::Malformed("zero-length frame"));
        }
        if len > MAX_FRAME {
            // Consume the header, arm skip mode for the declared body, and
            // report the violation exactly once. The body is discarded as
            // it arrives, so an oversized frame costs no buffering.
            self.start += 4;
            self.skip = len;
            self.discard_skipped();
            return Err(WireError::TooLarge);
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body_start = self.start + 4;
        self.start = body_start + len;
        Ok(Some(&self.buf[body_start..body_start + len]))
    }

    fn discard_skipped(&mut self) {
        let eat = (self.buf.len() - self.start).min(self.skip);
        self.start += eat;
        self.skip -= eat;
        self.compact();
    }
}

/// Writes one already-encoded frame (or batch of frames) and flushes.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads exactly one frame body into `buf` (cleared first), blocking.
///
/// Returns `Ok(false)` on clean EOF at a frame boundary; mid-frame EOF and
/// invalid headers surface as `io::Error`.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid frame length {len}"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_request, Request};

    #[test]
    fn reassembles_across_arbitrary_chunking() {
        let mut wire = Vec::new();
        encode_request(&Request::Get { key: b"chunky" }, &mut wire);
        encode_request(&Request::Scan { limit: 5 }, &mut wire);
        // Feed one byte at a time.
        let mut fb = FrameBuf::new();
        let mut seen = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(body) = fb.next_frame().unwrap() {
                seen.push(body.to_vec());
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(
            crate::decode_request(&seen[0]).unwrap(),
            Request::Get { key: b"chunky" }
        );
        assert_eq!(
            crate::decode_request(&seen[1]).unwrap(),
            Request::Scan { limit: 5 }
        );
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn rejects_corrupt_headers() {
        let mut fb = FrameBuf::new();
        fb.extend(&[0, 0, 0, 0]);
        assert_eq!(
            fb.next_frame(),
            Err(WireError::Malformed("zero-length frame"))
        );
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(WireError::TooLarge));
    }

    #[test]
    fn oversized_frame_resynchronizes_at_next_boundary() {
        // A valid frame, then an oversized one (header + declared body),
        // then another valid frame, fed one byte at a time. The oversized
        // frame must surface TooLarge exactly once, its body must be
        // discarded as it arrives (never buffered), and both valid frames
        // must decode.
        let mut before = Vec::new();
        encode_request(&Request::Get { key: b"before" }, &mut before);
        let oversized_len = (MAX_FRAME + 3) as u32;
        let mut wire = before.clone();
        wire.extend_from_slice(&oversized_len.to_le_bytes());
        wire.resize(wire.len() + oversized_len as usize, 0xAB);
        let after_start = wire.len();
        encode_request(&Request::Scan { limit: 9 }, &mut wire);

        let mut fb = FrameBuf::new();
        let mut seen = Vec::new();
        let mut too_large = 0;
        for (i, &b) in wire.iter().enumerate() {
            fb.extend(&[b]);
            loop {
                match fb.next_frame() {
                    Ok(Some(body)) => seen.push(body.to_vec()),
                    Ok(None) => break,
                    Err(WireError::TooLarge) => too_large += 1,
                    Err(e) => panic!("unexpected error {e:?} at byte {i}"),
                }
            }
            // The oversized body must be discarded incrementally, never
            // accumulated: pending stays bounded by one small frame.
            assert!(fb.pending() <= 64, "buffered {} bytes", fb.pending());
            if i >= after_start {
                assert_eq!(too_large, 1, "TooLarge must fire before resync");
            }
        }
        assert_eq!(too_large, 1, "TooLarge must surface exactly once");
        assert_eq!(seen.len(), 2);
        assert_eq!(
            crate::decode_request(&seen[0]).unwrap(),
            Request::Get { key: b"before" }
        );
        assert_eq!(
            crate::decode_request(&seen[1]).unwrap(),
            Request::Scan { limit: 9 }
        );
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_skip_survives_chunked_delivery() {
        // Same scenario with coarse chunks, including chunks that span the
        // oversized body's end and the next frame's header.
        let mut wire = Vec::new();
        encode_request(
            &Request::Set {
                key: b"k",
                value: 1,
                ttl: 0,
            },
            &mut wire,
        );
        let oversized_len = (MAX_FRAME + 1000) as u32;
        wire.extend_from_slice(&oversized_len.to_le_bytes());
        wire.resize(wire.len() + oversized_len as usize, 0xCD);
        encode_request(&Request::Del { key: b"k" }, &mut wire);

        let mut fb = FrameBuf::new();
        let mut seen = Vec::new();
        let mut too_large = 0;
        for chunk in wire.chunks(striding_prime()) {
            fb.extend(chunk);
            loop {
                match fb.next_frame() {
                    Ok(Some(body)) => seen.push(body.to_vec()),
                    Ok(None) => break,
                    Err(WireError::TooLarge) => too_large += 1,
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
        }
        assert_eq!(too_large, 1);
        assert_eq!(seen.len(), 2);
        assert!(matches!(
            crate::decode_request(&seen[1]).unwrap(),
            Request::Del { .. }
        ));
    }

    fn striding_prime() -> usize {
        // A chunk size coprime to the frame sizes involved so chunk
        // boundaries drift across header/body boundaries.
        977
    }

    #[test]
    fn blocking_roundtrip_over_a_pipe() {
        let mut wire = Vec::new();
        encode_request(&Request::Stats, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut body = Vec::new();
        assert!(read_frame(&mut cursor, &mut body).unwrap());
        assert_eq!(crate::decode_request(&body).unwrap(), Request::Stats);
        assert!(!read_frame(&mut cursor, &mut body).unwrap(), "clean EOF");
    }

    #[test]
    fn midframe_eof_is_an_error() {
        let mut wire = Vec::new();
        encode_request(&Request::Get { key: b"k" }, &mut wire);
        wire.truncate(wire.len() - 1);
        let mut cursor = io::Cursor::new(wire);
        let mut body = Vec::new();
        assert!(read_frame(&mut cursor, &mut body).is_err());
    }

    #[test]
    fn compaction_preserves_partial_frames() {
        let mut wire = Vec::new();
        for i in 0..200u64 {
            encode_request(
                &Request::Set {
                    key: b"somewhat-long-key-for-compaction",
                    value: i,
                    ttl: 0,
                },
                &mut wire,
            );
        }
        let mut fb = FrameBuf::new();
        let mut count = 0;
        // Feed in 7-byte chunks so frames straddle every boundary and the
        // >4096-byte compaction threshold is crossed repeatedly.
        for chunk in wire.chunks(7) {
            fb.extend(chunk);
            while let Some(body) = fb.next_frame().unwrap() {
                assert!(matches!(
                    crate::decode_request(body).unwrap(),
                    Request::Set { .. }
                ));
                count += 1;
            }
        }
        assert_eq!(count, 200);
    }
}
