//! The `goccd` wire protocol: a hand-rolled length-prefixed binary frame
//! format for the cache service in `crates/server`.
//!
//! # Framing
//!
//! ```text
//! frame   := len:u32le body            (len = |body|, 1 ..= MAX_FRAME)
//! body    := opcode:u8 payload         (protocol v1)
//!          | MAGIC_V2 flags:u8 [deadline_us:u32le] opcode:u8 payload
//! ```
//!
//! Requests and responses share the framing; opcodes with the high bit set
//! are responses. Payloads are fixed-layout little-endian fields; keys are
//! length-prefixed byte strings (the server hashes them with `fnv1a` into
//! its word-oriented store). Decoding is zero-copy-ish: [`Request`] and
//! [`Response`] borrow key/string payloads straight out of the frame
//! buffer, and encoding appends to a caller-owned `Vec<u8>` so buffers are
//! reused across frames.
//!
//! # Protocol v2: deadline budgets
//!
//! A request body may be wrapped in a v2 envelope: a [`MAGIC_V2`] byte
//! (an opcode value no v1 request uses, so the versions coexist on one
//! connection), a flags byte, and — when flag bit 0 is set — a
//! client-supplied **deadline budget** in microseconds. The server
//! enforces the budget with cheap monotonic checks before and after the
//! storage call; an expired request is answered with
//! [`Response::DeadlineExceeded`] and is *never* executed against the
//! engine. [`decode_request_any`] accepts both versions; v1 frames decode
//! byte-for-byte as before.
//!
//! # Robustness contract
//!
//! [`decode_request`] / [`decode_response`] never panic: any input slice
//! either decodes to a complete, well-formed message or returns a
//! [`WireError`]. Payloads must be *exact* — trailing bytes, out-of-range
//! lengths, non-boolean flag bytes and invalid UTF-8 are all errors, so a
//! corrupted frame cannot silently alias a valid one. The seeded
//! fuzz-style suites in `tests/` hold the decoder to this.

mod fault;
mod frame;

pub use fault::FaultyStream;
pub use frame::{read_frame, write_frame, FrameBuf};

/// Hard ceiling on the body size of a single frame (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Hard ceiling on a key's length in bytes.
pub const MAX_KEY: usize = 1024;

/// Hard ceiling on the entry count a SCAN may request.
pub const MAX_SCAN: u32 = 4096;

/// Hard ceiling on the shard count a REPL_HELLO may announce.
pub const MAX_REPL_SHARDS: u32 = 4096;

/// Hard ceiling on the record count of one replication batch. Sized so a
/// full batch (25 bytes per record plus the envelope) stays under
/// [`MAX_FRAME`]; snapshot resyncs larger than this are chunked.
pub const MAX_REPL_BATCH: u32 = 32_768;

/// [`Response::ReplBatch`] flag: first chunk of a snapshot resync — the
/// replica clears its pending snapshot buffer before staging records.
pub const REPL_FLAG_RESET: u8 = 0x01;
/// [`Response::ReplBatch`] flag: last chunk of a snapshot resync — the
/// replica atomically replaces the shard with the staged records and
/// adopts `prev_version` as the shard version.
pub const REPL_FLAG_FIN: u8 = 0x02;
/// [`Response::ReplBatch`] flag: this batch is part of a snapshot resync
/// (set on every chunk, alongside RESET/FIN on the first/last).
pub const REPL_FLAG_SNAP: u8 = 0x04;

const REPL_FLAGS_ALL: u8 = REPL_FLAG_RESET | REPL_FLAG_FIN | REPL_FLAG_SNAP;

/// First body byte of a protocol-v2 request envelope. Chosen outside the
/// v1 request opcode space (0x01..=0x08) and the response space (high bit
/// set), so a v1 decoder sees it as an unknown opcode rather than
/// misparsing, and [`decode_request_any`] can dispatch on it.
pub const MAGIC_V2: u8 = 0xB2;

/// v2 flags bit: a `deadline_us:u32le` field follows the flags byte.
const V2_FLAG_DEADLINE: u8 = 0x01;

/// Why a frame or message failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the message did.
    Truncated,
    /// A declared length exceeds its ceiling ([`MAX_FRAME`], [`MAX_KEY`]
    /// or [`MAX_SCAN`]).
    TooLarge,
    /// The opcode byte names no known message.
    UnknownOpcode(u8),
    /// Structurally invalid payload (trailing bytes, bad flag byte, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::TooLarge => write!(f, "declared length exceeds protocol limit"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request<'a> {
    /// Look up a key.
    Get {
        /// Key bytes.
        key: &'a [u8],
    },
    /// Store `value` under `key`; `ttl` is in logical ticks, 0 = never
    /// expires.
    Set {
        /// Key bytes.
        key: &'a [u8],
        /// Value word.
        value: u64,
        /// Expiration in logical ticks (0 = none).
        ttl: u64,
    },
    /// Remove a key.
    Del {
        /// Key bytes.
        key: &'a [u8],
    },
    /// Add `delta` (wrapping) to the value under `key`, treating a missing
    /// key as 0; returns the new value.
    Incr {
        /// Key bytes.
        key: &'a [u8],
        /// Wrapping increment.
        delta: u64,
    },
    /// Return up to `limit` `(hashed_key, value)` pairs.
    Scan {
        /// Maximum entries to return (≤ [`MAX_SCAN`]).
        limit: u32,
    },
    /// Fetch the server's statistics/telemetry JSON document.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Probe the server's overload state (always admitted, served without
    /// touching the engine — cheap enough to call from a health checker
    /// even while the server is shedding).
    Health,
    /// Drain up to `max` completed flight-recorder spans from the live
    /// daemon as a JSON document. Draining, not idempotent: a retry
    /// returns the *next* batch, so clients must not replay it.
    Trace {
        /// Maximum span count to return (0 = server default).
        max: u32,
    },
    /// Force a durability barrier: every write acknowledged before this
    /// request is fsynced to the write-ahead log before the reply.
    /// Answered with [`Response::Flushed`]; on a server running without a
    /// WAL the barrier is vacuous and `durable_lsn` is 0.
    Flush,
    /// Session write: exactly [`Request::Set`], but answered with
    /// [`Response::DoneAt`] carrying the `(shard, version)` the write
    /// committed at — the read-your-writes token a session read presents
    /// back via [`Request::GetS`].
    SetS {
        /// Key bytes.
        key: &'a [u8],
        /// Value word.
        value: u64,
        /// Expiration in logical ticks (0 = none).
        ttl: u64,
    },
    /// Session read: a GET that only answers from a store whose owning
    /// shard has reached `min_version`. A node that is behind answers
    /// [`Response::Behind`] so the client can retry elsewhere (or wait) —
    /// this is what makes read-your-writes hold across replicas.
    GetS {
        /// Key bytes.
        key: &'a [u8],
        /// Minimum shard version required to serve the read.
        min_version: u64,
    },
}

/// One replicated write record: the post-image the primary's durable
/// prefix committed, keyed by the store's hashed key word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplRecord {
    /// 0 = put (value + absolute expiration), 1 = delete, 2 = value-only
    /// put (expiration preserved — the INCR post-image).
    pub kind: u8,
    /// Hashed key word.
    pub key: u64,
    /// Value word (ignored for deletes).
    pub value: u64,
    /// Absolute expiration tick, 0 = none (ignored for kinds 1 and 2).
    pub exp: u64,
}

/// [`ReplRecord::kind`]: store `value` with expiration `exp`.
pub const REPL_KIND_PUT: u8 = 0;
/// [`ReplRecord::kind`]: remove the key.
pub const REPL_KIND_DEL: u8 = 1;
/// [`ReplRecord::kind`]: store `value`, preserving any existing
/// expiration (INCR post-image).
pub const REPL_KIND_PUTVAL: u8 = 2;

/// A replication request (replica → primary on a replication stream, or
/// operator → node for promotion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplRequest<'a> {
    /// Opens a replication stream: the replica announces its per-shard
    /// versions so the primary can stream exactly the missing suffix (or
    /// trigger a snapshot resync per shard).
    Hello {
        /// Current version (applied sequence number) of each shard.
        versions: Vec<u64>,
    },
    /// Acknowledges (or rejects) a batch. `nak` set means the replica's
    /// shard version did not match `prev_version` — the OCC conflict on
    /// the wire — and the primary must resync that shard from a snapshot.
    Ack {
        /// Shard index.
        shard: u32,
        /// The replica's shard version after (ack) or at (nak) the batch.
        version: u64,
        /// True when the batch was rejected for a version gap.
        nak: bool,
    },
    /// Changes a node's replication role. An empty `upstream` promotes
    /// the node to primary; a non-empty `upstream` (`host:port` UTF-8)
    /// re-points a replica at a new primary.
    Promote {
        /// New upstream address, empty to become primary.
        upstream: &'a [u8],
    },
    /// Election: a replica that suspects the primary is dead asks a peer
    /// for its vote in `epoch`, presenting its per-shard versions so the
    /// voter can refuse candidates with less history than its own.
    /// Answered with [`Response::ReplVote`].
    Candidate {
        /// The election epoch the candidate is running in (one greater
        /// than the highest epoch it has seen).
        epoch: u64,
        /// The candidate's per-shard versions (its replicated history).
        versions: Vec<u64>,
    },
    /// Election result: the winner announces the new epoch and its own
    /// address. Replicas adopt the epoch and repoint their upstream;
    /// anything claiming an older epoch is fenced from then on.
    EpochAnnounce {
        /// The epoch the announcing node won.
        epoch: u64,
        /// The new primary's address (`host:port` UTF-8).
        primary: &'a [u8],
    },
}

/// A decoded request plus its v2 envelope fields (absent for v1 frames).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestFrame<'a> {
    /// The request itself.
    pub req: Request<'a>,
    /// Client-supplied deadline budget in microseconds, measured from
    /// server receipt; `None` for v1 frames or v2 frames without one.
    pub deadline_us: Option<u32>,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response<'a> {
    /// GET result.
    Value {
        /// Whether the key was present (and unexpired).
        found: bool,
        /// The value (0 when absent).
        value: u64,
    },
    /// SET acknowledged.
    Done,
    /// DEL result.
    Deleted {
        /// Whether the key existed.
        existed: bool,
    },
    /// INCR result: the post-increment value.
    Counter {
        /// New value.
        value: u64,
    },
    /// SCAN result: `(hashed_key, value)` pairs.
    Entries {
        /// The pairs, in table order.
        pairs: Vec<(u64, u64)>,
    },
    /// STATS result: a JSON document.
    Stats {
        /// The server's stats/telemetry JSON.
        json: &'a str,
    },
    /// SHUTDOWN acknowledged; the server will close the connection.
    Bye,
    /// HEALTH result: the brownout state plus overload counters.
    Health {
        /// Brownout state: 0 = Healthy, 1 = Degraded, 2 = Shedding.
        state: u8,
        /// Requests rejected by admission control over the server's life.
        shed_total: u64,
        /// Deadline misses (pre-execution rejections + post-execution
        /// overruns) over the server's life.
        deadline_misses: u64,
    },
    /// The request was rejected by admission control. Retriable: back off
    /// and retry; the connection stays fully usable.
    Overloaded {
        /// Brownout state at rejection time (same encoding as
        /// [`Response::Health`]).
        state: u8,
    },
    /// The request's deadline budget expired — either before execution
    /// (the request was not executed) or during it (the effect was
    /// applied but the client's budget is already blown). Retriable for
    /// idempotent verbs.
    DeadlineExceeded,
    /// TRACE result: a JSON document of drained spans plus ring counters.
    Trace {
        /// The span batch (`{"spans":[…],"pushed":…,"dropped":…}`).
        json: &'a str,
    },
    /// FLUSH result: the barrier completed.
    Flushed {
        /// Highest log sequence number known durable (0 without a WAL).
        durable_lsn: u64,
    },
    /// One replication batch (primary → replica). Applies only if the
    /// replica's shard version equals `prev_version`; the new version is
    /// `prev_version + records.len()`. Snapshot chunks set the
    /// `REPL_FLAG_*` bits and adopt `prev_version` wholesale at FIN.
    ReplBatch {
        /// Shard index.
        shard: u32,
        /// `REPL_FLAG_*` bits (0 for a normal incremental batch).
        flags: u8,
        /// The shard version this batch applies on top of (or, for a
        /// snapshot FIN chunk, the version the snapshot represents).
        prev_version: u64,
        /// The primary's logical clock for the shard, shipped so
        /// expirations mean the same thing on both sides.
        now: u64,
        /// The primary's election epoch. A replica that has seen a higher
        /// epoch rejects the batch outright — this is how a deposed
        /// primary's stale stream is fenced after a failover.
        epoch: u64,
        /// The committed post-images, in commit (version) order.
        records: Vec<ReplRecord>,
    },
    /// REPL_HELLO accepted: the stream is live.
    ReplWelcome {
        /// The primary's shard count (must match the replica's).
        shards: u32,
        /// The primary's election epoch; the replica adopts it if higher
        /// than its own, and hangs up if the primary's is stale.
        epoch: u64,
    },
    /// REPL_CANDIDATE result: the voter's decision for that epoch.
    ReplVote {
        /// Whether the vote was granted.
        granted: bool,
        /// The voter's highest known epoch (lets a stale candidate catch
        /// up before retrying).
        epoch: u64,
        /// The voter's total replicated history (sum of shard versions),
        /// for diagnostics.
        version_sum: u64,
    },
    /// SET_S acknowledged: the write committed at this shard/version —
    /// the token a session read presents via [`Request::GetS`].
    DoneAt {
        /// Owning shard of the written key.
        shard: u32,
        /// The shard version the write committed at.
        version: u64,
    },
    /// GET_S refused: this node's shard has not yet reached the session's
    /// minimum version. Retriable — the client waits or tries another
    /// endpoint.
    Behind {
        /// The shard version this node has actually reached.
        version: u64,
    },
    /// A write verb reached a replica. Retriable against the primary;
    /// `hint` is the last known primary address (`host:port`), empty when
    /// unknown.
    NotPrimary {
        /// Redirect hint, possibly empty.
        hint: &'a str,
    },
    /// The request failed; the connection stays usable unless the error
    /// was a framing violation (the server closes it after sending this).
    Error {
        /// Human-readable cause.
        message: &'a str,
    },
}

// Request opcodes.
const OP_GET: u8 = 0x01;
const OP_SET: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_INCR: u8 = 0x04;
const OP_SCAN: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_SHUTDOWN: u8 = 0x07;
const OP_HEALTH: u8 = 0x08;
const OP_TRACE: u8 = 0x09;
const OP_FLUSH: u8 = 0x0A;
const OP_REPL_HELLO: u8 = 0x0B;
const OP_REPL_ACK: u8 = 0x0C;
const OP_REPL_PROMOTE: u8 = 0x0D;
const OP_REPL_CANDIDATE: u8 = 0x0E;
const OP_REPL_EPOCH: u8 = 0x0F;
const OP_SET_S: u8 = 0x10;
const OP_GET_S: u8 = 0x11;
// Response opcodes (high bit set).
const OP_VALUE: u8 = 0x81;
const OP_DONE: u8 = 0x82;
const OP_DELETED: u8 = 0x83;
const OP_COUNTER: u8 = 0x84;
const OP_ENTRIES: u8 = 0x85;
const OP_STATS_R: u8 = 0x86;
const OP_BYE: u8 = 0x87;
const OP_HEALTH_R: u8 = 0x88;
const OP_OVERLOADED: u8 = 0x89;
const OP_DEADLINE: u8 = 0x8A;
const OP_TRACE_R: u8 = 0x8B;
const OP_FLUSHED: u8 = 0x8C;
const OP_REPL_BATCH: u8 = 0x8D;
const OP_REPL_WELCOME: u8 = 0x8E;
const OP_NOT_PRIMARY: u8 = 0x8F;
const OP_REPL_VOTE: u8 = 0x90;
const OP_DONE_AT: u8 = 0x91;
const OP_BEHIND: u8 = 0x92;
const OP_ERROR: u8 = 0xFF;

/// Sequential reader over a payload slice; every accessor is
/// bounds-checked and returns [`WireError::Truncated`] past the end.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn key(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u16()? as usize;
        if len > MAX_KEY {
            return Err(WireError::TooLarge);
        }
        self.take(len)
    }

    fn flag(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("flag byte not 0/1")),
        }
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_key(out: &mut Vec<u8>, key: &[u8]) {
    assert!(key.len() <= MAX_KEY, "key exceeds MAX_KEY");
    put_u16(out, key.len() as u16);
    out.extend_from_slice(key);
}

/// Appends a complete frame (header + opcode + payload) for `req` to
/// `out`. The buffer is not cleared, so responses/requests can be batched.
pub fn encode_request(req: &Request<'_>, out: &mut Vec<u8>) {
    let header = out.len();
    put_u32(out, 0); // patched below
    encode_request_body(req, out);
    patch_len(out, header);
}

/// Appends a complete protocol-v2 frame for `req`, carrying `deadline_us`
/// when given. A `None` deadline still emits the v2 envelope (magic +
/// flags) — use [`encode_request`] for plain v1 frames.
pub fn encode_request_v2(req: &Request<'_>, deadline_us: Option<u32>, out: &mut Vec<u8>) {
    let header = out.len();
    put_u32(out, 0);
    out.push(MAGIC_V2);
    match deadline_us {
        Some(budget) => {
            out.push(V2_FLAG_DEADLINE);
            put_u32(out, budget);
        }
        None => out.push(0),
    }
    encode_request_body(req, out);
    patch_len(out, header);
}

fn encode_request_body(req: &Request<'_>, out: &mut Vec<u8>) {
    match req {
        Request::Get { key } => {
            out.push(OP_GET);
            put_key(out, key);
        }
        Request::Set { key, value, ttl } => {
            out.push(OP_SET);
            put_key(out, key);
            put_u64(out, *value);
            put_u64(out, *ttl);
        }
        Request::Del { key } => {
            out.push(OP_DEL);
            put_key(out, key);
        }
        Request::Incr { key, delta } => {
            out.push(OP_INCR);
            put_key(out, key);
            put_u64(out, *delta);
        }
        Request::Scan { limit } => {
            out.push(OP_SCAN);
            put_u32(out, *limit);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::Health => out.push(OP_HEALTH),
        Request::Trace { max } => {
            out.push(OP_TRACE);
            put_u32(out, *max);
        }
        Request::Flush => out.push(OP_FLUSH),
        Request::SetS { key, value, ttl } => {
            out.push(OP_SET_S);
            put_key(out, key);
            put_u64(out, *value);
            put_u64(out, *ttl);
        }
        Request::GetS { key, min_version } => {
            out.push(OP_GET_S);
            put_key(out, key);
            put_u64(out, *min_version);
        }
    }
}

/// Appends a complete frame for a replication request to `out`.
pub fn encode_repl_request(req: &ReplRequest<'_>, out: &mut Vec<u8>) {
    let header = out.len();
    put_u32(out, 0);
    match req {
        ReplRequest::Hello { versions } => {
            assert!(
                versions.len() <= MAX_REPL_SHARDS as usize,
                "shard count exceeds MAX_REPL_SHARDS"
            );
            out.push(OP_REPL_HELLO);
            put_u32(out, versions.len() as u32);
            for &v in versions {
                put_u64(out, v);
            }
        }
        ReplRequest::Ack {
            shard,
            version,
            nak,
        } => {
            out.push(OP_REPL_ACK);
            put_u32(out, *shard);
            put_u64(out, *version);
            out.push(u8::from(*nak));
        }
        ReplRequest::Promote { upstream } => {
            out.push(OP_REPL_PROMOTE);
            put_key(out, upstream);
        }
        ReplRequest::Candidate { epoch, versions } => {
            assert!(
                versions.len() <= MAX_REPL_SHARDS as usize,
                "shard count exceeds MAX_REPL_SHARDS"
            );
            out.push(OP_REPL_CANDIDATE);
            put_u64(out, *epoch);
            put_u32(out, versions.len() as u32);
            for &v in versions {
                put_u64(out, v);
            }
        }
        ReplRequest::EpochAnnounce { epoch, primary } => {
            out.push(OP_REPL_EPOCH);
            put_u64(out, *epoch);
            put_key(out, primary);
        }
    }
    patch_len(out, header);
}

/// Whether a frame body's opcode is a replication request. Replication
/// streams use plain v1 frames (no deadline envelope), so one leading
/// byte decides the dispatch.
#[must_use]
pub fn is_repl_request(body: &[u8]) -> bool {
    matches!(
        body.first(),
        Some(&OP_REPL_HELLO)
            | Some(&OP_REPL_ACK)
            | Some(&OP_REPL_PROMOTE)
            | Some(&OP_REPL_CANDIDATE)
            | Some(&OP_REPL_EPOCH)
    )
}

/// Decodes a frame body as a replication request, with the same no-panic
/// strictness contract as [`decode_request`].
pub fn decode_repl_request(body: &[u8]) -> Result<ReplRequest<'_>, WireError> {
    let mut c = Cursor::new(body);
    let req = match c.u8()? {
        OP_REPL_HELLO => {
            let count = c.u32()?;
            if count > MAX_REPL_SHARDS {
                return Err(WireError::TooLarge);
            }
            let mut versions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                versions.push(c.u64()?);
            }
            ReplRequest::Hello { versions }
        }
        OP_REPL_ACK => ReplRequest::Ack {
            shard: c.u32()?,
            version: c.u64()?,
            nak: c.flag()?,
        },
        OP_REPL_PROMOTE => ReplRequest::Promote { upstream: c.key()? },
        OP_REPL_CANDIDATE => {
            let epoch = c.u64()?;
            let count = c.u32()?;
            if count > MAX_REPL_SHARDS {
                return Err(WireError::TooLarge);
            }
            let mut versions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                versions.push(c.u64()?);
            }
            ReplRequest::Candidate { epoch, versions }
        }
        OP_REPL_EPOCH => ReplRequest::EpochAnnounce {
            epoch: c.u64()?,
            primary: c.key()?,
        },
        op => return Err(WireError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(req)
}

/// Appends a complete frame for `resp` to `out`.
pub fn encode_response(resp: &Response<'_>, out: &mut Vec<u8>) {
    let header = out.len();
    put_u32(out, 0);
    match resp {
        Response::Value { found, value } => {
            out.push(OP_VALUE);
            out.push(u8::from(*found));
            put_u64(out, *value);
        }
        Response::Done => out.push(OP_DONE),
        Response::Deleted { existed } => {
            out.push(OP_DELETED);
            out.push(u8::from(*existed));
        }
        Response::Counter { value } => {
            out.push(OP_COUNTER);
            put_u64(out, *value);
        }
        Response::Entries { pairs } => {
            assert!(
                pairs.len() <= MAX_SCAN as usize,
                "entry count exceeds MAX_SCAN"
            );
            out.push(OP_ENTRIES);
            put_u32(out, pairs.len() as u32);
            for &(k, v) in pairs {
                put_u64(out, k);
                put_u64(out, v);
            }
        }
        Response::Stats { json } => {
            out.push(OP_STATS_R);
            put_u32(out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        Response::Bye => out.push(OP_BYE),
        Response::Health {
            state,
            shed_total,
            deadline_misses,
        } => {
            out.push(OP_HEALTH_R);
            out.push(*state);
            put_u64(out, *shed_total);
            put_u64(out, *deadline_misses);
        }
        Response::Overloaded { state } => {
            out.push(OP_OVERLOADED);
            out.push(*state);
        }
        Response::DeadlineExceeded => out.push(OP_DEADLINE),
        Response::Trace { json } => {
            out.push(OP_TRACE_R);
            put_u32(out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        Response::Flushed { durable_lsn } => {
            out.push(OP_FLUSHED);
            put_u64(out, *durable_lsn);
        }
        Response::ReplBatch {
            shard,
            flags,
            prev_version,
            now,
            epoch,
            records,
        } => {
            assert!(
                records.len() <= MAX_REPL_BATCH as usize,
                "record count exceeds MAX_REPL_BATCH"
            );
            assert!(*flags & !REPL_FLAGS_ALL == 0, "undefined repl flag bits");
            out.push(OP_REPL_BATCH);
            put_u32(out, *shard);
            out.push(*flags);
            put_u64(out, *prev_version);
            put_u64(out, *now);
            put_u64(out, *epoch);
            put_u32(out, records.len() as u32);
            for r in records {
                out.push(r.kind);
                put_u64(out, r.key);
                put_u64(out, r.value);
                put_u64(out, r.exp);
            }
        }
        Response::ReplWelcome { shards, epoch } => {
            out.push(OP_REPL_WELCOME);
            put_u32(out, *shards);
            put_u64(out, *epoch);
        }
        Response::ReplVote {
            granted,
            epoch,
            version_sum,
        } => {
            out.push(OP_REPL_VOTE);
            out.push(u8::from(*granted));
            put_u64(out, *epoch);
            put_u64(out, *version_sum);
        }
        Response::DoneAt { shard, version } => {
            out.push(OP_DONE_AT);
            put_u32(out, *shard);
            put_u64(out, *version);
        }
        Response::Behind { version } => {
            out.push(OP_BEHIND);
            put_u64(out, *version);
        }
        Response::NotPrimary { hint } => {
            out.push(OP_NOT_PRIMARY);
            let hint = &hint.as_bytes()[..hint.len().min(256)];
            put_u16(out, hint.len() as u16);
            out.extend_from_slice(hint);
        }
        Response::Error { message } => {
            out.push(OP_ERROR);
            let msg = &message.as_bytes()[..message.len().min(512)];
            put_u16(out, msg.len() as u16);
            out.extend_from_slice(msg);
        }
    }
    patch_len(out, header);
}

fn patch_len(out: &mut [u8], header: usize) {
    let body = out.len() - header - 4;
    assert!(body >= 1 && body <= MAX_FRAME, "frame body out of range");
    out[header..header + 4].copy_from_slice(&(body as u32).to_le_bytes());
}

/// Decodes a frame *body* (opcode + payload, header already stripped) as
/// a protocol-v1 request. Never panics; unknown opcodes, truncation,
/// limit violations and trailing bytes all yield `Err`.
pub fn decode_request(body: &[u8]) -> Result<Request<'_>, WireError> {
    let mut c = Cursor::new(body);
    let req = decode_request_inner(&mut c)?;
    c.finish()?;
    Ok(req)
}

/// Decodes a frame body as either protocol version: a leading
/// [`MAGIC_V2`] byte selects the v2 envelope (flags + optional deadline
/// budget), anything else decodes exactly as v1. Same no-panic contract
/// as [`decode_request`].
pub fn decode_request_any(body: &[u8]) -> Result<RequestFrame<'_>, WireError> {
    let mut c = Cursor::new(body);
    let mut deadline_us = None;
    if body.first() == Some(&MAGIC_V2) {
        let _ = c.u8()?;
        let flags = c.u8()?;
        if flags & !V2_FLAG_DEADLINE != 0 {
            return Err(WireError::Malformed("unknown v2 flag bits"));
        }
        if flags & V2_FLAG_DEADLINE != 0 {
            deadline_us = Some(c.u32()?);
        }
    }
    let req = decode_request_inner(&mut c)?;
    c.finish()?;
    Ok(RequestFrame { req, deadline_us })
}

fn decode_request_inner<'a>(c: &mut Cursor<'a>) -> Result<Request<'a>, WireError> {
    let req = match c.u8()? {
        OP_GET => Request::Get { key: c.key()? },
        OP_SET => Request::Set {
            key: c.key()?,
            value: c.u64()?,
            ttl: c.u64()?,
        },
        OP_DEL => Request::Del { key: c.key()? },
        OP_INCR => Request::Incr {
            key: c.key()?,
            delta: c.u64()?,
        },
        OP_SCAN => {
            let limit = c.u32()?;
            if limit > MAX_SCAN {
                return Err(WireError::TooLarge);
            }
            Request::Scan { limit }
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_HEALTH => Request::Health,
        OP_TRACE => Request::Trace { max: c.u32()? },
        OP_FLUSH => Request::Flush,
        OP_SET_S => Request::SetS {
            key: c.key()?,
            value: c.u64()?,
            ttl: c.u64()?,
        },
        OP_GET_S => Request::GetS {
            key: c.key()?,
            min_version: c.u64()?,
        },
        op => return Err(WireError::UnknownOpcode(op)),
    };
    Ok(req)
}

/// Decodes a frame body as a response, with the same no-panic contract as
/// [`decode_request`].
pub fn decode_response(body: &[u8]) -> Result<Response<'_>, WireError> {
    let mut c = Cursor::new(body);
    let resp = match c.u8()? {
        OP_VALUE => Response::Value {
            found: c.flag()?,
            value: c.u64()?,
        },
        OP_DONE => Response::Done,
        OP_DELETED => Response::Deleted { existed: c.flag()? },
        OP_COUNTER => Response::Counter { value: c.u64()? },
        OP_ENTRIES => {
            let count = c.u32()?;
            if count > MAX_SCAN {
                return Err(WireError::TooLarge);
            }
            let mut pairs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                pairs.push((c.u64()?, c.u64()?));
            }
            Response::Entries { pairs }
        }
        OP_STATS_R => {
            let len = c.u32()? as usize;
            if len > MAX_FRAME {
                return Err(WireError::TooLarge);
            }
            let bytes = c.take(len)?;
            let json =
                std::str::from_utf8(bytes).map_err(|_| WireError::Malformed("stats not UTF-8"))?;
            Response::Stats { json }
        }
        OP_BYE => Response::Bye,
        OP_HEALTH_R => Response::Health {
            state: c.u8()?,
            shed_total: c.u64()?,
            deadline_misses: c.u64()?,
        },
        OP_OVERLOADED => Response::Overloaded { state: c.u8()? },
        OP_DEADLINE => Response::DeadlineExceeded,
        OP_FLUSHED => Response::Flushed {
            durable_lsn: c.u64()?,
        },
        OP_REPL_BATCH => {
            let shard = c.u32()?;
            let flags = c.u8()?;
            if flags & !REPL_FLAGS_ALL != 0 {
                return Err(WireError::Malformed("undefined repl flag bits"));
            }
            let prev_version = c.u64()?;
            let now = c.u64()?;
            let epoch = c.u64()?;
            let count = c.u32()?;
            if count > MAX_REPL_BATCH {
                return Err(WireError::TooLarge);
            }
            let mut records = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let kind = c.u8()?;
                if kind > REPL_KIND_PUTVAL {
                    return Err(WireError::Malformed("unknown repl record kind"));
                }
                records.push(ReplRecord {
                    kind,
                    key: c.u64()?,
                    value: c.u64()?,
                    exp: c.u64()?,
                });
            }
            Response::ReplBatch {
                shard,
                flags,
                prev_version,
                now,
                epoch,
                records,
            }
        }
        OP_REPL_WELCOME => Response::ReplWelcome {
            shards: c.u32()?,
            epoch: c.u64()?,
        },
        OP_REPL_VOTE => Response::ReplVote {
            granted: c.flag()?,
            epoch: c.u64()?,
            version_sum: c.u64()?,
        },
        OP_DONE_AT => Response::DoneAt {
            shard: c.u32()?,
            version: c.u64()?,
        },
        OP_BEHIND => Response::Behind { version: c.u64()? },
        OP_NOT_PRIMARY => {
            let len = c.u16()? as usize;
            let bytes = c.take(len)?;
            let hint =
                std::str::from_utf8(bytes).map_err(|_| WireError::Malformed("hint not UTF-8"))?;
            Response::NotPrimary { hint }
        }
        OP_TRACE_R => {
            let len = c.u32()? as usize;
            if len > MAX_FRAME {
                return Err(WireError::TooLarge);
            }
            let bytes = c.take(len)?;
            let json =
                std::str::from_utf8(bytes).map_err(|_| WireError::Malformed("trace not UTF-8"))?;
            Response::Trace { json }
        }
        OP_ERROR => {
            let len = c.u16()? as usize;
            let bytes = c.take(len)?;
            let message =
                std::str::from_utf8(bytes).map_err(|_| WireError::Malformed("error not UTF-8"))?;
            Response::Error { message }
        }
        op => return Err(WireError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request<'_>) {
        let mut out = Vec::new();
        encode_request(&req, &mut out);
        let body = &out[4..];
        assert_eq!(
            u32::from_le_bytes(out[..4].try_into().unwrap()) as usize,
            body.len()
        );
        assert_eq!(decode_request(body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response<'_>) {
        let mut out = Vec::new();
        encode_response(&resp, &mut out);
        assert_eq!(decode_response(&out[4..]).unwrap(), resp);
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip_request(Request::Get { key: b"alpha" });
        roundtrip_request(Request::Set {
            key: b"",
            value: u64::MAX,
            ttl: 7,
        });
        roundtrip_request(Request::Del { key: b"k" });
        roundtrip_request(Request::Incr {
            key: b"counter",
            delta: 3,
        });
        roundtrip_request(Request::Scan { limit: MAX_SCAN });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Trace { max: 0 });
        roundtrip_request(Request::Trace { max: u32::MAX });
        roundtrip_request(Request::Flush);
        roundtrip_request(Request::SetS {
            key: b"session",
            value: 17,
            ttl: 0,
        });
        roundtrip_request(Request::GetS {
            key: b"session",
            min_version: u64::MAX,
        });
        roundtrip_request(Request::GetS {
            key: b"",
            min_version: 0,
        });
    }

    fn roundtrip_v2(req: Request<'_>, deadline_us: Option<u32>) {
        let mut out = Vec::new();
        encode_request_v2(&req, deadline_us, &mut out);
        let body = &out[4..];
        assert_eq!(
            u32::from_le_bytes(out[..4].try_into().unwrap()) as usize,
            body.len()
        );
        assert_eq!(
            decode_request_any(body).unwrap(),
            RequestFrame { req, deadline_us }
        );
    }

    #[test]
    fn v2_envelopes_roundtrip() {
        roundtrip_v2(Request::Get { key: b"alpha" }, Some(1_500));
        roundtrip_v2(
            Request::Set {
                key: b"k",
                value: 7,
                ttl: 0,
            },
            Some(0),
        );
        roundtrip_v2(Request::Scan { limit: 16 }, Some(u32::MAX));
        roundtrip_v2(Request::Health, None);
        roundtrip_v2(Request::Trace { max: 256 }, Some(10_000));
        roundtrip_v2(Request::Flush, Some(50_000));
        roundtrip_v2(Request::Flush, None);
        roundtrip_v2(
            Request::Incr {
                key: b"c",
                delta: 2,
            },
            None,
        );
    }

    #[test]
    fn v1_frames_decode_unchanged_through_decode_request_any() {
        for req in [
            Request::Get { key: b"compat" },
            Request::Stats,
            Request::Shutdown,
            Request::Health,
        ] {
            let mut out = Vec::new();
            encode_request(&req, &mut out);
            let frame = decode_request_any(&out[4..]).unwrap();
            assert_eq!(frame.req, req);
            assert_eq!(frame.deadline_us, None, "v1 carries no deadline");
            // And the strict v1 decoder still accepts the same bytes.
            assert_eq!(decode_request(&out[4..]).unwrap(), req);
        }
    }

    #[test]
    fn v2_strictness() {
        // Unknown flag bits are malformed.
        let mut out = Vec::new();
        encode_request_v2(&Request::Stats, None, &mut out);
        let mut body = out[4..].to_vec();
        body[1] = 0x82; // flags with undefined bits
        assert!(matches!(
            decode_request_any(&body),
            Err(WireError::Malformed(_))
        ));
        // A declared deadline with truncated bytes is truncated.
        let body = [MAGIC_V2, 0x01, 0x10, 0x00];
        assert_eq!(decode_request_any(&body), Err(WireError::Truncated));
        // Trailing bytes after the inner payload are rejected.
        let mut out = Vec::new();
        encode_request_v2(&Request::Get { key: b"k" }, Some(9), &mut out);
        let mut body = out[4..].to_vec();
        body.push(0);
        assert_eq!(
            decode_request_any(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
        // The strict v1 decoder rejects v2 envelopes outright.
        assert_eq!(
            decode_request(&[MAGIC_V2, 0, OP_STATS]),
            Err(WireError::UnknownOpcode(MAGIC_V2))
        );
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_response(Response::Value {
            found: true,
            value: 42,
        });
        roundtrip_response(Response::Value {
            found: false,
            value: 0,
        });
        roundtrip_response(Response::Done);
        roundtrip_response(Response::Deleted { existed: true });
        roundtrip_response(Response::Counter { value: 9 });
        roundtrip_response(Response::Entries {
            pairs: vec![(1, 2), (u64::MAX, 0)],
        });
        roundtrip_response(Response::Entries { pairs: vec![] });
        roundtrip_response(Response::Stats {
            json: r#"{"ok":true}"#,
        });
        roundtrip_response(Response::Bye);
        roundtrip_response(Response::Health {
            state: 2,
            shed_total: 12_345,
            deadline_misses: 67,
        });
        roundtrip_response(Response::Overloaded { state: 1 });
        roundtrip_response(Response::DeadlineExceeded);
        roundtrip_response(Response::Trace {
            json: r#"{"spans":[],"pushed":0}"#,
        });
        roundtrip_response(Response::Flushed { durable_lsn: 0 });
        roundtrip_response(Response::Flushed {
            durable_lsn: u64::MAX,
        });
        roundtrip_response(Response::Error { message: "nope" });
    }

    #[test]
    fn trace_payloads_are_strict() {
        // A truncated max field is rejected.
        assert_eq!(decode_request(&[OP_TRACE, 0x01]), Err(WireError::Truncated));
        // A trace response whose declared length overruns the payload.
        let mut body = vec![OP_TRACE_R];
        put_u32(&mut body, 100);
        body.extend_from_slice(b"{}");
        assert_eq!(decode_response(&body), Err(WireError::Truncated));
        // Non-UTF-8 span JSON is malformed.
        let mut body = vec![OP_TRACE_R];
        put_u32(&mut body, 2);
        body.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn flush_payloads_are_strict() {
        // FLUSH carries no payload; trailing bytes are rejected.
        assert_eq!(
            decode_request(&[OP_FLUSH, 0]),
            Err(WireError::Malformed("trailing bytes"))
        );
        // A truncated durable_lsn is truncated, not zero.
        let mut body = vec![OP_FLUSHED];
        body.extend_from_slice(&[1, 2, 3]);
        assert_eq!(decode_response(&body), Err(WireError::Truncated));
    }

    fn roundtrip_repl(req: ReplRequest<'_>) {
        let mut out = Vec::new();
        encode_repl_request(&req, &mut out);
        let body = &out[4..];
        assert_eq!(
            u32::from_le_bytes(out[..4].try_into().unwrap()) as usize,
            body.len()
        );
        assert!(is_repl_request(body));
        assert_eq!(decode_repl_request(body).unwrap(), req);
    }

    #[test]
    fn repl_requests_roundtrip() {
        roundtrip_repl(ReplRequest::Hello {
            versions: vec![0, 7, u64::MAX],
        });
        roundtrip_repl(ReplRequest::Hello { versions: vec![] });
        roundtrip_repl(ReplRequest::Ack {
            shard: 3,
            version: 99,
            nak: false,
        });
        roundtrip_repl(ReplRequest::Ack {
            shard: 0,
            version: 0,
            nak: true,
        });
        roundtrip_repl(ReplRequest::Promote { upstream: b"" });
        roundtrip_repl(ReplRequest::Promote {
            upstream: b"127.0.0.1:7070",
        });
        roundtrip_repl(ReplRequest::Candidate {
            epoch: 3,
            versions: vec![0, 41, u64::MAX],
        });
        roundtrip_repl(ReplRequest::Candidate {
            epoch: u64::MAX,
            versions: vec![],
        });
        roundtrip_repl(ReplRequest::EpochAnnounce {
            epoch: 7,
            primary: b"127.0.0.1:7071",
        });
        roundtrip_repl(ReplRequest::EpochAnnounce {
            epoch: 1,
            primary: b"",
        });
    }

    #[test]
    fn repl_responses_roundtrip() {
        roundtrip_response(Response::ReplBatch {
            shard: 2,
            flags: 0,
            prev_version: 41,
            now: 9,
            epoch: 5,
            records: vec![
                ReplRecord {
                    kind: REPL_KIND_PUT,
                    key: 0xDEAD,
                    value: 7,
                    exp: 12,
                },
                ReplRecord {
                    kind: REPL_KIND_DEL,
                    key: 0xBEEF,
                    value: 0,
                    exp: 0,
                },
                ReplRecord {
                    kind: REPL_KIND_PUTVAL,
                    key: 1,
                    value: u64::MAX,
                    exp: 0,
                },
            ],
        });
        roundtrip_response(Response::ReplBatch {
            shard: 0,
            flags: REPL_FLAG_SNAP | REPL_FLAG_RESET | REPL_FLAG_FIN,
            prev_version: 1000,
            now: 55,
            epoch: 0,
            records: vec![],
        });
        roundtrip_response(Response::ReplWelcome {
            shards: 16,
            epoch: 2,
        });
        roundtrip_response(Response::NotPrimary { hint: "" });
        roundtrip_response(Response::NotPrimary {
            hint: "127.0.0.1:9999",
        });
        roundtrip_response(Response::ReplVote {
            granted: true,
            epoch: 4,
            version_sum: 999,
        });
        roundtrip_response(Response::ReplVote {
            granted: false,
            epoch: u64::MAX,
            version_sum: 0,
        });
        roundtrip_response(Response::DoneAt {
            shard: 3,
            version: 77,
        });
        roundtrip_response(Response::Behind { version: u64::MAX });
    }

    #[test]
    fn repl_payloads_are_strict() {
        // HELLO shard count beyond the ceiling, with no bytes behind it.
        let mut body = vec![OP_REPL_HELLO];
        put_u32(&mut body, MAX_REPL_SHARDS + 1);
        assert_eq!(decode_repl_request(&body), Err(WireError::TooLarge));
        // HELLO declaring more versions than it carries.
        let mut body = vec![OP_REPL_HELLO];
        put_u32(&mut body, 2);
        put_u64(&mut body, 1);
        assert_eq!(decode_repl_request(&body), Err(WireError::Truncated));
        // ACK with a non-boolean nak byte.
        let mut body = vec![OP_REPL_ACK];
        put_u32(&mut body, 0);
        put_u64(&mut body, 5);
        body.push(2);
        assert!(matches!(
            decode_repl_request(&body),
            Err(WireError::Malformed(_))
        ));
        // Trailing bytes after a PROMOTE are rejected.
        let mut out = Vec::new();
        encode_repl_request(&ReplRequest::Promote { upstream: b"x" }, &mut out);
        let mut body = out[4..].to_vec();
        body.push(0);
        assert_eq!(
            decode_repl_request(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
        // Batch with undefined flag bits.
        let mut body = vec![OP_REPL_BATCH];
        put_u32(&mut body, 0);
        body.push(0x80);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u32(&mut body, 0);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Malformed(_))
        ));
        // Batch with an unknown record kind.
        let mut body = vec![OP_REPL_BATCH];
        put_u32(&mut body, 0);
        body.push(0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u32(&mut body, 1);
        body.push(3);
        put_u64(&mut body, 1);
        put_u64(&mut body, 2);
        put_u64(&mut body, 3);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Malformed(_))
        ));
        // Batch whose declared count overruns the ceiling.
        let mut body = vec![OP_REPL_BATCH];
        put_u32(&mut body, 0);
        body.push(0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u32(&mut body, MAX_REPL_BATCH + 1);
        assert_eq!(decode_response(&body), Err(WireError::TooLarge));
        // CANDIDATE shard count beyond the ceiling.
        let mut body = vec![OP_REPL_CANDIDATE];
        put_u64(&mut body, 1);
        put_u32(&mut body, MAX_REPL_SHARDS + 1);
        assert_eq!(decode_repl_request(&body), Err(WireError::TooLarge));
        // CANDIDATE declaring more versions than it carries.
        let mut body = vec![OP_REPL_CANDIDATE];
        put_u64(&mut body, 1);
        put_u32(&mut body, 2);
        put_u64(&mut body, 9);
        assert_eq!(decode_repl_request(&body), Err(WireError::Truncated));
        // VOTE with a non-boolean granted byte.
        let mut body = vec![OP_REPL_VOTE, 2];
        put_u64(&mut body, 1);
        put_u64(&mut body, 2);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Malformed(_))
        ));
        // Trailing bytes after an EPOCH announce are rejected.
        let mut out = Vec::new();
        encode_repl_request(
            &ReplRequest::EpochAnnounce {
                epoch: 2,
                primary: b"x",
            },
            &mut out,
        );
        let mut body = out[4..].to_vec();
        body.push(0);
        assert_eq!(
            decode_repl_request(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
        // NotPrimary with non-UTF-8 hint bytes.
        let mut body = vec![OP_NOT_PRIMARY];
        put_u16(&mut body, 2);
        body.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Malformed(_))
        ));
        // Data verbs are not replication requests.
        assert!(!is_repl_request(&[OP_GET]));
        assert!(!is_repl_request(&[MAGIC_V2, 0, OP_GET]));
        assert!(!is_repl_request(&[]));
    }

    #[test]
    fn repl_batch_at_ceiling_fits_one_frame() {
        let records = vec![
            ReplRecord {
                kind: REPL_KIND_PUT,
                key: 1,
                value: 2,
                exp: 3,
            };
            MAX_REPL_BATCH as usize
        ];
        let resp = Response::ReplBatch {
            shard: 0,
            flags: 0,
            prev_version: 0,
            now: 0,
            epoch: u64::MAX,
            records,
        };
        let mut out = Vec::new();
        encode_response(&resp, &mut out);
        assert!(out.len() - 4 <= MAX_FRAME, "max batch must fit MAX_FRAME");
        assert_eq!(decode_response(&out[4..]).unwrap(), resp);
    }

    #[test]
    fn batched_frames_share_one_buffer() {
        let mut out = Vec::new();
        encode_request(&Request::Get { key: b"a" }, &mut out);
        let first = out.len();
        encode_request(&Request::Stats, &mut out);
        assert_eq!(
            decode_request(&out[4..first]).unwrap(),
            Request::Get { key: b"a" }
        );
        assert_eq!(decode_request(&out[first + 4..]).unwrap(), Request::Stats);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut out = Vec::new();
        encode_request(&Request::Stats, &mut out);
        let mut body = out[4..].to_vec();
        body.push(0);
        assert_eq!(
            decode_request(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn oversized_declarations_rejected() {
        // key_len beyond MAX_KEY with no actual bytes behind it.
        let mut body = vec![OP_GET];
        put_u16(&mut body, (MAX_KEY + 1) as u16);
        assert_eq!(decode_request(&body), Err(WireError::TooLarge));
        let mut body = vec![OP_SCAN];
        put_u32(&mut body, MAX_SCAN + 1);
        assert_eq!(decode_request(&body), Err(WireError::TooLarge));
    }

    #[test]
    fn flag_bytes_are_strict() {
        let mut body = vec![OP_VALUE, 2];
        put_u64(&mut body, 1);
        assert!(matches!(
            decode_response(&body),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert_eq!(decode_request(&[0x7E]), Err(WireError::UnknownOpcode(0x7E)));
        assert_eq!(
            decode_response(&[0x10]),
            Err(WireError::UnknownOpcode(0x10))
        );
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
    }
}
