//! Fuzz-style decoder suites on seeded SplitMix64 corpora.
//!
//! The contract under test: for *any* byte slice, `decode_request` /
//! `decode_response` and `FrameBuf::next_frame` either produce a complete,
//! well-formed message or return `Err` — they never panic, never loop, and
//! never read out of bounds. Three corpora exercise it: pure random bytes,
//! truncations of valid frames, and single-byte mutations of valid frames.

use gocc_telemetry::SplitMix64;
use gocc_wire::{
    decode_request, decode_response, encode_request, encode_response, FrameBuf, Request, Response,
};

/// A deterministic pool of valid requests covering every verb.
fn sample_request<'a>(rng: &mut SplitMix64, keybuf: &'a mut Vec<u8>) -> Request<'a> {
    keybuf.clear();
    let keylen = rng.below_usize(24);
    for _ in 0..keylen {
        keybuf.push(rng.next_u64() as u8);
    }
    match rng.below(7) {
        0 => Request::Get { key: keybuf },
        1 => Request::Set {
            key: keybuf,
            value: rng.next_u64(),
            ttl: rng.below(100),
        },
        2 => Request::Del { key: keybuf },
        3 => Request::Incr {
            key: keybuf,
            delta: rng.next_u64(),
        },
        4 => Request::Scan {
            limit: rng.below(u64::from(gocc_wire::MAX_SCAN) + 1) as u32,
        },
        5 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn sample_response(rng: &mut SplitMix64) -> Response<'static> {
    match rng.below(8) {
        0 => Response::Value {
            found: rng.flip(),
            value: rng.next_u64(),
        },
        1 => Response::Done,
        2 => Response::Deleted {
            existed: rng.flip(),
        },
        3 => Response::Counter {
            value: rng.next_u64(),
        },
        4 => {
            let n = rng.below_usize(50);
            Response::Entries {
                pairs: (0..n).map(|_| (rng.next_u64(), rng.next_u64())).collect(),
            }
        }
        5 => Response::Stats {
            json: r#"{"mode":"gocc","requests":12}"#,
        },
        6 => Response::Bye,
        _ => Response::Error {
            message: "seeded failure",
        },
    }
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    let mut buf = Vec::new();
    for _ in 0..20_000 {
        buf.clear();
        let len = rng.below_usize(64);
        for _ in 0..len {
            buf.push(rng.next_u64() as u8);
        }
        // Any result is acceptable; the process not panicking is the test.
        let _ = decode_request(&buf);
        let _ = decode_response(&buf);
    }
}

#[test]
fn truncations_of_valid_frames_always_err() {
    let mut rng = SplitMix64::new(42);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..500 {
        wire.clear();
        let req = sample_request(&mut rng, &mut keybuf);
        encode_request(&req, &mut wire);
        let body = &wire[4..];
        assert_eq!(
            decode_request(body).unwrap(),
            req,
            "sanity: full body decodes"
        );
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "strict truncation at {cut}/{} must not decode: {req:?}",
                body.len()
            );
        }
    }
}

#[test]
fn truncated_response_bodies_always_err() {
    let mut rng = SplitMix64::new(1337);
    let mut wire = Vec::new();
    for _ in 0..500 {
        wire.clear();
        let resp = sample_response(&mut rng);
        encode_response(&resp, &mut wire);
        let body = &wire[4..];
        assert_eq!(decode_response(body).unwrap(), resp);
        for cut in 0..body.len() {
            assert!(decode_response(&body[..cut]).is_err());
        }
    }
}

#[test]
fn single_byte_mutations_decode_or_err_but_never_panic() {
    let mut rng = SplitMix64::new(7);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..300 {
        wire.clear();
        let req = sample_request(&mut rng, &mut keybuf);
        encode_request(&req, &mut wire);
        let body = wire[4..].to_vec();
        for _ in 0..16 {
            let mut mutated = body.clone();
            let idx = rng.below_usize(mutated.len());
            mutated[idx] ^= 1 << rng.below(8);
            // Either a clean decode of *some* message or a clean error.
            let _ = decode_request(&mutated);
            let _ = decode_response(&mutated);
        }
    }
}

#[test]
fn frame_stream_with_garbage_tail_yields_frames_then_error() {
    let mut rng = SplitMix64::new(99);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    let mut expected = 0;
    for _ in 0..20 {
        let req = sample_request(&mut rng, &mut keybuf);
        encode_request(&req, &mut wire);
        expected += 1;
    }
    // A corrupt header after the valid prefix: length 0 is never legal.
    wire.extend_from_slice(&[0, 0, 0, 0]);
    let mut fb = FrameBuf::new();
    fb.extend(&wire);
    let mut seen = 0;
    loop {
        match fb.next_frame() {
            Ok(Some(body)) => {
                decode_request(body).expect("prefix frames are valid");
                seen += 1;
            }
            Ok(None) => panic!("must hit the corrupt header, not starvation"),
            Err(_) => break,
        }
    }
    assert_eq!(
        seen, expected,
        "every valid frame surfaced before the error"
    );
}
