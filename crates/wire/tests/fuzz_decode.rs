//! Fuzz-style decoder suites on seeded SplitMix64 corpora.
//!
//! The contract under test: for *any* byte slice, `decode_request` /
//! `decode_response` and `FrameBuf::next_frame` either produce a complete,
//! well-formed message or return `Err` — they never panic, never loop, and
//! never read out of bounds. Three corpora exercise it: pure random bytes,
//! truncations of valid frames, and single-byte mutations of valid frames.

use gocc_telemetry::SplitMix64;
use gocc_wire::{
    decode_repl_request, decode_request, decode_request_any, decode_response, encode_repl_request,
    encode_request, encode_request_v2, encode_response, FrameBuf, ReplRecord, ReplRequest, Request,
    Response, REPL_FLAG_FIN, REPL_FLAG_RESET, REPL_FLAG_SNAP,
};

/// A deterministic pool of valid requests covering every verb.
fn sample_request<'a>(rng: &mut SplitMix64, keybuf: &'a mut Vec<u8>) -> Request<'a> {
    keybuf.clear();
    let keylen = rng.below_usize(24);
    for _ in 0..keylen {
        keybuf.push(rng.next_u64() as u8);
    }
    match rng.below(12) {
        0 => Request::Get { key: keybuf },
        10 => Request::SetS {
            key: keybuf,
            value: rng.next_u64(),
            ttl: rng.below(100),
        },
        11 => Request::GetS {
            key: keybuf,
            min_version: rng.next_u64(),
        },
        1 => Request::Set {
            key: keybuf,
            value: rng.next_u64(),
            ttl: rng.below(100),
        },
        2 => Request::Del { key: keybuf },
        3 => Request::Incr {
            key: keybuf,
            delta: rng.next_u64(),
        },
        4 => Request::Scan {
            limit: rng.below(u64::from(gocc_wire::MAX_SCAN) + 1) as u32,
        },
        5 => Request::Stats,
        6 => Request::Health,
        7 => Request::Trace {
            max: rng.below(512) as u32,
        },
        8 => Request::Flush,
        _ => Request::Shutdown,
    }
}

/// A deterministic pool of valid replication requests.
fn sample_repl_request(rng: &mut SplitMix64) -> ReplRequest<'static> {
    match rng.below(5) {
        0 => ReplRequest::Hello {
            versions: (0..rng.below_usize(9)).map(|_| rng.next_u64()).collect(),
        },
        1 => ReplRequest::Ack {
            shard: rng.below(16) as u32,
            version: rng.next_u64(),
            nak: rng.flip(),
        },
        2 => ReplRequest::Candidate {
            epoch: rng.next_u64(),
            versions: (0..rng.below_usize(9)).map(|_| rng.next_u64()).collect(),
        },
        3 => ReplRequest::EpochAnnounce {
            epoch: rng.next_u64(),
            primary: if rng.flip() { b"" } else { b"127.0.0.1:7171" },
        },
        _ => ReplRequest::Promote {
            upstream: if rng.flip() { b"" } else { b"127.0.0.1:7171" },
        },
    }
}

fn sample_repl_batch(rng: &mut SplitMix64) -> Response<'static> {
    let flags = match rng.below(4) {
        0 => 0,
        1 => REPL_FLAG_SNAP | REPL_FLAG_RESET,
        2 => REPL_FLAG_SNAP | REPL_FLAG_FIN,
        _ => REPL_FLAG_SNAP | REPL_FLAG_RESET | REPL_FLAG_FIN,
    };
    let n = rng.below_usize(20);
    Response::ReplBatch {
        shard: rng.below(16) as u32,
        flags,
        prev_version: rng.next_u64(),
        now: rng.below(1 << 20),
        epoch: rng.next_u64(),
        records: (0..n)
            .map(|_| ReplRecord {
                kind: rng.below(3) as u8,
                key: rng.next_u64(),
                value: rng.next_u64(),
                exp: rng.below(1 << 20),
            })
            .collect(),
    }
}

fn sample_response(rng: &mut SplitMix64) -> Response<'static> {
    match rng.below(19) {
        13 => sample_repl_batch(rng),
        14 => Response::ReplWelcome {
            shards: rng.below(64) as u32,
            epoch: rng.next_u64(),
        },
        15 => Response::NotPrimary {
            hint: "127.0.0.1:7171",
        },
        16 => Response::ReplVote {
            granted: rng.flip(),
            epoch: rng.next_u64(),
            version_sum: rng.next_u64(),
        },
        17 => Response::DoneAt {
            shard: rng.below(64) as u32,
            version: rng.next_u64(),
        },
        18 => Response::Behind {
            version: rng.next_u64(),
        },
        0 => Response::Value {
            found: rng.flip(),
            value: rng.next_u64(),
        },
        1 => Response::Done,
        2 => Response::Deleted {
            existed: rng.flip(),
        },
        3 => Response::Counter {
            value: rng.next_u64(),
        },
        4 => {
            let n = rng.below_usize(50);
            Response::Entries {
                pairs: (0..n).map(|_| (rng.next_u64(), rng.next_u64())).collect(),
            }
        }
        5 => Response::Stats {
            json: r#"{"mode":"gocc","requests":12}"#,
        },
        6 => Response::Bye,
        7 => Response::Health {
            state: rng.below(3) as u8,
            shed_total: rng.next_u64(),
            deadline_misses: rng.next_u64(),
        },
        8 => Response::Overloaded {
            state: rng.below(3) as u8,
        },
        9 => Response::DeadlineExceeded,
        10 => Response::Trace {
            json: r#"{"spans":[],"pushed":3,"dropped":0}"#,
        },
        11 => Response::Flushed {
            durable_lsn: rng.next_u64(),
        },
        _ => Response::Error {
            message: "seeded failure",
        },
    }
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    let mut buf = Vec::new();
    for _ in 0..20_000 {
        buf.clear();
        let len = rng.below_usize(64);
        for _ in 0..len {
            buf.push(rng.next_u64() as u8);
        }
        // Any result is acceptable; the process not panicking is the test.
        let _ = decode_request(&buf);
        let _ = decode_response(&buf);
    }
}

#[test]
fn truncations_of_valid_frames_always_err() {
    let mut rng = SplitMix64::new(42);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..500 {
        wire.clear();
        let req = sample_request(&mut rng, &mut keybuf);
        encode_request(&req, &mut wire);
        let body = &wire[4..];
        assert_eq!(
            decode_request(body).unwrap(),
            req,
            "sanity: full body decodes"
        );
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "strict truncation at {cut}/{} must not decode: {req:?}",
                body.len()
            );
        }
    }
}

#[test]
fn truncated_response_bodies_always_err() {
    let mut rng = SplitMix64::new(1337);
    let mut wire = Vec::new();
    for _ in 0..500 {
        wire.clear();
        let resp = sample_response(&mut rng);
        encode_response(&resp, &mut wire);
        let body = &wire[4..];
        assert_eq!(decode_response(body).unwrap(), resp);
        for cut in 0..body.len() {
            assert!(decode_response(&body[..cut]).is_err());
        }
    }
}

#[test]
fn repl_truncations_and_mutations_never_panic() {
    let mut rng = SplitMix64::new(0x8D8D);
    let mut wire = Vec::new();
    for _ in 0..300 {
        // Requests: HELLO/ACK/PROMOTE.
        wire.clear();
        let req = sample_repl_request(&mut rng);
        encode_repl_request(&req, &mut wire);
        let body = wire[4..].to_vec();
        assert_eq!(decode_repl_request(&body).unwrap(), req);
        for cut in 0..body.len() {
            assert!(
                decode_repl_request(&body[..cut]).is_err(),
                "repl truncation at {cut} must not decode: {req:?}"
            );
        }
        for _ in 0..8 {
            let mut mutated = body.clone();
            let idx = rng.below_usize(mutated.len());
            mutated[idx] ^= 1 << rng.below(8);
            let _ = decode_repl_request(&mutated);
        }
        // Responses: batches (the long-payload path).
        wire.clear();
        let resp = sample_repl_batch(&mut rng);
        encode_response(&resp, &mut wire);
        let body = wire[4..].to_vec();
        assert_eq!(decode_response(&body).unwrap(), resp);
        for cut in 0..body.len() {
            assert!(decode_response(&body[..cut]).is_err());
        }
        for _ in 0..8 {
            let mut mutated = body.clone();
            let idx = rng.below_usize(mutated.len());
            mutated[idx] ^= 1 << rng.below(8);
            let _ = decode_response(&mutated);
        }
    }
}

#[test]
fn single_byte_mutations_decode_or_err_but_never_panic() {
    let mut rng = SplitMix64::new(7);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..300 {
        wire.clear();
        let req = sample_request(&mut rng, &mut keybuf);
        encode_request(&req, &mut wire);
        let body = wire[4..].to_vec();
        for _ in 0..16 {
            let mut mutated = body.clone();
            let idx = rng.below_usize(mutated.len());
            mutated[idx] ^= 1 << rng.below(8);
            // Either a clean decode of *some* message or a clean error.
            let _ = decode_request(&mutated);
            let _ = decode_response(&mutated);
        }
    }
}

#[test]
fn v2_truncations_and_mutations_never_panic() {
    let mut rng = SplitMix64::new(0xB2B2);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..300 {
        wire.clear();
        let req = sample_request(&mut rng, &mut keybuf);
        let deadline = if rng.flip() {
            Some(rng.next_u64() as u32)
        } else {
            None
        };
        encode_request_v2(&req, deadline, &mut wire);
        let body = wire[4..].to_vec();
        let frame = decode_request_any(&body).expect("full v2 body decodes");
        assert_eq!(frame.req, req);
        assert_eq!(frame.deadline_us, deadline);
        for cut in 0..body.len() {
            assert!(
                decode_request_any(&body[..cut]).is_err(),
                "v2 truncation at {cut} must not decode"
            );
        }
        for _ in 0..8 {
            let mut mutated = body.clone();
            let idx = rng.below_usize(mutated.len());
            mutated[idx] ^= 1 << rng.below(8);
            let _ = decode_request_any(&mutated);
        }
    }
}

#[test]
fn frame_stream_with_seeded_oversized_frames_resynchronizes() {
    // Interleave valid v1/v2 frames with oversized frames at seeded
    // positions; FrameBuf must yield every valid frame, surface TooLarge
    // once per oversized frame, and never wedge or panic.
    let mut rng = SplitMix64::new(0x0512);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    let mut valid = 0u32;
    let mut oversized = 0u32;
    for _ in 0..40 {
        if rng.below(4) == 0 {
            let len = (gocc_wire::MAX_FRAME + 1 + rng.below_usize(4096)) as u32;
            wire.extend_from_slice(&len.to_le_bytes());
            wire.resize(wire.len() + len as usize, 0x5A);
            oversized += 1;
        } else {
            let req = sample_request(&mut rng, &mut keybuf);
            if rng.flip() {
                encode_request(&req, &mut wire);
            } else {
                encode_request_v2(&req, Some(rng.next_u64() as u32), &mut wire);
            }
            valid += 1;
        }
    }
    let mut fb = FrameBuf::new();
    let mut seen = 0u32;
    let mut too_large = 0u32;
    for chunk in wire.chunks(1237) {
        fb.extend(chunk);
        loop {
            match fb.next_frame() {
                Ok(Some(body)) => {
                    decode_request_any(body).expect("interleaved frames are valid");
                    seen += 1;
                }
                Ok(None) => break,
                Err(gocc_wire::WireError::TooLarge) => too_large += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(fb.pending() < 8192, "oversized bodies must not buffer");
    }
    assert_eq!(seen, valid);
    assert_eq!(too_large, oversized);
    assert_eq!(fb.pending(), 0);
}

#[test]
fn frame_stream_with_garbage_tail_yields_frames_then_error() {
    let mut rng = SplitMix64::new(99);
    let mut keybuf = Vec::new();
    let mut wire = Vec::new();
    let mut expected = 0;
    for _ in 0..20 {
        let req = sample_request(&mut rng, &mut keybuf);
        encode_request(&req, &mut wire);
        expected += 1;
    }
    // A corrupt header after the valid prefix: length 0 is never legal.
    wire.extend_from_slice(&[0, 0, 0, 0]);
    let mut fb = FrameBuf::new();
    fb.extend(&wire);
    let mut seen = 0;
    loop {
        match fb.next_frame() {
            Ok(Some(body)) => {
                decode_request(body).expect("prefix frames are valid");
                seen += 1;
            }
            Ok(None) => panic!("must hit the corrupt header, not starvation"),
            Err(_) => break,
        }
    }
    assert_eq!(
        seen, expected,
        "every valid frame surfaced before the error"
    );
}
