//! Critical-section execution: original locks vs. GOCC.

use gocc_htm::{Tx, TxResult};
use gocc_optilock::{critical, GoccRuntime, LockRef};
use gocc_telemetry::trace;
use gocc_telemetry::{Span, SpanKind, Telemetry, TelemetryReport};

/// Which program variant runs: the baseline or the transformed one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The original pessimistic program (`sync.Mutex`/`sync.RWMutex`).
    Lock,
    /// The GOCC-transformed program (`optiLib` lock elision).
    Gocc,
}

/// Executes critical sections under a chosen [`Mode`].
///
/// The workload code is written once against the transactional API; the
/// engine decides whether a section runs under the real lock (with direct
/// memory access, exactly the cost profile of the untransformed program)
/// or through `optiLib`'s `FastLock` machinery.
pub struct Engine<'a> {
    rt: &'a GoccRuntime,
    mode: Mode,
}

impl<'a> Engine<'a> {
    /// Creates an engine over a runtime.
    #[must_use]
    pub fn new(rt: &'a GoccRuntime, mode: Mode) -> Self {
        Engine { rt, mode }
    }

    /// The runtime in use.
    #[must_use]
    pub fn runtime(&self) -> &'a GoccRuntime {
        self.rt
    }

    /// The execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The runtime's telemetry bundle, when enabled via
    /// [`gocc_optilock::GoccConfig::with_telemetry`].
    #[must_use]
    pub fn telemetry(&self) -> Option<&'a Telemetry> {
        self.rt.telemetry()
    }

    /// Snapshots the runtime's telemetry into a report, when enabled.
    #[must_use]
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        self.rt.telemetry().map(Telemetry::report)
    }

    /// Runs a critical section that the analyzer accepted for elision.
    ///
    /// In [`Mode::Lock`] the original lock is taken (bypassing the lock
    /// word — the baseline program has no speculating peers); in
    /// [`Mode::Gocc`] the section goes through `optiLib`.
    pub fn section<R>(
        &self,
        site: usize,
        lock: LockRef<'a>,
        body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
    ) -> R {
        let trace_id = trace::current();
        if trace_id == 0 {
            return match self.mode {
                Mode::Gocc => critical(self.rt, site, lock, body),
                Mode::Lock => self.pessimistic(lock, body),
            };
        }
        // Sampled request: wrap the whole elision envelope (all retries
        // and the fallback included) in one section span.
        let start = trace::now_ns();
        let out = match self.mode {
            Mode::Gocc => critical(self.rt, site, lock, body),
            Mode::Lock => self.pessimistic(lock, body),
        };
        self.rt.tracer().push(Span {
            trace_id,
            kind: SpanKind::Section,
            start_ns: start,
            dur_ns: trace::now_ns().saturating_sub(start),
            a: site as u64,
            b: 0,
        });
        out
    }

    /// Runs a critical section that GOCC did *not* transform (e.g.
    /// fastcache's panic-guarded `Set`): both modes use the original lock.
    ///
    /// In GOCC mode the acquisition must go through the elidable wrapper
    /// (bumping the lock word) so concurrent elided sections on the same
    /// lock abort correctly — this is the lock/HTM interoperability of §4.
    pub fn untransformed_section<R>(
        &self,
        lock: LockRef<'a>,
        mut body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
    ) -> R {
        match self.mode {
            Mode::Lock => self.pessimistic(lock, body),
            Mode::Gocc => {
                acquire_elidable(lock);
                let mut tx = Tx::direct(self.rt.htm());
                let out = body(&mut tx).expect("direct sections cannot abort");
                tx.commit().expect("direct commits succeed");
                release_elidable(lock);
                out
            }
        }
    }

    fn pessimistic<R>(
        &self,
        lock: LockRef<'a>,
        mut body: impl FnMut(&mut Tx<'a>) -> TxResult<R>,
    ) -> R {
        acquire_raw(lock);
        let mut tx = Tx::direct(self.rt.htm());
        let out = body(&mut tx).expect("direct sections cannot abort");
        tx.commit().expect("direct commits succeed");
        release_raw(lock);
        out
    }
}

fn acquire_raw(lock: LockRef<'_>) {
    match lock {
        LockRef::Mutex(m) => m.go_mutex().lock_raw(),
        LockRef::Read(rw) => rw.go_rwmutex().rlock_raw(),
        LockRef::Write(rw) => rw.go_rwmutex().lock_raw(),
    }
}

fn release_raw(lock: LockRef<'_>) {
    match lock {
        LockRef::Mutex(m) => m.go_mutex().unlock_raw(),
        LockRef::Read(rw) => rw.go_rwmutex().runlock_raw(),
        LockRef::Write(rw) => rw.go_rwmutex().unlock_raw(),
    }
}

fn acquire_elidable(lock: LockRef<'_>) {
    match lock {
        LockRef::Mutex(m) => m.lock_raw(),
        LockRef::Read(rw) => rw.rlock_raw(),
        LockRef::Write(rw) => rw.lock_raw(),
    }
}

fn release_elidable(lock: LockRef<'_>) {
    match lock {
        LockRef::Mutex(m) => m.unlock_raw(),
        LockRef::Read(rw) => rw.runlock_raw(),
        LockRef::Write(rw) => rw.unlock_raw(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocc_htm::TxVar;
    use gocc_optilock::ElidableMutex;

    #[test]
    fn both_modes_produce_same_result() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let engine = Engine::new(&rt, mode);
            let m = ElidableMutex::new();
            let v = TxVar::new(0u64);
            for _ in 0..100 {
                engine.section(gocc_optilock::call_site!(), LockRef::Mutex(&m), |tx| {
                    let cur = tx.read(&v)?;
                    tx.write(&v, cur + 1)
                });
            }
            let mut check = Tx::direct(rt.htm());
            assert_eq!(check.read(&v).unwrap(), 100, "mode {mode:?}");
        }
    }

    #[test]
    fn lock_mode_never_speculates() {
        let rt = GoccRuntime::new_default();
        let engine = Engine::new(&rt, Mode::Lock);
        let m = ElidableMutex::new();
        let v = TxVar::new(0u64);
        engine.section(gocc_optilock::call_site!(), LockRef::Mutex(&m), |tx| {
            tx.write(&v, 1)
        });
        assert_eq!(rt.stats().snapshot().htm_attempts, 0);
        assert_eq!(rt.htm().stats().snapshot().starts, 0);
    }

    #[test]
    fn untransformed_sections_interoperate_with_elided_ones() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let engine = Engine::new(&rt, Mode::Gocc);
        let m = ElidableMutex::new();
        let v = TxVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..200 {
                        engine.section(gocc_optilock::call_site!(), LockRef::Mutex(&m), |tx| {
                            let cur = tx.read(&v)?;
                            tx.write(&v, cur + 1)
                        });
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..200 {
                        engine.untransformed_section(LockRef::Mutex(&m), |tx| {
                            let cur = tx.read(&v)?;
                            tx.write(&v, cur + 1)
                        });
                    }
                });
            }
        });
        let mut check = Tx::direct(rt.htm());
        assert_eq!(check.read(&v).unwrap(), 800, "no lost updates across paths");
    }
}
