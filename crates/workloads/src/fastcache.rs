//! A fastcache-like sharded byte cache (Figure 9).
//!
//! Structure mirrors VictoriaMetrics/fastcache: fixed shards ("buckets")
//! each guarded by an `RWMutex`, values stored out-of-line in append-only
//! chunk storage (the [`Arena`]) and indexed by offset, plus shared stats
//! counters updated inside `Get`'s critical section — the "few atomic add
//! instructions, which update shared variables" that §6.1 blames for
//! vanishing speedups at high core counts.
//!
//! `Set` validates its inputs and may panic, which is why GOCC's analyzer
//! leaves its lock untransformed (condition 4); the workload runs it
//! through [`Engine::untransformed_section`] in GOCC mode.

use gocc_htm::Tx;
use gocc_optilock::{call_site, ElidableRwMutex, LockRef};
use gocc_txds::{fnv1a, Arena, BlobHandle, TxCounter, TxMap};

use crate::engine::Engine;

/// Shard count (fastcache uses 512; scaled to the simulation).
pub const SHARDS: usize = 16;

/// Maximum value size `Set` accepts before panicking, like fastcache's
/// 64 KB limit.
pub const MAX_VALUE_LEN: usize = 64 * 1024;

struct Shard {
    lock: ElidableRwMutex,
    index: TxMap,
}

/// The sharded cache.
pub struct FastCache {
    shards: Vec<Shard>,
    arena: Arena,
    /// Shared stats updated inside critical sections.
    get_calls: TxCounter,
    set_calls: TxCounter,
    misses: TxCounter,
}

impl FastCache {
    /// Creates an empty cache sized for roughly `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FastCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    lock: ElidableRwMutex::new(),
                    index: TxMap::with_capacity((capacity / SHARDS).max(16) * 4),
                })
                .collect(),
            arena: Arena::new(),
            get_calls: TxCounter::new(0),
            set_calls: TxCounter::new(0),
            misses: TxCounter::new(0),
        }
    }

    /// Benchmark key hash.
    #[must_use]
    pub fn key(i: usize) -> u64 {
        fnv1a(format!("\x00\x01key{i}").as_bytes())
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key as usize) % SHARDS]
    }

    /// `CacheGet`: look up a key and copy its value out. The critical
    /// section updates the shared `get_calls`/`misses` counters, so at
    /// high concurrency even read-mostly sections conflict (the Figure 9
    /// dynamic the perceptron then dampens).
    pub fn get(&self, engine: &Engine<'_>, key: u64) -> Option<Vec<u8>> {
        let shard = self.shard(key);
        let handle = engine.section(call_site!(), LockRef::Read(&shard.lock), |tx| {
            self.get_calls.add(tx, 1)?;
            match shard.index.get(tx, key)? {
                Some(raw) => Ok(Some(BlobHandle::from_raw(raw))),
                None => {
                    self.misses.add(tx, 1)?;
                    Ok(None)
                }
            }
        })?;
        self.arena.load(handle)
    }

    /// `CacheHas`: like `Get` but without materializing the value —
    /// shorter section, fewer conflicts, higher speedups (per the paper).
    pub fn has(&self, engine: &Engine<'_>, key: u64) -> bool {
        let shard = self.shard(key);
        engine.section(call_site!(), LockRef::Read(&shard.lock), |tx| {
            shard.index.contains(tx, key)
        })
    }

    /// `CacheSet`: validates, stores the blob, indexes it. May panic on
    /// oversized values, so GOCC leaves the lock untransformed; both modes
    /// run it pessimistically (via the elidable wrapper in GOCC mode, so
    /// concurrent elided readers abort correctly).
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`MAX_VALUE_LEN`], like fastcache.
    pub fn set(&self, engine: &Engine<'_>, key: u64, value: &[u8]) {
        assert!(
            value.len() <= MAX_VALUE_LEN,
            "fastcache: value too large ({} bytes)",
            value.len()
        );
        let handle = self.arena.store(value);
        let shard = self.shard(key);
        engine.untransformed_section(LockRef::Write(&shard.lock), |tx| {
            self.set_calls.add(tx, 1)?;
            shard.index.insert(tx, key, handle.to_raw())?;
            Ok(())
        });
    }

    /// `CacheDel`.
    pub fn del(&self, engine: &Engine<'_>, key: u64) {
        let shard = self.shard(key);
        engine.section(call_site!(), LockRef::Write(&shard.lock), |tx| {
            shard.index.remove(tx, key)?;
            Ok(())
        });
    }

    /// Total entries across shards (reads every shard lock).
    pub fn entry_count(&self, engine: &Engine<'_>) -> u64 {
        let mut total = 0;
        for shard in &self.shards {
            total += engine.section(call_site!(), LockRef::Read(&shard.lock), |tx| {
                shard.index.len(tx)
            });
        }
        total
    }

    /// Stats snapshot `(get_calls, set_calls, misses)`.
    pub fn stats(&self, engine: &Engine<'_>) -> (u64, u64, u64) {
        // Stats counters are owned by the cache as a whole; read them
        // under the first shard's lock (any serialization point works).
        engine.section(call_site!(), LockRef::Read(&self.shards[0].lock), |tx| {
            Ok((
                self.get_calls.get(tx)?,
                self.set_calls.get(tx)?,
                self.misses.get(tx)?,
            ))
        })
    }

    /// Preloads `n` entries without concurrency.
    pub fn preload(&self, rt: &gocc_htm::HtmRuntime, n: usize, value: &[u8]) {
        let mut tx = Tx::direct(rt);
        for i in 0..n {
            let key = Self::key(i);
            let handle = self.arena.store(value);
            self.shard(key)
                .index
                .insert(&mut tx, key, handle.to_raw())
                .expect("preload");
        }
        tx.commit().expect("direct commit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mode;
    use gocc_optilock::GoccRuntime;

    #[test]
    fn set_get_roundtrip_in_both_modes() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let cache = FastCache::new(256);
            let engine = Engine::new(&rt, mode);
            cache.set(&engine, FastCache::key(1), b"hello");
            assert_eq!(
                cache.get(&engine, FastCache::key(1)).as_deref(),
                Some(&b"hello"[..])
            );
            assert!(cache.has(&engine, FastCache::key(1)));
            assert!(!cache.has(&engine, FastCache::key(42)));
            assert_eq!(cache.get(&engine, FastCache::key(42)), None);
            let (gets, sets, misses) = cache.stats(&engine);
            assert_eq!((gets, sets, misses), (2, 1, 1));
        }
    }

    #[test]
    #[should_panic(expected = "value too large")]
    fn oversized_set_panics() {
        let rt = GoccRuntime::new_default();
        let cache = FastCache::new(16);
        let engine = Engine::new(&rt, Mode::Lock);
        let big = vec![0u8; MAX_VALUE_LEN + 1];
        cache.set(&engine, 1, &big);
    }

    #[test]
    fn del_and_entry_count() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let cache = FastCache::new(256);
        cache.preload(rt.htm(), 20, b"v");
        let engine = Engine::new(&rt, Mode::Gocc);
        assert_eq!(cache.entry_count(&engine), 20);
        cache.del(&engine, FastCache::key(3));
        assert_eq!(cache.entry_count(&engine), 19);
    }

    #[test]
    fn concurrent_get_set_consistent() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let cache = FastCache::new(1024);
        cache.preload(rt.htm(), 64, b"init");
        let engine = Engine::new(&rt, Mode::Gocc);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let (engine, cache) = (&engine, &cache);
                s.spawn(move || {
                    for i in 0..100 {
                        if t % 2 == 0 {
                            let _ = cache.get(engine, FastCache::key(i % 64));
                        } else {
                            cache.set(engine, FastCache::key(i % 64), b"updated");
                        }
                    }
                });
            }
        });
        // All keys still resolve to a valid blob.
        for i in 0..64 {
            let v = cache.get(&engine, FastCache::key(i)).expect("present");
            assert!(v == b"init" || v == b"updated");
        }
    }
}
