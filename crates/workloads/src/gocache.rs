//! A go-cache-like in-memory key/value store (Figure 7).
//!
//! Two layers, exactly like the original benchmarks: direct map access
//! guarded by an `RWMutex` (the group that speeds up by >100% under GOCC
//! because elision removes the contended reader-count RMWs), and the cache
//! layer that adds expiration bookkeeping on top (mildly improved, never
//! degraded).

use gocc_htm::Tx;
use gocc_optilock::{call_site, ElidableRwMutex, LockRef};
use gocc_txds::{fnv1a, TxMap};

use crate::engine::Engine;

/// The direct RWMutex-protected map of the `RWMutexMap*` benchmarks.
pub struct RwMap {
    lock: ElidableRwMutex,
    items: TxMap,
}

impl RwMap {
    /// Creates a map preloaded with `preload` keys.
    #[must_use]
    pub fn new(rt: &gocc_htm::HtmRuntime, preload: usize) -> Self {
        let map = RwMap {
            lock: ElidableRwMutex::new(),
            items: TxMap::with_capacity(preload * 4),
        };
        let mut tx = Tx::direct(rt);
        for i in 0..preload {
            map.items
                .insert(&mut tx, Self::key(i), i as u64)
                .expect("preload");
        }
        tx.commit().expect("direct commit");
        map
    }

    /// Benchmark key hash (`"foo"`-style small string keys).
    #[must_use]
    pub fn key(i: usize) -> u64 {
        fnv1a(format!("key-{i}").as_bytes())
    }

    /// `RWMutexMapGet`: read one key under `RLock`.
    pub fn get(&self, engine: &Engine<'_>, key: u64) -> Option<u64> {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            self.items.get(tx, key)
        })
    }

    /// `RWMutexMapSet`: store one key under `Lock`.
    pub fn set(&self, engine: &Engine<'_>, key: u64, value: u64) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            self.items.insert(tx, key, value)?;
            Ok(())
        });
    }

    /// `RWMutexMapLen`: size query under `RLock`.
    pub fn len(&self, engine: &Engine<'_>) -> u64 {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            self.items.len(tx)
        })
    }
}

/// One replicated mutation for [`Cache::apply_versioned`]: the post-image
/// a primary's committed write produced, in a form a replica can apply
/// without re-running the verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOp {
    /// Store `value` with absolute expiration `exp` (0 = none).
    Put {
        /// Hashed key word.
        key: u64,
        /// Value word.
        value: u64,
        /// Absolute expiration tick.
        exp: u64,
    },
    /// Remove the key.
    Del {
        /// Hashed key word.
        key: u64,
    },
    /// Store `value`, preserving any existing expiration (the INCR
    /// post-image).
    PutVal {
        /// Hashed key word.
        key: u64,
        /// Value word.
        value: u64,
    },
}

/// One pre-decoded request in a batched shard-group, for
/// [`Cache::execute_batch`]: the subset of verbs that touch a single key
/// (SCAN and control verbs never batch), with the key already hashed so
/// the section body does no parsing or hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Point lookup (expiration-checked, like [`Cache::get`]).
    Get {
        /// Hashed key word.
        key: u64,
    },
    /// Store with a ttl resolved against the in-section logical clock.
    Set {
        /// Hashed key word.
        key: u64,
        /// Value word.
        value: u64,
        /// Relative ttl in clock ticks (0 = never expires).
        ttl: u64,
    },
    /// Remove the key.
    Del {
        /// Hashed key word.
        key: u64,
    },
    /// Wrapping add, missing key treated as 0.
    Incr {
        /// Hashed key word.
        key: u64,
        /// Amount to add.
        delta: u64,
    },
}

/// Per-op result of [`Cache::execute_batch`], in input order. Mutating
/// replies carry the same `seq` the `_seq` single-op methods return, so
/// WAL staging and replication publishing see identical records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchReply {
    /// GET result.
    Value {
        /// Whether the key was present and unexpired.
        found: bool,
        /// The value (0 when not found).
        value: u64,
    },
    /// SET result.
    Stored {
        /// Commit sequence number of the write.
        seq: u64,
        /// Resolved absolute expiration tick (0 = none).
        exp: u64,
    },
    /// DEL result.
    Deleted {
        /// Whether the key existed.
        existed: bool,
        /// Commit sequence number of the write.
        seq: u64,
    },
    /// INCR result.
    Counter {
        /// The post-increment value.
        value: u64,
        /// Commit sequence number of the write.
        seq: u64,
    },
}

/// The cache layer of go-cache: values carry an expiration stamp.
pub struct Cache {
    lock: ElidableRwMutex,
    /// key → value; a parallel map holds expirations.
    items: TxMap,
    expirations: TxMap,
    /// Logical clock standing in for `time.Now()` (advanced by the
    /// harness; reading wall-clock time inside a transaction would be an
    /// HTM-unfriendly operation on real hardware too).
    now: gocc_txds::TxCounter,
    /// Commit sequence number for durable writes: bumped *inside* the
    /// mutating critical section, so the sequence order equals the commit
    /// order and a WAL replay sorted by it rebuilds this exact state.
    seq: gocc_txds::TxCounter,
}

impl Cache {
    /// Creates an empty cache with room for `capacity` entries (the
    /// server's constructor: capacity is a deployment decision there, not
    /// a function of preloaded benchmark keys). `TxMap` probing degrades
    /// near full occupancy, so size at roughly 2× the expected key count.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Cache {
            lock: ElidableRwMutex::new(),
            items: TxMap::with_capacity(capacity),
            expirations: TxMap::with_capacity(capacity),
            now: gocc_txds::TxCounter::new(1),
            seq: gocc_txds::TxCounter::new(0),
        }
    }

    /// Creates a cache preloaded with `preload` non-expiring keys.
    #[must_use]
    pub fn new(rt: &gocc_htm::HtmRuntime, preload: usize) -> Self {
        let c = Cache::with_capacity(preload * 4);
        let mut tx = Tx::direct(rt);
        for i in 0..preload {
            c.items
                .insert(&mut tx, RwMap::key(i), i as u64)
                .expect("preload");
            c.expirations
                .insert(&mut tx, RwMap::key(i), 0)
                .expect("preload");
        }
        tx.commit().expect("direct commit");
        c
    }

    /// `CacheGet(NotExpiring)`: lookup + expiration check under `RLock`.
    pub fn get(&self, engine: &Engine<'_>, key: u64) -> Option<u64> {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            let Some(v) = self.items.get(tx, key)? else {
                return Ok(None);
            };
            let exp = self.expirations.get(tx, key)?.unwrap_or(0);
            if exp != 0 {
                let now = self.now.get(tx)?;
                if exp < now {
                    return Ok(None);
                }
            }
            Ok(Some(v))
        })
    }

    /// `CacheSet`: store with expiration under `Lock`.
    pub fn set(&self, engine: &Engine<'_>, key: u64, value: u64, ttl: u64) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let exp = if ttl == 0 { 0 } else { self.now.get(tx)? + ttl };
            self.items.insert(tx, key, value)?;
            self.expirations.insert(tx, key, exp)?;
            Ok(())
        });
    }

    /// `CacheDelete`. Returns whether the key existed.
    pub fn delete(&self, engine: &Engine<'_>, key: u64) -> bool {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let existed = self.items.remove(tx, key)?.is_some();
            self.expirations.remove(tx, key)?;
            Ok(existed)
        })
    }

    /// `CacheIncrement`: wrapping add to the value under `key`, treating a
    /// missing key as 0; returns the new value. The read-modify-write runs
    /// as one critical section, so concurrent increments never lose
    /// updates in either mode.
    pub fn incr(&self, engine: &Engine<'_>, key: u64, delta: u64) -> u64 {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let cur = self.items.get(tx, key)?.unwrap_or(0);
            let new = cur.wrapping_add(delta);
            self.items.insert(tx, key, new)?;
            Ok(new)
        })
    }

    /// Dumps up to `limit` `(key, value)` pairs under `RLock`, in table
    /// order (expiration stamps are not consulted — this is the cheap
    /// diagnostic dump, not a point lookup). The full-table walk makes a
    /// deliberately large read set: under GOCC this is the
    /// capacity-abort generator among the server's verbs.
    pub fn scan(&self, engine: &Engine<'_>, limit: usize) -> Vec<(u64, u64)> {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            // Built fresh on every attempt: an aborted speculation re-runs
            // the closure, and entries from the doomed attempt must not
            // survive into the retry.
            let mut out = Vec::new();
            self.items.for_each(tx, |k, v| {
                if out.len() < limit {
                    out.push((k, v));
                }
            })?;
            Ok(out)
        })
    }

    /// Advances the logical clock (harness only, not a benchmark op).
    pub fn tick(&self, engine: &Engine<'_>) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            self.now.add(tx, 1)?;
            Ok(())
        });
    }

    /// `CacheItemCount`.
    pub fn item_count(&self, engine: &Engine<'_>) -> u64 {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            self.items.len(tx)
        })
    }

    // ------------------------------------------------------------------
    // Durable-write support (the server's WAL rides on these).
    //
    // Each `_seq` variant is its plain counterpart plus a sequence bump
    // inside the same critical section; the returned `seq` totally orders
    // this write against every other mutation of the shard, which is what
    // makes a replay sorted by `seq` rebuild the same state. The plain
    // methods stay untouched — benchmarks pay nothing for durability.
    // ------------------------------------------------------------------

    /// [`Cache::set`] returning `(seq, exp)` for WAL staging (the resolved
    /// absolute expiration is what replay must restore, not the ttl).
    pub fn set_seq(&self, engine: &Engine<'_>, key: u64, value: u64, ttl: u64) -> (u64, u64) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let exp = if ttl == 0 { 0 } else { self.now.get(tx)? + ttl };
            self.items.insert(tx, key, value)?;
            self.expirations.insert(tx, key, exp)?;
            let seq = self.seq.add(tx, 1)?;
            Ok((seq, exp))
        })
    }

    /// [`Cache::delete`] returning `(existed, seq)` for WAL staging.
    pub fn delete_seq(&self, engine: &Engine<'_>, key: u64) -> (bool, u64) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let existed = self.items.remove(tx, key)?.is_some();
            self.expirations.remove(tx, key)?;
            let seq = self.seq.add(tx, 1)?;
            Ok((existed, seq))
        })
    }

    /// [`Cache::incr`] returning `(new_value, seq)` for WAL staging. The
    /// log records the post-image (the new value), not the delta, so
    /// replaying any suffix of the log is idempotent per key.
    pub fn incr_seq(&self, engine: &Engine<'_>, key: u64, delta: u64) -> (u64, u64) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let cur = self.items.get(tx, key)?.unwrap_or(0);
            let new = cur.wrapping_add(delta);
            self.items.insert(tx, key, new)?;
            let seq = self.seq.add(tx, 1)?;
            Ok((new, seq))
        })
    }

    /// Executes a whole shard-group of verbs through **one** critical
    /// section — the paper's amortization applied per-batch: one
    /// FastLock/FastUnlock (or one elision envelope) covers every request
    /// in `ops` instead of one per request. Replies come back in input
    /// order and are bit-identical to what the single-op methods
    /// ([`Cache::get`], [`Cache::set_seq`], [`Cache::delete_seq`],
    /// [`Cache::incr_seq`]) would have produced executed back-to-back.
    ///
    /// Takes the write lock only when the batch mutates; an all-GET batch
    /// stays on the read side so concurrent read batches still elide in
    /// parallel. Fallback under aborts is whole-shard-group retry: the
    /// engine re-runs this closure (speculatively or, after repeated
    /// aborts, under the pessimistic lock), which is still a single
    /// acquisition for the group — amortization survives the fallback.
    pub fn execute_batch(&self, engine: &Engine<'_>, ops: &[BatchOp]) -> Vec<BatchReply> {
        let write = ops.iter().any(|op| !matches!(op, BatchOp::Get { .. }));
        let lock = if write {
            LockRef::Write(&self.lock)
        } else {
            LockRef::Read(&self.lock)
        };
        engine.section(call_site!(), lock, |tx| {
            // Built fresh on every attempt: an aborted speculation re-runs
            // the closure, and replies from the doomed attempt must not
            // survive into the retry.
            let mut out = Vec::with_capacity(ops.len());
            for op in ops {
                let reply = match *op {
                    BatchOp::Get { key } => match self.items.get(tx, key)? {
                        None => BatchReply::Value {
                            found: false,
                            value: 0,
                        },
                        Some(v) => {
                            let exp = self.expirations.get(tx, key)?.unwrap_or(0);
                            if exp != 0 && exp < self.now.get(tx)? {
                                BatchReply::Value {
                                    found: false,
                                    value: 0,
                                }
                            } else {
                                BatchReply::Value {
                                    found: true,
                                    value: v,
                                }
                            }
                        }
                    },
                    BatchOp::Set { key, value, ttl } => {
                        let exp = if ttl == 0 { 0 } else { self.now.get(tx)? + ttl };
                        self.items.insert(tx, key, value)?;
                        self.expirations.insert(tx, key, exp)?;
                        let seq = self.seq.add(tx, 1)?;
                        BatchReply::Stored { seq, exp }
                    }
                    BatchOp::Del { key } => {
                        let existed = self.items.remove(tx, key)?.is_some();
                        self.expirations.remove(tx, key)?;
                        let seq = self.seq.add(tx, 1)?;
                        BatchReply::Deleted { existed, seq }
                    }
                    BatchOp::Incr { key, delta } => {
                        let cur = self.items.get(tx, key)?.unwrap_or(0);
                        let new = cur.wrapping_add(delta);
                        self.items.insert(tx, key, new)?;
                        let seq = self.seq.add(tx, 1)?;
                        BatchReply::Counter { value: new, seq }
                    }
                };
                out.push(reply);
            }
            Ok(out)
        })
    }

    /// Consistent snapshot of the shard — `(key, value, exp)` triples plus
    /// the sequence and clock — taken in **one** read section, so it
    /// captures a state that actually existed: every write with `seq` ≤
    /// the returned value is included, every later one excluded.
    pub fn snapshot(&self, engine: &Engine<'_>) -> (Vec<(u64, u64, u64)>, u64, u64) {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            // Built fresh per attempt: an aborted speculation must not
            // leak doomed entries into the retry.
            let mut pairs = Vec::new();
            self.items.for_each(tx, |k, v| pairs.push((k, v)))?;
            let mut entries = Vec::with_capacity(pairs.len());
            for (k, v) in pairs {
                let exp = self.expirations.get(tx, k)?.unwrap_or(0);
                entries.push((k, v, exp));
            }
            let seq = self.seq.get(tx)?;
            let now = self.now.get(tx)?;
            Ok((entries, seq, now))
        })
    }

    /// Current shard version: the sequence number of the last committed
    /// write, read in its own read section.
    pub fn version(&self, engine: &Engine<'_>) -> u64 {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            self.seq.get(tx)
        })
    }

    /// The paper's validate-then-apply, on the wire: applies a replicated
    /// batch **only if** the shard's version equals `prev_version`, all in
    /// one write section. On match, every op is applied, the version
    /// advances to `prev_version + ops.len()`, the logical clock catches
    /// up to the primary's `now`, and the new version is returned. On
    /// mismatch nothing is applied and `Err(actual_version)` is returned —
    /// the `ConcurrencyConflict` the replication stream answers with a
    /// NAK.
    pub fn apply_versioned(
        &self,
        engine: &Engine<'_>,
        prev_version: u64,
        now: u64,
        ops: &[CacheOp],
    ) -> Result<u64, u64> {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let cur = self.seq.get(tx)?;
            if cur != prev_version {
                return Ok(Err(cur));
            }
            for op in ops {
                match *op {
                    CacheOp::Put { key, value, exp } => {
                        self.items.insert(tx, key, value)?;
                        self.expirations.insert(tx, key, exp)?;
                    }
                    CacheOp::Del { key } => {
                        self.items.remove(tx, key)?;
                        self.expirations.remove(tx, key)?;
                    }
                    CacheOp::PutVal { key, value } => {
                        self.items.insert(tx, key, value)?;
                    }
                }
            }
            let new_version = prev_version + ops.len() as u64;
            self.seq.set(tx, new_version)?;
            if now > self.now.get(tx)? {
                self.now.set(tx, now)?;
            }
            Ok(Ok(new_version))
        })
    }

    /// Atomically replaces the shard's entire contents with a snapshot
    /// image — the resync path after a replication gap. Unlike
    /// [`Cache::restore`] this runs on a **live** shard through the
    /// engine, in one write section, so concurrent readers see either the
    /// old state or the new one, never a half-loaded mix. (The write set
    /// is the whole table; under GOCC this aborts for capacity and takes
    /// the pessimistic path, which is exactly right for a rare bulk op.)
    pub fn replace(&self, engine: &Engine<'_>, entries: &[(u64, u64, u64)], seq: u64, now: u64) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            // Built fresh per attempt (abort-safe, like `scan`).
            let mut stale = Vec::new();
            self.items.for_each(tx, |k, _| stale.push(k))?;
            for k in stale {
                self.items.remove(tx, k)?;
                self.expirations.remove(tx, k)?;
            }
            for &(k, v, exp) in entries {
                self.items.insert(tx, k, v)?;
                self.expirations.insert(tx, k, exp)?;
            }
            self.seq.set(tx, seq)?;
            self.now.set(tx, now.max(1))?;
            Ok(())
        });
    }

    /// Rebuilds the shard from a recovered image. Boot-time only (runs as
    /// a direct transaction before the server accepts connections), which
    /// is why it takes the runtime rather than an [`Engine`].
    pub fn restore(
        &self,
        rt: &gocc_htm::HtmRuntime,
        entries: &[(u64, u64, u64)],
        seq: u64,
        now: u64,
    ) {
        let mut tx = Tx::direct(rt);
        for &(k, v, exp) in entries {
            self.items.insert(&mut tx, k, v).expect("restore insert");
            self.expirations
                .insert(&mut tx, k, exp)
                .expect("restore exp");
        }
        self.seq.set(&mut tx, seq).expect("restore seq");
        self.now.set(&mut tx, now.max(1)).expect("restore now");
        tx.commit().expect("restore commit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mode;
    use gocc_optilock::GoccRuntime;

    #[test]
    fn rwmap_get_set_roundtrip_in_both_modes() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let m = RwMap::new(rt.htm(), 16);
            let engine = Engine::new(&rt, mode);
            assert_eq!(m.get(&engine, RwMap::key(3)), Some(3));
            m.set(&engine, RwMap::key(100), 42);
            assert_eq!(m.get(&engine, RwMap::key(100)), Some(42));
            assert_eq!(m.len(&engine), 17);
        }
    }

    #[test]
    fn cache_expiration_semantics() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let c = Cache::new(rt.htm(), 4);
        let engine = Engine::new(&rt, Mode::Gocc);
        let k = RwMap::key(999);
        c.set(&engine, k, 7, 2);
        assert_eq!(c.get(&engine, k), Some(7));
        c.tick(&engine);
        c.tick(&engine);
        c.tick(&engine);
        assert_eq!(c.get(&engine, k), None, "expired entries read as absent");
        // Non-expiring entries survive ticks.
        assert_eq!(c.get(&engine, RwMap::key(1)), Some(1));
    }

    #[test]
    fn concurrent_readers_scale_on_fast_path() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let m = RwMap::new(rt.htm(), 64);
        let engine = Engine::new(&rt, Mode::Gocc);
        std::thread::scope(|s| {
            for t in 0..4 {
                let (engine, m) = (&engine, &m);
                s.spawn(move || {
                    for i in 0..250 {
                        let _ = m.get(engine, RwMap::key((t * 13 + i) % 64));
                    }
                });
            }
        });
        let snap = rt.stats().snapshot();
        assert!(snap.fast_commits > 800, "reads should elide: {snap:?}");
    }

    #[test]
    fn delete_then_get_misses() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let c = Cache::new(rt.htm(), 8);
        let engine = Engine::new(&rt, Mode::Lock);
        assert_eq!(c.item_count(&engine), 8);
        assert!(c.delete(&engine, RwMap::key(2)));
        assert!(!c.delete(&engine, RwMap::key(2)), "second delete misses");
        assert_eq!(c.get(&engine, RwMap::key(2)), None);
        assert_eq!(c.item_count(&engine), 7);
    }

    #[test]
    fn incr_treats_missing_as_zero_and_wraps() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::new(rt.htm(), 4);
            let engine = Engine::new(&rt, mode);
            let k = RwMap::key(77);
            assert_eq!(c.incr(&engine, k, 5), 5, "missing key starts at 0");
            assert_eq!(c.incr(&engine, k, 3), 8);
            assert_eq!(c.get(&engine, k), Some(8));
            c.set(&engine, k, u64::MAX, 0);
            assert_eq!(c.incr(&engine, k, 2), 1, "wrapping add");
        }
    }

    #[test]
    fn concurrent_incrs_never_lose_updates() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::new(rt.htm(), 4);
            let engine = Engine::new(&rt, mode);
            let k = RwMap::key(5000);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let (engine, c) = (&engine, &c);
                    s.spawn(move || {
                        for _ in 0..250 {
                            c.incr(engine, k, 1);
                        }
                    });
                }
            });
            assert_eq!(c.get(&engine, k), Some(1000), "mode {mode:?}");
        }
    }

    #[test]
    fn seq_orders_writes_and_snapshot_restore_roundtrips() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::with_capacity(256);
            let engine = Engine::new(&rt, mode);
            let (s1, exp1) = c.set_seq(&engine, 10, 100, 0);
            let (s2, exp2) = c.set_seq(&engine, 11, 200, 5);
            let (v3, s3) = c.incr_seq(&engine, 10, 7);
            let (existed, s4) = c.delete_seq(&engine, 11);
            assert_eq!((s1, s2, s3, s4), (1, 2, 3, 4), "seq is dense per shard");
            assert_eq!(exp1, 0);
            assert_eq!(exp2, 6, "ttl resolves against the logical clock");
            assert_eq!(v3, 107);
            assert!(existed);

            let (entries, seq, now) = c.snapshot(&engine);
            assert_eq!(seq, 4);
            assert_eq!(now, 1);
            assert_eq!(entries, vec![(10, 107, 0)]);

            // A fresh cache restored from the snapshot serves the same
            // reads and continues the sequence where it left off.
            let rt2 = GoccRuntime::new_default();
            let c2 = Cache::with_capacity(256);
            c2.restore(rt2.htm(), &entries, seq, now);
            let engine2 = Engine::new(&rt2, mode);
            assert_eq!(c2.get(&engine2, 10), Some(107));
            assert_eq!(c2.get(&engine2, 11), None);
            let (s5, _) = c2.set_seq(&engine2, 12, 1, 0);
            assert_eq!(s5, 5, "sequence resumes after restore");
        }
    }

    #[test]
    fn concurrent_seq_writes_are_densely_ordered() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::with_capacity(1024);
            let engine = Engine::new(&rt, mode);
            let mut all: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4u64)
                    .map(|t| {
                        let (engine, c) = (&engine, &c);
                        s.spawn(move || {
                            (0..100u64)
                                .map(|i| c.set_seq(engine, t * 1000 + i, i, 0).0)
                                .collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            all.sort_unstable();
            assert_eq!(
                all,
                (1..=400).collect::<Vec<u64>>(),
                "every write got a unique dense seq ({mode:?})"
            );
        }
    }

    #[test]
    fn apply_versioned_is_version_checked_and_atomic() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::with_capacity(256);
            let engine = Engine::new(&rt, mode);
            let batch = [
                CacheOp::Put {
                    key: 1,
                    value: 10,
                    exp: 0,
                },
                CacheOp::Put {
                    key: 2,
                    value: 20,
                    exp: 9,
                },
                CacheOp::PutVal { key: 1, value: 11 },
            ];
            // Version 0 matches an empty shard: the batch applies.
            assert_eq!(c.apply_versioned(&engine, 0, 3, &batch), Ok(3));
            assert_eq!(c.version(&engine), 3);
            assert_eq!(c.get(&engine, 1), Some(11));
            assert_eq!(c.get(&engine, 2), Some(20));
            // A gap (replaying the same batch) is rejected untouched.
            assert_eq!(c.apply_versioned(&engine, 0, 3, &batch), Err(3));
            assert_eq!(c.get(&engine, 1), Some(11), "nak applied nothing");
            // The next contiguous batch applies, including deletes.
            let del = [CacheOp::Del { key: 2 }];
            assert_eq!(c.apply_versioned(&engine, 3, 3, &del), Ok(4));
            assert_eq!(c.get(&engine, 2), None, "mode {mode:?}");
        }
    }
    #[test]
    fn apply_versioned_advances_the_clock_monotonically() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let c = Cache::with_capacity(64);
        let engine = Engine::new(&rt, Mode::Gocc);
        let put = [CacheOp::Put {
            key: 5,
            value: 1,
            exp: 4,
        }];
        assert_eq!(c.apply_versioned(&engine, 0, 5, &put), Ok(1));
        // The entry expired at the primary (exp 4 < now 5).
        assert_eq!(c.get(&engine, 5), None);
        // A batch carrying an older clock must not rewind time.
        assert_eq!(c.apply_versioned(&engine, 1, 2, &[]), Ok(1));
        assert_eq!(c.get(&engine, 5), None, "clock never rewinds");
    }

    #[test]
    fn replace_swaps_the_whole_shard_in_both_modes() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::with_capacity(256);
            let engine = Engine::new(&rt, mode);
            c.set_seq(&engine, 1, 100, 0);
            c.set_seq(&engine, 2, 200, 0);
            let image = vec![(7u64, 70u64, 0u64), (8, 80, 3)];
            c.replace(&engine, &image, 42, 2);
            assert_eq!(c.get(&engine, 1), None, "old keys are gone");
            assert_eq!(c.get(&engine, 2), None);
            assert_eq!(c.get(&engine, 7), Some(70));
            assert_eq!(c.get(&engine, 8), Some(80));
            assert_eq!(c.version(&engine), 42, "version adopted wholesale");
            // Writes continue from the adopted version.
            let (seq, _) = c.set_seq(&engine, 9, 90, 0);
            assert_eq!(seq, 43, "mode {mode:?}");
        }
    }

    #[test]
    fn execute_batch_matches_sequential_verbs_in_both_modes() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let engine = Engine::new(&rt, mode);
            let batched = Cache::with_capacity(256);
            let oracle = Cache::with_capacity(256);

            let ops = [
                BatchOp::Set {
                    key: 1,
                    value: 10,
                    ttl: 0,
                },
                BatchOp::Get { key: 1 },
                BatchOp::Incr { key: 1, delta: 5 },
                BatchOp::Set {
                    key: 2,
                    value: 20,
                    ttl: 3,
                },
                BatchOp::Del { key: 2 },
                BatchOp::Get { key: 2 },
                BatchOp::Incr { key: 9, delta: 7 },
                BatchOp::Del { key: 42 },
            ];
            let replies = batched.execute_batch(&engine, &ops);

            // The oracle runs the same verbs through the single-op
            // methods; replies and end state must be bit-identical.
            let mut expect = Vec::new();
            for op in &ops {
                expect.push(match *op {
                    BatchOp::Get { key } => match oracle.get(&engine, key) {
                        Some(v) => BatchReply::Value {
                            found: true,
                            value: v,
                        },
                        None => BatchReply::Value {
                            found: false,
                            value: 0,
                        },
                    },
                    BatchOp::Set { key, value, ttl } => {
                        let (seq, exp) = oracle.set_seq(&engine, key, value, ttl);
                        BatchReply::Stored { seq, exp }
                    }
                    BatchOp::Del { key } => {
                        let (existed, seq) = oracle.delete_seq(&engine, key);
                        BatchReply::Deleted { existed, seq }
                    }
                    BatchOp::Incr { key, delta } => {
                        let (value, seq) = oracle.incr_seq(&engine, key, delta);
                        BatchReply::Counter { value, seq }
                    }
                });
            }
            assert_eq!(replies, expect, "mode {mode:?}");
            assert_eq!(batched.version(&engine), oracle.version(&engine));
            for k in [1u64, 2, 9, 42] {
                assert_eq!(batched.get(&engine, k), oracle.get(&engine, k));
            }
        }
    }

    #[test]
    fn read_only_batches_stay_on_the_read_side() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let c = Cache::new(rt.htm(), 64);
        let engine = Engine::new(&rt, Mode::Gocc);
        let ops: Vec<BatchOp> = (0..32)
            .map(|i| BatchOp::Get {
                key: RwMap::key(i % 64),
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (engine, c, ops) = (&engine, &c, &ops);
                s.spawn(move || {
                    for _ in 0..50 {
                        let replies = c.execute_batch(engine, ops);
                        assert!(replies
                            .iter()
                            .all(|r| matches!(r, BatchReply::Value { found: true, .. })));
                    }
                });
            }
        });
        let snap = rt.stats().snapshot();
        assert!(
            snap.fast_commits > 150,
            "all-GET batches should elide concurrently: {snap:?}"
        );
    }

    #[test]
    fn scan_dumps_entries_with_limit() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let c = Cache::new(rt.htm(), 16);
            let engine = Engine::new(&rt, mode);
            let all = c.scan(&engine, 1000);
            assert_eq!(all.len(), 16);
            let mut sorted: Vec<u64> = all.iter().map(|&(_, v)| v).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<u64>>());
            assert_eq!(c.scan(&engine, 3).len(), 3, "limit respected");
            assert_eq!(c.scan(&engine, 0).len(), 0);
        }
    }
}
