//! Re-implementations of the paper's evaluation subjects (§6, Table 1).
//!
//! Each module models one of the five real Go packages GOCC was evaluated
//! on, preserving the *workload structure* the figures depend on:
//!
//! * [`tally`] — buffered metrics: read-mostly registry lookups
//!   (`HistogramExisting`), multi-lock scope reporting, and HTM-unfriendly
//!   allocation benchmarks (Figures 6 and 10);
//! * [`gocache`] — an in-memory key/value store: RWMutex-protected direct
//!   map access (the >100% group of Figure 7) plus the cache layer;
//! * [`set`] — the go-datastructures set: `Len`, `Exists`, `Flatten` with
//!   a cache, `Clear` with true conflicts (Figure 8);
//! * [`fastcache`] — a sharded byte cache with shared stats counters and a
//!   panic-guarded `Set` that GOCC leaves untransformed (Figure 9);
//! * [`zaplite`] — a structured logger whose hot paths are level checks
//!   and whose write paths are IO-bound (§6.1's Zap discussion).
//!
//! Every operation runs through an [`Engine`], which executes critical
//! sections either with the original pessimistic locks (`Mode::Lock`, the
//! paper's baseline) or through `optiLib` (`Mode::Gocc`, the transformed
//! program).

mod engine;
pub mod fastcache;
pub mod gocache;
pub mod set;
pub mod tally;
pub mod zaplite;

pub use engine::{Engine, Mode};
