//! The go-datastructures set (Figure 8).
//!
//! Operations mirror the benchmarked API: `Len` (~1000% speedup at 8
//! cores in the paper — a tiny read section whose RWMutex entry/exit cost
//! dominates), `Exists` (similar, slightly more work), `Flatten` (reads 50
//! elements into a cached array under the set's write lock; scales until
//! cache-update conflicts appear), and `Clear` (true conflicts, no
//! speedup, but no collapse either).

use gocc_htm::Tx;
use gocc_optilock::{call_site, ElidableRwMutex, LockRef};
use gocc_txds::{TxSet, TxVec};

use crate::engine::Engine;

/// Elements the `Flatten` benchmark materializes (paper: "reads 50
/// elements from a shared map into a private array").
pub const FLATTEN_ITEMS: usize = 50;

/// A thread-safe set with a cached flattened view.
pub struct Set {
    lock: ElidableRwMutex,
    items: TxSet,
    flat_cache: TxVec,
    cache_valid: gocc_txds::TxCounter,
}

impl Set {
    /// Creates a set preloaded with items `0..preload`.
    #[must_use]
    pub fn new(rt: &gocc_htm::HtmRuntime, preload: usize) -> Self {
        let s = Set {
            lock: ElidableRwMutex::new(),
            items: TxSet::with_capacity(preload.max(FLATTEN_ITEMS).max(1024) * 4),
            flat_cache: TxVec::with_capacity(preload.max(FLATTEN_ITEMS).max(1024) * 2),
            cache_valid: gocc_txds::TxCounter::new(0),
        };
        let mut tx = Tx::direct(rt);
        for i in 0..preload {
            s.items.add(&mut tx, i as u64).expect("preload");
        }
        tx.commit().expect("direct commit");
        s
    }

    /// `Len`: the shortest possible read section.
    pub fn len(&self, engine: &Engine<'_>) -> u64 {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            self.items.len(tx)
        })
    }

    /// `Exists`: membership probe.
    pub fn exists(&self, engine: &Engine<'_>, item: u64) -> bool {
        engine.section(call_site!(), LockRef::Read(&self.lock), |tx| {
            self.items.exists(tx, item)
        })
    }

    /// `Add`.
    pub fn add(&self, engine: &Engine<'_>, item: u64) -> bool {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let fresh = self.items.add(tx, item)?;
            if fresh {
                self.cache_valid.set(tx, 0)?;
            }
            Ok(fresh)
        })
    }

    /// `Remove`.
    pub fn remove(&self, engine: &Engine<'_>, item: u64) -> bool {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let removed = self.items.remove(tx, item)?;
            if removed {
                self.cache_valid.set(tx, 0)?;
            }
            Ok(removed)
        })
    }

    /// `Flatten`: returns the items, refreshing the shared cache when
    /// dirty. The cache update is the write that causes genuine conflicts
    /// at high core counts (paper: "at 8 cores, the number of conflicts
    /// resulting from updating the cache rises").
    pub fn flatten(&self, engine: &Engine<'_>) -> Vec<u64> {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            let mut out = Vec::with_capacity(FLATTEN_ITEMS);
            if self.cache_valid.get(tx)? == 1 {
                self.flat_cache.read_into(tx, &mut out)?;
                return Ok(out);
            }
            self.flat_cache.clear(tx)?;
            let mut items = Vec::new();
            self.items.flatten_into(tx, &mut items)?;
            for &item in &items {
                self.flat_cache.push(tx, item)?;
            }
            self.cache_valid.set(tx, 1)?;
            out.extend_from_slice(&items);
            Ok(out)
        })
    }

    /// `Clear`: removes everything — every thread writes the whole table,
    /// so sections truly conflict.
    pub fn clear(&self, engine: &Engine<'_>) {
        engine.section(call_site!(), LockRef::Write(&self.lock), |tx| {
            self.items.clear(tx)?;
            self.flat_cache.clear(tx)?;
            self.cache_valid.set(tx, 0)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mode;
    use gocc_optilock::GoccRuntime;

    fn setup(mode: Mode) -> (GoccRuntime, Mode) {
        gocc_gosync::set_procs(8);
        (GoccRuntime::new_default(), mode)
    }

    #[test]
    fn len_exists_flatten_roundtrip() {
        for mode in [Mode::Lock, Mode::Gocc] {
            let (rt, mode) = setup(mode);
            let s = Set::new(rt.htm(), FLATTEN_ITEMS);
            let engine = Engine::new(&rt, mode);
            assert_eq!(s.len(&engine), FLATTEN_ITEMS as u64);
            assert!(s.exists(&engine, 7));
            assert!(!s.exists(&engine, 10_000));
            let mut flat = s.flatten(&engine);
            flat.sort_unstable();
            assert_eq!(flat, (0..FLATTEN_ITEMS as u64).collect::<Vec<_>>());
            // Second flatten hits the cache.
            assert_eq!(s.flatten(&engine).len(), FLATTEN_ITEMS);
        }
    }

    #[test]
    fn add_invalidates_cache() {
        let (rt, mode) = setup(Mode::Gocc);
        let s = Set::new(rt.htm(), 10);
        let engine = Engine::new(&rt, mode);
        let _ = s.flatten(&engine);
        assert!(s.add(&engine, 99));
        let flat = s.flatten(&engine);
        assert!(flat.contains(&99), "cache must refresh after add");
    }

    #[test]
    fn clear_empties() {
        let (rt, mode) = setup(Mode::Gocc);
        let s = Set::new(rt.htm(), 20);
        let engine = Engine::new(&rt, mode);
        s.clear(&engine);
        assert_eq!(s.len(&engine), 0);
        assert!(s.flatten(&engine).is_empty());
    }

    #[test]
    fn concurrent_mixed_ops_stay_consistent() {
        let (rt, mode) = setup(Mode::Gocc);
        let s = Set::new(rt.htm(), 0);
        let engine = Engine::new(&rt, mode);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let (engine, s) = (&engine, &s);
                sc.spawn(move || {
                    for i in 0..100 {
                        s.add(engine, t * 1000 + i);
                        let _ = s.exists(engine, t * 1000 + i / 2);
                        let _ = s.len(engine);
                    }
                });
            }
        });
        assert_eq!(s.len(&engine), 400, "every add must be visible");
    }
}
