//! A Tally-like buffered metrics registry (Figures 6 and 10).
//!
//! Mirrors uber-go/tally's structure: a scope holds registries of
//! counters, gauges and histograms behind `RWMutex`es; the benchmark-hot
//! paths are read-only registry lookups (`HistogramExisting`), reporting
//! reads over several independent locks (`ScopeReporting1/10`), and the
//! HTM-unfriendly allocation benchmarks (`CounterAllocation`,
//! `SanitizedCounterAllocation`) whose critical sections genuinely
//! conflict on shared registry state — the workloads Figure 10 uses to
//! show the perceptron steering away from hopeless speculation.

use gocc_htm::Tx;
use gocc_optilock::{call_site, ElidableRwMutex, LockRef};
use gocc_txds::{fnv1a, TxCounter, TxMap};

use crate::engine::Engine;

/// Number of preallocated metric slots.
const SLOTS: usize = 4096;

/// A metrics scope: three independent registries, like Tally's scope
/// holding separate locks for counters, gauges and histograms.
pub struct Scope {
    counters_lock: ElidableRwMutex,
    gauges_lock: ElidableRwMutex,
    histograms_lock: ElidableRwMutex,
    /// name-hash → slot index.
    histograms: TxMap,
    counters: TxMap,
    counter_slots: Vec<TxCounter>,
    next_slot: TxCounter,
    gauge_value: TxCounter,
}

impl Scope {
    /// Creates a scope preloaded with `preload` histograms (the
    /// `HistogramExisting` benchmark looks up names that exist).
    ///
    /// `rt` must be the HTM domain the scope will later be accessed
    /// through, so preload version bumps land in the same stripe table.
    #[must_use]
    pub fn new(rt: &gocc_htm::HtmRuntime, preload: usize) -> Self {
        let scope = Scope {
            counters_lock: ElidableRwMutex::new(),
            gauges_lock: ElidableRwMutex::new(),
            histograms_lock: ElidableRwMutex::new(),
            histograms: TxMap::with_capacity(SLOTS * 2),
            counters: TxMap::with_capacity(SLOTS * 2),
            counter_slots: (0..SLOTS).map(|_| TxCounter::new(0)).collect(),
            next_slot: TxCounter::new(0),
            gauge_value: TxCounter::new(0),
        };
        // Preload without concurrency: direct single-owner writes.
        let mut tx = Tx::direct(rt);
        for i in 0..preload {
            let h = Scope::name_hash(i);
            scope
                .histograms
                .insert(&mut tx, h, i as u64)
                .expect("preload");
            scope
                .counters
                .insert(&mut tx, h, (i % SLOTS) as u64)
                .expect("preload");
        }
        scope
            .next_slot
            .set(&mut tx, preload as u64)
            .expect("preload");
        tx.commit().expect("direct commit");
        scope
    }

    /// Canonical benchmark metric name hash.
    #[must_use]
    pub fn name_hash(i: usize) -> u64 {
        fnv1a(format!("metric-{i}").as_bytes())
    }

    /// `HistogramExisting`: a read-only existence probe under the
    /// histogram registry's RWMutex — the paper's 660%-at-8-cores case.
    pub fn histogram_exists(&self, engine: &Engine<'_>, name_hash: u64) -> bool {
        engine.section(call_site!(), LockRef::Read(&self.histograms_lock), |tx| {
            self.histograms.contains(tx, name_hash)
        })
    }

    /// `ScopeReporting{n}`: reads `n` counters under each of the three
    /// registry locks in turn, like Tally's reporting loop that "holds
    /// three independent RWMutexes at different points in time".
    pub fn scope_reporting(&self, engine: &Engine<'_>, n: usize) -> u64 {
        let a = engine.section(call_site!(), LockRef::Read(&self.counters_lock), |tx| {
            let mut sum = 0u64;
            for i in 0..n {
                sum = sum.wrapping_add(self.counter_slots[i].get(tx)?);
            }
            Ok(sum)
        });
        let b = engine.section(call_site!(), LockRef::Read(&self.gauges_lock), |tx| {
            self.gauge_value.get(tx)
        });
        let c = engine.section(call_site!(), LockRef::Read(&self.histograms_lock), |tx| {
            self.histograms.len(tx)
        });
        a.wrapping_add(b).wrapping_add(c)
    }

    /// Increments an existing counter slot (a short read-write section).
    pub fn counter_inc(&self, engine: &Engine<'_>, slot: usize) {
        engine.section(call_site!(), LockRef::Write(&self.counters_lock), |tx| {
            self.counter_slots[slot % SLOTS].add(tx, 1)?;
            Ok(())
        });
    }

    /// `CounterAllocation`: registers a new counter — inserts into the
    /// shared registry and bumps the shared slot cursor, so concurrent
    /// allocations always conflict (HTM-unfriendly by construction, like
    /// the real benchmark's allocator churn).
    pub fn counter_allocation(&self, engine: &Engine<'_>, name_hash: u64) -> u64 {
        engine.section(call_site!(), LockRef::Write(&self.counters_lock), |tx| {
            if let Some(slot) = self.counters.get(tx, name_hash)? {
                return Ok(slot);
            }
            let slot = self.next_slot.add(tx, 1)? % SLOTS as u64;
            self.counters.insert(tx, name_hash, slot)?;
            self.counter_slots[slot as usize].set(tx, 0)?;
            Ok(slot)
        })
    }

    /// `SanitizedCounterAllocation`: allocation preceded by name
    /// sanitization (extra work outside, same conflicting section inside).
    pub fn sanitized_counter_allocation(&self, engine: &Engine<'_>, name: &str) -> u64 {
        let sanitized: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        self.counter_allocation(engine, fnv1a(sanitized.as_bytes()))
    }

    /// Updates the scope's gauge (a tiny write section).
    pub fn gauge_update(&self, engine: &Engine<'_>, v: u64) {
        engine.section(call_site!(), LockRef::Write(&self.gauges_lock), |tx| {
            self.gauge_value.set(tx, v)
        });
    }

    /// A concurrency-non-sensitive benchmark body: pure name formatting,
    /// no locks (part of the "non sensitive" group of Figure 6).
    #[must_use]
    pub fn name_generation(&self, i: usize) -> u64 {
        fnv1a(format!("scope.sub-{i}.metric").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mode;
    use gocc_optilock::GoccRuntime;

    fn scope_and_rt() -> (Scope, GoccRuntime) {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let scope = Scope::new(rt.htm(), 64);
        (scope, rt)
    }

    #[test]
    fn histogram_exists_finds_preloaded() {
        let (scope, rt) = scope_and_rt();
        for mode in [Mode::Lock, Mode::Gocc] {
            let engine = Engine::new(&rt, mode);
            assert!(scope.histogram_exists(&engine, Scope::name_hash(3)));
            assert!(!scope.histogram_exists(&engine, Scope::name_hash(1_000_000)));
        }
    }

    #[test]
    fn allocation_is_idempotent_per_name() {
        let (scope, rt) = scope_and_rt();
        let engine = Engine::new(&rt, Mode::Gocc);
        let a = scope.counter_allocation(&engine, Scope::name_hash(500));
        let b = scope.counter_allocation(&engine, Scope::name_hash(500));
        assert_eq!(a, b, "same name must map to the same slot");
    }

    #[test]
    fn concurrent_exists_probes_elide() {
        let (scope, rt) = scope_and_rt();
        let engine = Engine::new(&rt, Mode::Gocc);
        std::thread::scope(|s| {
            for t in 0..4 {
                let engine = &engine;
                let scope = &scope;
                s.spawn(move || {
                    for i in 0..200 {
                        let _ = scope.histogram_exists(engine, Scope::name_hash((t + i) % 64));
                    }
                });
            }
        });
        let snap = rt.stats().snapshot();
        assert!(
            snap.fast_commits > 600,
            "read-only probes should overwhelmingly elide: {snap:?}"
        );
    }

    #[test]
    fn scope_reporting_sums_consistently() {
        let (scope, rt) = scope_and_rt();
        let engine = Engine::new(&rt, Mode::Gocc);
        for slot in 0..10 {
            scope.counter_inc(&engine, slot);
        }
        let r1 = scope.scope_reporting(&engine, 10);
        let r10 = scope.scope_reporting(&engine, 10);
        assert_eq!(r1, r10, "reporting without writers is stable");
    }
}
