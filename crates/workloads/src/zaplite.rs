//! A zap-like structured logger (§6.1's Zap results).
//!
//! Logging libraries keep IO in their critical sections, so GOCC rewrites
//! few of their locks and the improvements are mild (~4% geomean in the
//! paper, 28% best case, worst slowdown −7%). The model captures that mix:
//! hot, elidable level checks and field lookups; an IO-bound write path
//! that stays on the lock (the body raises the HTM-unfriendly marker, so
//! in GOCC mode the perceptron learns to stop speculating on it).

use gocc_htm::Tx;
use gocc_optilock::{call_site, ElidableMutex, ElidableRwMutex, LockRef};
use gocc_txds::{fnv1a, TxCounter, TxMap};

use crate::engine::Engine;

/// Log levels.
pub const DEBUG: u64 = 0;
/// Info level.
pub const INFO: u64 = 1;
/// Error level.
pub const ERROR: u64 = 2;

/// The logger core: an atomic-ish level gate, a field registry and a
/// buffered write path.
pub struct Logger {
    level_lock: ElidableRwMutex,
    level: TxCounter,
    fields_lock: ElidableRwMutex,
    fields: TxMap,
    write_lock: ElidableMutex,
    bytes_written: TxCounter,
    entries_written: TxCounter,
}

impl Logger {
    /// Creates a logger at `INFO` with `preload` registered fields.
    #[must_use]
    pub fn new(rt: &gocc_htm::HtmRuntime, preload: usize) -> Self {
        let l = Logger {
            level_lock: ElidableRwMutex::new(),
            level: TxCounter::new(INFO),
            fields_lock: ElidableRwMutex::new(),
            fields: TxMap::with_capacity(preload.max(8) * 4),
            write_lock: ElidableMutex::new(),
            bytes_written: TxCounter::new(0),
            entries_written: TxCounter::new(0),
        };
        let mut tx = Tx::direct(rt);
        for i in 0..preload {
            l.fields
                .insert(&mut tx, Self::field_key(i), i as u64)
                .expect("preload");
        }
        tx.commit().expect("direct commit");
        l
    }

    /// Canonical field-name hash.
    #[must_use]
    pub fn field_key(i: usize) -> u64 {
        fnv1a(format!("field-{i}").as_bytes())
    }

    /// `LevelEnabled`: the hottest call in any logging pipeline.
    pub fn enabled(&self, engine: &Engine<'_>, lvl: u64) -> bool {
        engine.section(call_site!(), LockRef::Read(&self.level_lock), |tx| {
            Ok(lvl >= self.level.get(tx)?)
        })
    }

    /// `SetLevel`: rare reconfiguration write.
    pub fn set_level(&self, engine: &Engine<'_>, lvl: u64) {
        engine.section(call_site!(), LockRef::Write(&self.level_lock), |tx| {
            self.level.set(tx, lvl)
        });
    }

    /// `FieldLookup`: resolve a structured field id.
    pub fn field(&self, engine: &Engine<'_>, key: u64) -> Option<u64> {
        engine.section(call_site!(), LockRef::Read(&self.fields_lock), |tx| {
            self.fields.get(tx, key)
        })
    }

    /// `With`: register a field (occasional write).
    pub fn with_field(&self, engine: &Engine<'_>, key: u64, value: u64) {
        engine.section(call_site!(), LockRef::Write(&self.fields_lock), |tx| {
            self.fields.insert(tx, key, value)?;
            Ok(())
        });
    }

    /// `Write`: the sink. The section performs (simulated) IO, which on
    /// real RTM aborts the transaction; the body raises the unfriendly
    /// marker so the GOCC path behaves identically.
    pub fn write(&self, engine: &Engine<'_>, msg_len: u64) {
        engine.section(call_site!(), LockRef::Mutex(&self.write_lock), |tx| {
            tx.unfriendly()?; // the syscall in the buffered writer
            self.bytes_written.add(tx, msg_len)?;
            self.entries_written.add(tx, 1)?;
            Ok(())
        });
    }

    /// Full `Infow`-style call: level gate, field resolution, write.
    pub fn infow(&self, engine: &Engine<'_>, field_idx: usize, msg_len: u64) -> bool {
        if !self.enabled(engine, INFO) {
            return false;
        }
        let _ = self.field(engine, Self::field_key(field_idx));
        self.write(engine, msg_len);
        true
    }

    /// Bytes and entries written so far.
    pub fn written(&self, engine: &Engine<'_>) -> (u64, u64) {
        engine.section(call_site!(), LockRef::Mutex(&self.write_lock), |tx| {
            Ok((self.bytes_written.get(tx)?, self.entries_written.get(tx)?))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Mode;
    use gocc_optilock::GoccRuntime;

    #[test]
    fn level_gate_and_write_path() {
        gocc_gosync::set_procs(8);
        for mode in [Mode::Lock, Mode::Gocc] {
            let rt = GoccRuntime::new_default();
            let log = Logger::new(rt.htm(), 8);
            let engine = Engine::new(&rt, mode);
            assert!(log.enabled(&engine, ERROR));
            assert!(!log.enabled(&engine, DEBUG));
            assert!(log.infow(&engine, 2, 100));
            log.set_level(&engine, ERROR);
            assert!(
                !log.infow(&engine, 2, 100),
                "INFO suppressed at ERROR level"
            );
            let (bytes, entries) = log.written(&engine);
            assert_eq!((bytes, entries), (100, 1), "mode {mode:?}");
        }
    }

    #[test]
    fn write_path_falls_back_and_perceptron_learns() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let log = Logger::new(rt.htm(), 4);
        let engine = Engine::new(&rt, Mode::Gocc);
        for _ in 0..50 {
            log.write(&engine, 10);
        }
        let snap = rt.stats().snapshot();
        assert_eq!(
            snap.slow_sections, 50,
            "IO sections always finish on the lock"
        );
        assert!(
            snap.htm_attempts < 20,
            "perceptron must learn the write path is hopeless: {snap:?}"
        );
        let (bytes, entries) = log.written(&engine);
        assert_eq!((bytes, entries), (500, 50));
    }

    #[test]
    fn concurrent_level_checks_elide() {
        gocc_gosync::set_procs(8);
        let rt = GoccRuntime::new_default();
        let log = Logger::new(rt.htm(), 4);
        let engine = Engine::new(&rt, Mode::Gocc);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (engine, log) = (&engine, &log);
                s.spawn(move || {
                    for _ in 0..250 {
                        let _ = log.enabled(engine, INFO);
                    }
                });
            }
        });
        let snap = rt.stats().snapshot();
        assert!(
            snap.fast_commits > 900,
            "level checks should elide: {snap:?}"
        );
    }
}
