//! Watching the perceptron learn (§5.4.1).
//!
//! Run with: `cargo run --release --example adaptive_contention`
//!
//! Two call sites share the runtime: a *friendly* one (disjoint counter
//! updates, elision always commits) and a *hopeless* one (simulated IO,
//! every speculation aborts). The perceptron learns per (mutex ⊕ site)
//! cell: the friendly site keeps eliding while the hopeless one is parked
//! on the slow path after a handful of penalties — and after 1000
//! consecutive slow-path decisions the decayed weights give HTM another
//! chance, exactly as the paper describes.

use gocc_repro::optilock::{call_site, critical_mutex, ElidableMutex, GoccRuntime};
use gocc_repro::txds::TxCounter;

fn main() {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let friendly_lock = ElidableMutex::new();
    let hopeless_lock = ElidableMutex::new();
    let counter = TxCounter::new(0);

    let friendly_site = call_site!();
    let hopeless_site = call_site!();

    let report = |phase: &str| {
        let s = rt.stats().snapshot();
        println!(
            "{phase:<28} fast={:<6} slow={:<6} htm-attempts={:<6} perceptron(htm/slow)={}/{}",
            s.fast_commits, s.slow_sections, s.htm_attempts, s.perceptron_htm, s.perceptron_slow
        );
    };

    println!("phase 1: 500 friendly sections — everything elides");
    for _ in 0..500 {
        critical_mutex(&rt, friendly_site, &friendly_lock, |tx| counter.add(tx, 1));
    }
    report("after friendly");

    println!("\nphase 2: 500 hopeless sections — perceptron parks the site");
    let attempts_before = rt.stats().snapshot().htm_attempts;
    for _ in 0..500 {
        critical_mutex(&rt, hopeless_site, &hopeless_lock, |tx| {
            tx.unfriendly()?; // models IO: can never commit under HTM
            Ok(())
        });
    }
    report("after hopeless");
    let wasted = rt.stats().snapshot().htm_attempts - attempts_before;
    println!("  -> only {wasted} of 500 hopeless sections attempted HTM before giving up");
    assert!(wasted < 50, "perceptron failed to learn");

    println!("\nphase 3: friendly site is unaffected by the hopeless site's history");
    let fast_before = rt.stats().snapshot().fast_commits;
    for _ in 0..500 {
        critical_mutex(&rt, friendly_site, &friendly_lock, |tx| counter.add(tx, 1));
    }
    report("after friendly again");
    let fast_delta = rt.stats().snapshot().fast_commits - fast_before;
    assert!(
        fast_delta > 450,
        "friendly site must keep eliding, got {fast_delta}"
    );

    println!(
        "\nphase 4: weight decay gives the hopeless site another chance after 1000 slow calls"
    );
    let resets_before = rt.perceptron().reset_count();
    for _ in 0..2100 {
        critical_mutex(&rt, hopeless_site, &hopeless_lock, |tx| {
            tx.unfriendly()?;
            Ok(())
        });
    }
    let resets = rt.perceptron().reset_count() - resets_before;
    println!("  -> decay resets fired: {resets} (threshold: 1000 consecutive slow decisions)");
    assert!(
        resets >= 1,
        "decay must fire at least once in 2100 slow sections"
    );
    report("after decay phase");
}
