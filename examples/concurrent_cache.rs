//! A read-mostly cache under both concurrency-control regimes.
//!
//! Run with: `cargo run --release --example concurrent_cache`
//!
//! The go-cache-style workload of Figure 7: worker threads read a shared
//! RWMutex-protected map with occasional writes, once with the original
//! pessimistic locks and once through GOCC's elision. Besides throughput,
//! the example prints the runtime statistics that explain *why* elision
//! helps: read sections commit concurrently instead of serializing on the
//! reader-count RMWs.

use std::time::{Duration, Instant};

use gocc_repro::optilock::GoccRuntime;
use gocc_repro::workloads::gocache::RwMap;
use gocc_repro::workloads::{Engine, Mode};

const KEYS: usize = 256;
const THREADS: usize = 4;
const WINDOW: Duration = Duration::from_millis(400);

fn run(mode: Mode) -> (f64, String) {
    let rt = GoccRuntime::new_default();
    let map = RwMap::new(rt.htm(), KEYS);
    let engine = Engine::new(&rt, mode);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let ops = std::sync::atomic::AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (engine, map, stop, ops) = (&engine, &map, &stop, &ops);
            s.spawn(move || {
                let mut local = 0u64;
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = (t * 31 + i) % KEYS;
                    if i % 100 == 99 {
                        map.set(engine, RwMap::key(k), i as u64);
                    } else {
                        let _ = map.get(engine, RwMap::key(k));
                    }
                    i += 1;
                    local += 1;
                    if t == 0 && local.is_multiple_of(128) && start.elapsed() >= WINDOW {
                        stop.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                ops.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let total = ops.load(std::sync::atomic::Ordering::Relaxed).max(1);
    let ns_per_op = start.elapsed().as_nanos() as f64 / total as f64;
    let s = rt.stats().snapshot();
    let detail = format!(
        "fast={} slow={} (fast ratio {:.1}%)",
        s.fast_commits,
        s.slow_sections,
        s.fast_ratio() * 100.0
    );
    (ns_per_op, detail)
}

fn main() {
    gocc_repro::gosync::set_procs(8);
    println!("read-mostly cache, {THREADS} workers, 99% reads / 1% writes\n");
    let (lock_ns, _) = run(Mode::Lock);
    println!("pessimistic locks : {lock_ns:>9.1} ns/op");
    let (gocc_ns, detail) = run(Mode::Gocc);
    println!("GOCC elision      : {gocc_ns:>9.1} ns/op   [{detail}]");
    println!(
        "\nspeedup: {:+.1}%  (positive = GOCC wins)",
        (lock_ns / gocc_ns - 1.0) * 100.0
    );
    println!(
        "\nNote: this container has {} CPU(s); on real multicore hardware the gap",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("widens with core count as the baseline's reader-count RMWs serialize.");
}
