//! The end-to-end GOCC pipeline: Go source in, reviewable patch out.
//!
//! Run with: `cargo run --example gocc_transform`
//!
//! This is Figure 1 of the paper as a program: the analyzer finds
//! lock/unlock pairs, filters the ones HTM cannot help (IO in the
//! section), keeps the profitable ones, and the transformer emits a
//! unified diff replacing them with `optiLock.FastLock(&m)` calls.

use gocc_repro::gocc::{analyze_package, transform_file, unified_diff, AnalysisOptions, Package};
use gocc_repro::golite::printer::print_file;

const INPUT: &str = r#"
package example

import "sync"

type Hits struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	total int
	byKey map[string]int
}

// Transformable: a short, HTM-friendly read-modify-write.
func (h *Hits) Bump(key string) {
	h.mu.Lock()
	h.total++
	h.byKey[key] = h.byKey[key] + 1
	h.mu.Unlock()
}

// Transformable with defer: the unlock stays deferred.
func (h *Hits) Total() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Transformable read elision on the RWMutex.
func (h *Hits) Has(key string) bool {
	h.rw.RLock()
	defer h.rw.RUnlock()
	_, ok := h.byKey[key]
	return ok
}

// NOT transformable: IO inside the critical section (condition 4).
func (h *Hits) Dump() {
	h.mu.Lock()
	fmt.Println(h.total)
	h.mu.Unlock()
}
"#;

fn main() {
    let mut pkg = Package::from_source(INPUT).expect("example parses");
    let report = analyze_package(&mut pkg, &AnalysisOptions::default());

    println!("analyzer funnel:");
    println!("  lock points        : {}", report.funnel.lock_points);
    println!(
        "  unlock points      : {} ({} deferred)",
        report.funnel.unlock_points, report.funnel.deferred_unlocks
    );
    println!("  candidate pairs    : {}", report.funnel.candidate_pairs);
    println!("  rejected (IO)      : {}", report.funnel.unfit_intra);
    println!("  transformed        : {}", report.funnel.transformed);
    println!();

    let original = print_file(&pkg.files[0]);
    let transformed = transform_file(&pkg.files[0], &pkg.info, 0, &report.plans);
    let patched = print_file(&transformed);
    let diff = unified_diff("example.go", "example.go.gocc", &original, &patched);
    println!("--- the patch GOCC hands to the developer ---");
    print!("{diff}");

    assert!(
        diff.contains("FastLock"),
        "expected elision rewrites in the diff"
    );
    assert!(
        diff.contains("defer optiLock"),
        "deferred unlocks keep their defer"
    );
    assert!(
        !diff.contains("Dump"),
        "the IO section must be left untouched"
    );
}
