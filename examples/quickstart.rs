//! Quickstart: elide a mutex around shared state.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Four threads hammer a shared map and counter through `optiLib` lock
//! elision. Disjoint operations commit concurrently on the HTM fast path;
//! conflicting ones retry or fall back to the real mutex — and the final
//! state is exactly what the pessimistic program would produce.

use gocc_repro::htm::Tx;
use gocc_repro::optilock::{call_site, critical_mutex, ElidableMutex, GoccRuntime};
use gocc_repro::txds::TxMap;

fn main() {
    // Pretend we have 8 hardware threads (GOMAXPROCS); with 1 the runtime
    // would bypass HTM entirely (§5.4.2 of the paper).
    gocc_repro::gosync::set_procs(8);

    let rt = GoccRuntime::new_default();
    let mutex = ElidableMutex::new();
    let map = TxMap::with_capacity(4096);

    const THREADS: u64 = 4;
    const OPS: u64 = 10_000;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (rt, mutex, map) = (&rt, &mutex, &map);
            s.spawn(move || {
                let site = call_site!();
                for i in 0..OPS {
                    // The critical section: read-modify-write one key.
                    critical_mutex(rt, site, mutex, |tx| {
                        let key = t * OPS + i;
                        let prev = map.get(tx, key % 1024)?.unwrap_or(0);
                        map.insert(tx, key % 1024, prev + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });

    // Verify: every operation landed exactly once.
    let mut tx = Tx::direct(rt.htm());
    let mut total = 0;
    let mut count = 0;
    map.for_each(&mut tx, |_, v| {
        total += v;
        count += 1;
    })
    .unwrap();
    tx.commit().unwrap();

    let opti = rt.stats().snapshot();
    let htm = rt.htm().stats().snapshot();
    println!(
        "final keys: {count}, total increments: {total} (expected {})",
        THREADS * OPS
    );
    assert_eq!(total, THREADS * OPS);
    println!(
        "critical sections: {} on the HTM fast path, {} on the mutex",
        opti.fast_commits, opti.slow_sections
    );
    println!(
        "transactions: {} started, {} committed, {} aborted ({} conflicts)",
        htm.starts,
        htm.commits,
        htm.total_aborts(),
        htm.aborts_conflict
    );
    println!("fast-path ratio: {:.1}%", opti.fast_ratio() * 100.0);
}
