#!/bin/sh
# Regenerates every paper artifact: console tables into bench_output.txt,
# machine-readable BENCH_<name>.json files into bench_artifacts/.
#
# Each binary's exit status is recorded individually (a plain pipeline
# would report only grep's status and silently swallow bench failures);
# any failure is listed at the end and makes this script exit nonzero.
set -u
cd "$(dirname "$0")"
out=bench_output.txt
artifacts=bench_artifacts
failures=""
: > "$out"
mkdir -p "$artifacts"

# Wall-clock budget per bench, overridable for quick smoke passes:
#   BENCH_TIMEOUT=60 ./run_benches.sh
bench_timeout=${BENCH_TIMEOUT:-900}

# Every BENCH_*.json carries a common header (bench name, mode list, git
# rev, budget) so artifacts from different PRs diff by machine; the bench
# binaries read these two variables when rendering it.
BENCH_GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
BENCH_TIMEOUT=$bench_timeout
export BENCH_GIT_REV BENCH_TIMEOUT

# run_step NAME CMD... — append CMD's filtered output to $out, remember
# NAME if it failed. A bench that exceeds $bench_timeout seconds is
# killed and recorded as a distinct "TIMEOUT NAME" line (timeout(1)
# exits 124), so a hung run is diagnosable from bench_output.txt alone.
run_step() {
  name=$1
  shift
  echo "===== $name =====" >> "$out"
  status_file=$(mktemp)
  { timeout "$bench_timeout" "$@" 2>&1; echo $? > "$status_file"; } \
    | grep -v 'WARNING conda' >> "$out"
  status=$(cat "$status_file")
  rm -f "$status_file"
  if [ "$status" -eq 124 ]; then
    echo "TIMEOUT $name (killed after ${bench_timeout}s)" | tee -a "$out"
    failures="$failures $name"
  elif [ "$status" -ne 0 ]; then
    echo "FAILED $name (status $status)" | tee -a "$out"
    failures="$failures $name"
  fi
  echo >> "$out"
}

for bin in table1 corpus_stats figure6 figure7 figure8 figure9 figure10 zap_results perceptron_overhead defer_cost ablation hotpath trace_overhead; do
  run_step "$bin" "./target/release/$bin"
done

# Server throughput: self-hosted goccd sweep in both modes (S1).
run_step loadgen ./target/release/loadgen --mode both --workers 4

# Overload protection: open-loop saturation at 2x capacity, both modes;
# produces BENCH_overload.json with the gate verdicts and counters.
run_step overload_soak ./target/release/overload_soak --seed 2026

# Durability: engine- and service-level throughput across sync policies,
# both modes; produces BENCH_wal.json and enforces the group-commit
# amortization and sync-off tax gates.
run_step wal_bench ./target/release/wal_bench --window-ms 500 --gate

# Replication: closed-loop read throughput against replica count, both
# modes; produces BENCH_replication.json and enforces the replication
# tax and replica-read-share gates.
run_step repl_bench ./target/release/repl_bench --window-ms 500 --gate

# Self-healing failover: SIGKILL the primary with no operator promote;
# the replicas detect, elect and promote on their own. Produces
# BENCH_failover.json with detection/promotion/unavailability times.
run_step auto_failover_soak ./target/release/auto_failover_soak --seed 2026 --mode both

# Schema gate before the artifacts move: every BENCH_*.json must parse
# and carry the common header, or the sweep fails. The --expect list
# pins the artifacts the steps above must have produced.
run_step bench_schema ./scripts/check_bench_schema.sh \
  --expect BENCH_hotpath.json --expect BENCH_trace.json \
  --expect BENCH_overload.json --expect BENCH_wal.json \
  --expect BENCH_replication.json --expect BENCH_failover.json \
  --expect BENCH_server.json

for f in BENCH_*.json TRACE_overload_*.json; do
  [ -f "$f" ] && mv "$f" "$artifacts/$f"
done
echo "artifacts: $(ls "$artifacts" | wc -l) JSON files in $artifacts/" >> "$out"
if [ -n "$failures" ]; then
  echo "BENCHES_FAILED:$failures" | tee -a "$out"
  exit 1
fi
echo BENCHES_DONE >> "$out"
