#!/bin/sh
# Regenerates every paper artifact: console tables into bench_output.txt,
# machine-readable BENCH_<name>.json files into bench_artifacts/.
set -u
cd "$(dirname "$0")"
out=bench_output.txt
artifacts=bench_artifacts
: > "$out"
mkdir -p "$artifacts"
for bin in table1 corpus_stats figure6 figure7 figure8 figure9 figure10 zap_results perceptron_overhead defer_cost ablation; do
  echo "===== $bin =====" >> "$out"
  timeout 900 ./target/release/$bin 2>&1 | grep -v 'WARNING conda' >> "$out"
  echo >> "$out"
done
for f in BENCH_*.json; do
  [ -f "$f" ] && mv "$f" "$artifacts/$f"
done
echo "artifacts: $(ls "$artifacts" | wc -l) JSON files in $artifacts/" >> "$out"
echo BENCHES_DONE >> "$out"
