#!/bin/sh
# Regenerates every paper artifact into bench_output.txt.
set -u
out=/root/repo/bench_output.txt
: > "$out"
for bin in table1 corpus_stats figure6 figure7 figure8 figure9 figure10 zap_results perceptron_overhead defer_cost; do
  echo "===== $bin =====" >> "$out"
  timeout 900 ./target/release/$bin 2>&1 | grep -v 'WARNING conda' >> "$out"
  echo >> "$out"
done
echo BENCHES_DONE >> "$out"
