#!/bin/sh
# Validates benchmark artifacts: every BENCH_*.json (in the current
# directory, or the files given as arguments) must parse with the
# workspace JSON parser and carry the common header object (bench name,
# mode list, git rev, wall-clock budget) that makes the perf trajectory
# machine-diffable across PRs. Thin wrapper over the bench_schema binary
# so CI and humans invoke the same check.
set -eu
root=$(dirname "$0")/..
bin="$root/target/release/bench_schema"
if [ ! -x "$bin" ]; then
  (cd "$root" && cargo build --release --offline -p gocc-bench --bin bench_schema)
fi
exec "$bin" "$@"
