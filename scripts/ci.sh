#!/bin/sh
# Tier-1 gate: offline build, full test suite, formatting, and a guard
# that keeps the workspace dependency-free (the container has no route
# to crates.io, so any non-path dependency breaks the build for
# everyone — fail fast here instead).
set -eu
cd "$(dirname "$0")/.."

echo "== dependency guard =="
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  # Inside [dependencies]/[dev-dependencies]/[build-dependencies],
  # every entry must be a workspace/path reference, never a registry
  # version.
  if awk -v m="$manifest" '
    /^\[/ { dep = ($0 ~ /dependencies\]$/) }
    dep && /^[A-Za-z0-9_-]+[ \t]*=/ {
      if ($0 !~ /workspace[ \t]*=[ \t]*true/ && $0 !~ /path[ \t]*=/) {
        printf "%s: registry dependency: %s\n", m, $0
        found = 1
      }
    }
    END { exit found }
  ' "$manifest"; then :; else bad=1; fi
done
if [ "$bad" -ne 0 ]; then
  echo "FAIL: external (registry) dependencies are not allowed; use path deps" >&2
  exit 1
fi
echo "ok: all dependencies are path/workspace-local"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== formatting =="
cargo fmt --check

echo "CI_OK"
