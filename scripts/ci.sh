#!/bin/sh
# Tier-1 gate: offline build, full test suite, formatting, and a guard
# that keeps the workspace dependency-free (the container has no route
# to crates.io, so any non-path dependency breaks the build for
# everyone — fail fast here instead).
set -eu
cd "$(dirname "$0")/.."

echo "== dependency guard =="
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  # Inside [dependencies]/[dev-dependencies]/[build-dependencies],
  # every entry must be a workspace/path reference, never a registry
  # version.
  if awk -v m="$manifest" '
    /^\[/ { dep = ($0 ~ /dependencies\]$/) }
    dep && /^[A-Za-z0-9_-]+[ \t]*=/ {
      if ($0 !~ /workspace[ \t]*=[ \t]*true/ && $0 !~ /path[ \t]*=/) {
        printf "%s: registry dependency: %s\n", m, $0
        found = 1
      }
    }
    END { exit found }
  ' "$manifest"; then :; else bad=1; fi
done
if [ "$bad" -ne 0 ]; then
  echo "FAIL: external (registry) dependencies are not allowed; use path deps" >&2
  exit 1
fi
echo "ok: all dependencies are path/workspace-local"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== formatting =="
cargo fmt --check

echo "== goccd loopback smoke =="
# Boot the real daemon on an ephemeral port in each mode, hit it with a
# short loadgen burst over real sockets, and require a clean SHUTDOWN.
# loadgen itself asserts that the STATS response parses with the
# telemetry JSON parser and reports the expected mode.
for mode in lock gocc; do
  log=$(mktemp)
  ./target/release/goccd --mode "$mode" --port 0 --workers 2 > "$log" &
  goccd_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(awk '/^LISTENING /{print $2}' "$log")
    [ -n "$port" ] && break
    if ! kill -0 "$goccd_pid" 2>/dev/null; then
      echo "FAIL: goccd ($mode) died before listening" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "FAIL: goccd ($mode) never printed LISTENING" >&2
    kill "$goccd_pid" 2>/dev/null || true
    exit 1
  fi
  ./target/release/loadgen --addr "127.0.0.1:$port" --mode "$mode" \
    --workers 2 --warmup-ms 50 --window-ms 200
  # Same daemon, pipelined: 32 frames outstanding per connection drives
  # the batch pump (one elided section per shard-group per pump pass);
  # loadgen still verifies STATS parses and the mode matches.
  ./target/release/loadgen --addr "127.0.0.1:$port" --mode "$mode" \
    --workers 2 --pipeline 32 --warmup-ms 50 --window-ms 200 --shutdown
  if ! wait "$goccd_pid"; then
    echo "FAIL: goccd ($mode) did not shut down cleanly" >&2
    cat "$log" >&2
    exit 1
  fi
  grep -q "goccd shut down:" "$log" || {
    echo "FAIL: goccd ($mode) printed no shutdown summary" >&2
    cat "$log" >&2
    exit 1
  }
  echo "ok: goccd $mode smoke (port $port)"
  rm -f "$log"
done

echo "== pipelining gate (batched section execution payoff) =="
# Client-side pipelining + server-side batching must actually amortize:
# at 1 worker, depth 32 has to deliver >= PIPELINE_GATE_X x the ops/sec
# of depth 1 in BOTH modes (the recorded artifact bar is 10x; CI uses a
# noise-tolerant 5x). This also produces BENCH_server.json with the
# full [1, 8, 32] depth axis for the schema pin below. Exit 4 means the
# amortization gate was violated (vs exit 1 for a broken harness).
pipeline_gate=${PIPELINE_GATE_X:-5}
if ./target/release/loadgen --mode both --workers 1 \
  --warmup-ms 100 --window-ms 400 --pipeline-gate "$pipeline_gate"; then
  echo "ok: pipeline gate (>= ${pipeline_gate}x at depth 32)"
else
  status=$?
  if [ "$status" -eq 4 ]; then
    echo "FAIL: pipelining amortization below ${pipeline_gate}x" >&2
  else
    echo "FAIL: pipeline gate harness error (status $status)" >&2
  fi
  exit "$status"
fi

echo "== hot-path perf smoke =="
# Loose order-of-magnitude gate on uncontended section cost: the
# speculating gocc fast path must stay within HOTPATH_GATE_RATIO x the
# plain-lock baseline. The bound is deliberately generous (CI boxes are
# noisy); it exists to catch "someone re-introduced a per-section heap
# allocation"-class regressions, not to benchmark. Override like
# BENCH_TIMEOUT: HOTPATH_GATE_RATIO=12 ./scripts/ci.sh
hotpath_gate=${HOTPATH_GATE_RATIO:-8}
./target/release/hotpath --window-ms 100 --gate "$hotpath_gate"
echo "ok: hot-path gate (<= ${hotpath_gate}x lock)"

echo "== flight-recorder overhead gate =="
# The tracing tax on the same speculating-section figure: disabled
# tracing must stay within 5% of the untraced baseline and 1-in-64
# sampling (goccd's default) within 10%, min-of-5 interleaved repeats.
# The margins sit well above the measured cost (per-process floors
# drift several percent on one core); a real regression reads +220%.
# Override on noisy boxes: TRACE_GATE_SAMPLED_PCT=15 ./scripts/ci.sh
./target/release/trace_overhead --window-ms 120
echo "ok: trace overhead gate"

echo "== chaos soak (fixed seed, both modes) =="
# Short combined-fault run at elevated rates: HTM abort injection,
# Lock/Unlock mis-pairing and transport faults, all from one seed.
# chaos_soak exits nonzero on any oracle divergence, undetected mispair
# or watchdog starvation, and exit 2 if its liveness monitor sees no
# progress (deadlock/livelock) — any of which fails CI here.
./target/release/chaos_soak --seed 2026 --mode both \
  --sections 200 --threads 4 \
  --abort-rate 0.25 --pairing-rate 0.25 --transport-rate 0.2 \
  --net-keys 32 --net-clients 3 --stall-secs 60
# The soak validates its flight-recorder dumps before writing them; here
# we only require that they actually landed.
for mode in lock gocc; do
  if [ ! -s "TRACE_chaos_$mode.json" ]; then
    echo "FAIL: chaos soak wrote no TRACE_chaos_$mode.json" >&2
    exit 1
  fi
done
rm -f TRACE_chaos_lock.json TRACE_chaos_gocc.json
echo "ok: chaos soak"

echo "== overload soak (open-loop saturation, both modes) =="
# Drives goccd 2x past its calibrated capacity with open-loop arrivals
# and deadline budgets, then checks the overload guarantees from the
# server's own counters: bounded admitted p99 (gate in ms, overridable
# via OVERLOAD_GATE_P99_MS=150 ./scripts/ci.sh), sub-10us shed cost,
# no expired request ever executed, brownout engage + recovery within
# 5s of load removal. Exit 4 means a guarantee was violated (vs exit 1
# for a broken harness) so the two fail differently here.
overload_gate=${OVERLOAD_GATE_P99_MS:-100}
if OVERLOAD_GATE_P99_MS="$overload_gate" \
  ./target/release/overload_soak --quick --seed 2026 --out none; then
  echo "ok: overload soak (p99 gate ${overload_gate}ms)"
else
  status=$?
  if [ "$status" -eq 4 ]; then
    echo "FAIL: overload guarantee violated (gate ${overload_gate}ms)" >&2
  else
    echo "FAIL: overload soak harness error (status $status)" >&2
  fi
  exit "$status"
fi

echo "== crash soak (seeded kill/recover, both modes) =="
# Durability oracle check end to end. Phase 1 replays seeded torn-write
# and short-fsync crashes through the WAL's simulated backend and
# recovers in-process; phase 2 boots the real goccd with WAL fault
# injection, drives writes until the seeded crash point aborts the
# process mid-load, restarts it on the same data dir, and checks every
# key against a per-key oracle: no acked write lost, no unacked write
# half-applied, in both execution modes. Exit 2 means the liveness
# watchdog saw no progress (hung recovery or stuck barrier).
./target/release/crash_soak --seed 2026 --mode both \
  --sim-runs 6 --sim-ops 400 --kill-cycles 2 --cycle-ops 3000 \
  --crash-rate 0.004 --stall-secs 60
echo "ok: crash soak"

echo "== failover soak (kill primary, promote replica, both modes) =="
# Replication guarantees end to end under seeded transport faults on the
# replication streams: boots a goccd primary with two in-process
# replicas, SIGKILLs the primary mid-load, holds a deliberate
# primary-less window (replicas alone must carry reads), promotes the
# replica with the highest replicated version and repoints the other.
# Checks: no acked write lost (per-key oracle against the new primary),
# reads stay available during the outage, bounded staleness on the
# repointed replica, recovery within deadline, and lease-based fencing
# (a primary below min-acks rejects writes). Exit 4 = guarantee
# violated, exit 2 = liveness watchdog, exit 1 = harness error.
if ./target/release/failover_soak --seed 2026 --mode both --load-ops 1200 --manual; then
  echo "ok: failover soak (manual promotion)"
else
  status=$?
  if [ "$status" -eq 4 ]; then
    echo "FAIL: replication guarantee violated" >&2
  else
    echo "FAIL: failover soak harness error (status $status)" >&2
  fi
  exit "$status"
fi

echo "== auto failover soak (self-healing: no operator promote) =="
# Same kill, zero operator involvement: the replicas' failure detectors
# must notice the silence, hold a quorum election (highest replicated
# version wins, one vote per epoch), and the winner must promote itself
# within the detection deadline. Checks everything the manual soak does
# plus: exactly one primary per epoch (continuous split-brain poll),
# read-your-writes sessions never violated across the failover, and a
# deposed-primary rejoin phase proving its stale epoch is fenced (the
# repointed replica rejects the old stream without applying a batch).
# Produces BENCH_failover.json with detection/promotion/unavailability
# times. Exit codes as above.
if ./target/release/auto_failover_soak --seed 2026 --mode both --load-ops 1200; then
  echo "ok: auto failover soak (automatic promotion)"
else
  status=$?
  if [ "$status" -eq 4 ]; then
    echo "FAIL: self-healing replication guarantee violated" >&2
  else
    echo "FAIL: auto failover soak harness error (status $status)" >&2
  fi
  exit "$status"
fi

echo "== WAL throughput gates (group commit amortization) =="
# Two bounds from BENCH_wal.json, on the gocc numbers: engine-level
# group commit must amortize to >= 5x the one-fsync-per-record floor
# (WAL_GATE_GROUP_X), and service-level sync=off must stay within 10%
# of the in-memory daemon (WAL_GATE_OFF_PCT). Overridable like the
# other perf gates on noisy boxes.
./target/release/wal_bench --window-ms 300 --gate
echo "ok: WAL gates (group amortization, off tax)"

echo "== replication read gates (replica fan-out) =="
# Read throughput vs replica count from BENCH_replication.json, on the
# gocc numbers: with both endpoints on one core the gate is a bounded
# replication tax (2-replica aggregate >= REPL_GATE_SCALE_X of the
# primary-only figure) plus proof that replicas actually serve
# (replica read share >= REPL_GATE_SHARE_PCT). On multi-core boxes the
# recorded scale ratio shows real fan-out. Overridable like the other
# perf gates on noisy boxes.
./target/release/repl_bench --window-ms 300 --gate
echo "ok: replication gates (tax bound, replica share)"

echo "== bench artifact schema =="
# Every BENCH_*.json emitted above must parse and carry the common
# header object (machine-diffable perf trajectory across PRs). The
# --expect list pins the artifacts the stages above are supposed to
# produce: a bench that silently stops emitting its file fails here.
./scripts/check_bench_schema.sh \
  --expect BENCH_hotpath.json --expect BENCH_trace.json --expect BENCH_wal.json \
  --expect BENCH_replication.json --expect BENCH_failover.json \
  --expect BENCH_server.json
rm -f BENCH_hotpath.json BENCH_trace.json BENCH_wal.json BENCH_replication.json \
  BENCH_failover.json BENCH_server.json
echo "ok: bench artifacts conform to the common schema"

echo "CI_OK"
