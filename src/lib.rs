//! Integration surface for the `gocc-rs` workspace.
//!
//! This crate re-exports the workspace members so that the root-level
//! `tests/` and `examples/` can exercise the full pipeline. See the
//! individual crates for the actual implementation.

pub use gocc;
pub use gocc_flowgraph as flowgraph;
pub use gocc_gosync as gosync;
pub use gocc_htm as htm;
pub use gocc_optilock as optilock;
pub use gocc_pointsto as pointsto;
pub use gocc_profile as profile;
pub use gocc_telemetry as telemetry;
pub use gocc_txds as txds;
pub use gocc_workloads as workloads;
pub use golite;
