//! End-to-end checks for batched section execution: a pipelined client
//! against a real `goccd`, compared verb-for-verb with the sequential
//! path, plus the deadline and fault-injection edges of the batch pump.
//!
//! The server's batch pump groups each pump pass's decoded frames by
//! shard and runs every shard-group through ONE elided section, so these
//! tests pin the contract that makes that safe:
//!
//! * responses come back strictly in submission order, byte-identical to
//!   what the one-frame-at-a-time path produces (including a SCAN mid
//!   stream, which flushes the pending batch before it runs);
//! * a deadline that expires *mid-batch* — after admission but before the
//!   response is encoded — replaces only the response; the write itself
//!   stays applied (the WAL/replication pipeline already shipped it);
//! * injected HTM aborts retry the whole shard-group (the documented
//!   fallback unit), never yielding torn or reordered results.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gocc_faultplane::{AbortMix, HtmFaultPlan, LoadFaultPlan, LoadMix};
use gocc_repro::optilock::{GoccConfig, GoccRuntime};
use gocc_repro::workloads::{Engine, Mode};
use gocc_server::{spawn, ServerConfig, ShardedStore};
use gocc_wire::{
    decode_response, encode_request, encode_request_v2, read_frame, write_frame, Request, Response,
};

fn config(mode: Mode) -> ServerConfig {
    ServerConfig {
        mode,
        port: 0,
        workers: 1,
        shards: 4,
        capacity_per_shard: 1 << 12,
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn connect(port: u16) -> TcpStream {
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// The deterministic mixed-verb script both drivers run: every data verb,
/// keys spread over all four shards, repeated hits on the same keys so
/// GET/INCR/DEL observe earlier writes, and a SCAN in the middle of each
/// round (a control verb the batch pump must flush around, in order).
fn script() -> Vec<(String, u8)> {
    let mut ops = Vec::new();
    for round in 0..6u64 {
        for k in 0..10u64 {
            ops.push((format!("bk-{k}"), ((round + k) % 5) as u8));
        }
    }
    ops
}

fn request_for(key: &str, verb: u8, round: usize) -> Request<'_> {
    match verb {
        0 => Request::Set {
            key: key.as_bytes(),
            value: (round as u64 + 1) * 1000,
            ttl: 0,
        },
        1 => Request::Get {
            key: key.as_bytes(),
        },
        2 => Request::Incr {
            key: key.as_bytes(),
            delta: 7,
        },
        3 => Request::Del {
            key: key.as_bytes(),
        },
        _ => Request::Scan { limit: 16 },
    }
}

#[test]
fn pipelined_mixed_verbs_match_the_sequential_oracle_in_both_modes() {
    gocc_repro::gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        let ops = script();

        // Sequential oracle: its own fresh server, one frame at a time.
        let oracle = spawn(config(mode)).expect("spawn oracle");
        let mut stream = connect(oracle.port());
        let mut wirebuf = Vec::new();
        let mut body = Vec::new();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for (i, (key, verb)) in ops.iter().enumerate() {
            wirebuf.clear();
            encode_request(&request_for(key, *verb, i), &mut wirebuf);
            write_frame(&mut stream, &wirebuf).expect("oracle send");
            assert!(read_frame(&mut stream, &mut body).expect("oracle recv"));
            expected.push(body.clone());
        }
        drop(stream);
        oracle.request_shutdown();
        oracle.join();

        // Pipelined run: fresh server, the same script in bursts of 16
        // frames written before any response is read.
        let pipelined = spawn(config(mode)).expect("spawn pipelined");
        let mut stream = connect(pipelined.port());
        let mut got: Vec<Vec<u8>> = Vec::new();
        for (chunk_idx, chunk) in ops.chunks(16).enumerate() {
            wirebuf.clear();
            for (j, (key, verb)) in chunk.iter().enumerate() {
                encode_request(&request_for(key, *verb, chunk_idx * 16 + j), &mut wirebuf);
            }
            stream.write_all(&wirebuf).expect("burst send");
            for _ in chunk {
                assert!(read_frame(&mut stream, &mut body).expect("burst recv"));
                got.push(body.clone());
            }
        }
        drop(stream);
        pipelined.request_shutdown();
        pipelined.join();

        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g,
                e,
                "[{mode:?}] response {i} diverged: pipelined {:?} vs sequential {:?}",
                decode_response(g),
                decode_response(e)
            );
        }
    }
}

#[test]
fn mid_batch_deadline_expiry_suppresses_the_response_not_the_effects() {
    gocc_repro::gosync::set_procs(8);
    for mode in [Mode::Lock, Mode::Gocc] {
        // Every request's storage call takes 20ms — far past the 5ms
        // budget, so each write passes the admission pre-check (it just
        // arrived) but fails the post-check after its group executes.
        let plan = Arc::new(LoadFaultPlan::new(
            7,
            LoadMix {
                slow_store: 1.0,
                slow_store_for: Duration::from_millis(20),
                ..LoadMix::default()
            },
        ));
        let handle = spawn(ServerConfig {
            load_plan: Some(plan),
            ..config(mode)
        })
        .expect("spawn goccd");
        let mut stream = connect(handle.port());

        let keys = ["dl-a", "dl-b", "dl-c"];
        let mut wirebuf = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            encode_request_v2(
                &Request::Set {
                    key: key.as_bytes(),
                    value: 100 + i as u64,
                    ttl: 0,
                },
                Some(5_000), // 5ms budget vs 20ms injected store latency
                &mut wirebuf,
            );
        }
        stream.write_all(&wirebuf).expect("send batch");
        let mut body = Vec::new();
        for key in &keys {
            assert!(read_frame(&mut stream, &mut body).expect("recv"));
            assert_eq!(
                decode_response(&body).expect("decode"),
                Response::DeadlineExceeded,
                "[{mode:?}] {key}: the post-check must replace the response"
            );
        }

        // The writes landed anyway: the deadline machinery suppresses the
        // useful response, never the committed (and WAL-acknowledged)
        // effect.
        for (i, key) in keys.iter().enumerate() {
            wirebuf.clear();
            encode_request(
                &Request::Get {
                    key: key.as_bytes(),
                },
                &mut wirebuf,
            );
            write_frame(&mut stream, &wirebuf).expect("send get");
            assert!(read_frame(&mut stream, &mut body).expect("recv get"));
            assert_eq!(
                decode_response(&body).expect("decode"),
                Response::Value {
                    found: true,
                    value: 100 + i as u64
                },
                "[{mode:?}] {key}: effect must survive the expired deadline"
            );
        }
        drop(stream);
        handle.request_shutdown();
        handle.join();
    }
}

#[test]
fn batched_groups_survive_injected_htm_aborts() {
    gocc_repro::gosync::set_procs(8);
    // 30% of fast-path attempts abort with injected causes; the batch
    // fallback unit is the whole shard-group (the engine re-runs the
    // group closure, and the pessimistic path takes the group's one lock
    // acquisition), so results must stay identical to a fault-free run.
    let plan = Arc::new(HtmFaultPlan::new(11, AbortMix::uniform(0.3)));
    // No-perceptron config: HTM is attempted on every group, so the plan
    // keeps injecting instead of the predictor learning to skip elision.
    let mut faulty_cfg = GoccConfig::no_perceptron();
    faulty_cfg.htm.fault_plan = Some(Arc::clone(&plan));
    let faulty_rt = GoccRuntime::new(faulty_cfg);
    let faulty = Engine::new(&faulty_rt, Mode::Gocc);
    let faulty_store = ShardedStore::new(4, 256);

    let clean_rt = GoccRuntime::new(GoccConfig::standard());
    let clean = Engine::new(&clean_rt, Mode::Gocc);
    let clean_store = ShardedStore::new(4, 256);

    let ops = script();
    for rep in 0..8 {
        for (chunk_idx, chunk) in ops.chunks(16).enumerate() {
            let reqs: Vec<Request<'_>> = chunk
                .iter()
                .enumerate()
                .map(|(j, (key, verb))| request_for(key, verb % 4, rep * 1000 + chunk_idx * 16 + j))
                .collect();
            let routed: Vec<_> = reqs
                .iter()
                .map(|r| faulty_store.batch_op_for(r).expect("data verbs route"))
                .collect();
            let outcomes = faulty_store.execute_batch(&faulty, &routed, None, |_, _, run| run());
            for (req, outcome) in reqs.iter().zip(&outcomes) {
                let want = clean_store.execute(&clean, req);
                assert_eq!(
                    outcome.resp, want,
                    "injected aborts must not change batch results"
                );
            }
        }
    }
    assert!(
        plan.total_injected() > 20,
        "injection must actually fire (got {})",
        plan.total_injected()
    );
}
