//! Property test: for random operation sequences, the GOCC-transformed
//! program and the pessimistic program are observationally equivalent —
//! the paper's §4.1 guarantee as an executable property. Sequences are
//! drawn from a seeded [`SplitMix64`] stream, so every run covers the same
//! deterministic corpus with no external crates.

use gocc_repro::optilock::GoccRuntime;
use gocc_repro::telemetry::SplitMix64;
use gocc_repro::workloads::gocache::{Cache, RwMap};
use gocc_repro::workloads::set::Set;
use gocc_repro::workloads::{Engine, Mode};

#[derive(Clone, Debug)]
enum CacheOp {
    Set(u8, u16, u8),
    Get(u8),
    Delete(u8),
    Tick,
}

fn random_cache_op(rng: &mut SplitMix64) -> CacheOp {
    // Weights mirror the old proptest strategy (4:4:1:1).
    match rng.below(10) {
        0..=3 => CacheOp::Set(
            rng.next_u64() as u8,
            rng.next_u64() as u16,
            rng.below(4) as u8,
        ),
        4..=7 => CacheOp::Get(rng.next_u64() as u8),
        8 => CacheOp::Delete(rng.next_u64() as u8),
        _ => CacheOp::Tick,
    }
}

fn run_cache(mode: Mode, ops: &[CacheOp]) -> Vec<Option<u64>> {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let cache = Cache::new(rt.htm(), 4);
    let engine = Engine::new(&rt, mode);
    let mut observations = Vec::new();
    for op in ops {
        match op {
            CacheOp::Set(k, v, ttl) => {
                cache.set(
                    &engine,
                    RwMap::key(*k as usize),
                    u64::from(*v),
                    u64::from(*ttl),
                );
            }
            CacheOp::Get(k) => observations.push(cache.get(&engine, RwMap::key(*k as usize))),
            CacheOp::Delete(k) => {
                cache.delete(&engine, RwMap::key(*k as usize));
            }
            CacheOp::Tick => cache.tick(&engine),
        }
    }
    observations.push(Some(cache.item_count(&engine)));
    observations
}

#[derive(Clone, Debug)]
enum SetOp {
    Add(u16),
    Remove(u16),
    Exists(u16),
    Len,
    Flatten,
    Clear,
}

fn random_set_op(rng: &mut SplitMix64) -> SetOp {
    // Weights mirror the old proptest strategy (5:2:3:1:1:1).
    match rng.below(13) {
        0..=4 => SetOp::Add(rng.below(512) as u16),
        5..=6 => SetOp::Remove(rng.below(512) as u16),
        7..=9 => SetOp::Exists(rng.below(512) as u16),
        10 => SetOp::Len,
        11 => SetOp::Flatten,
        _ => SetOp::Clear,
    }
}

fn run_set(mode: Mode, ops: &[SetOp]) -> Vec<u64> {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let set = Set::new(rt.htm(), 0);
    let engine = Engine::new(&rt, mode);
    let mut observations = Vec::new();
    for op in ops {
        match op {
            SetOp::Add(v) => observations.push(u64::from(set.add(&engine, u64::from(*v)))),
            SetOp::Remove(v) => observations.push(u64::from(set.remove(&engine, u64::from(*v)))),
            SetOp::Exists(v) => observations.push(u64::from(set.exists(&engine, u64::from(*v)))),
            SetOp::Len => observations.push(set.len(&engine)),
            SetOp::Flatten => {
                let mut flat = set.flatten(&engine);
                flat.sort_unstable();
                observations.push(flat.len() as u64);
                observations.extend(flat);
            }
            SetOp::Clear => set.clear(&engine),
        }
    }
    observations
}

#[test]
fn cache_modes_agree() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xCAC4E + case);
        let ops: Vec<CacheOp> = (0..rng.range(1, 60))
            .map(|_| random_cache_op(&mut rng))
            .collect();
        assert_eq!(
            run_cache(Mode::Lock, &ops),
            run_cache(Mode::Gocc, &ops),
            "case {case}"
        );
    }
}

#[test]
fn set_modes_agree() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x5E7 + case);
        let ops: Vec<SetOp> = (0..rng.range(1, 60))
            .map(|_| random_set_op(&mut rng))
            .collect();
        assert_eq!(
            run_set(Mode::Lock, &ops),
            run_set(Mode::Gocc, &ops),
            "case {case}"
        );
    }
}
