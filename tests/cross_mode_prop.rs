//! Property test: for random operation sequences, the GOCC-transformed
//! program and the pessimistic program are observationally equivalent —
//! the paper's §4.1 guarantee as an executable property.

use gocc_repro::optilock::GoccRuntime;
use gocc_repro::workloads::gocache::{Cache, RwMap};
use gocc_repro::workloads::set::Set;
use gocc_repro::workloads::{Engine, Mode};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum CacheOp {
    Set(u8, u16, u8),
    Get(u8),
    Delete(u8),
    Tick,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>(), 0u8..4).prop_map(|(k, v, ttl)| CacheOp::Set(k, v, ttl)),
        4 => any::<u8>().prop_map(CacheOp::Get),
        1 => any::<u8>().prop_map(CacheOp::Delete),
        1 => Just(CacheOp::Tick),
    ]
}

fn run_cache(mode: Mode, ops: &[CacheOp]) -> Vec<Option<u64>> {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let cache = Cache::new(rt.htm(), 4);
    let engine = Engine::new(&rt, mode);
    let mut observations = Vec::new();
    for op in ops {
        match op {
            CacheOp::Set(k, v, ttl) => {
                cache.set(
                    &engine,
                    RwMap::key(*k as usize),
                    u64::from(*v),
                    u64::from(*ttl),
                );
            }
            CacheOp::Get(k) => observations.push(cache.get(&engine, RwMap::key(*k as usize))),
            CacheOp::Delete(k) => cache.delete(&engine, RwMap::key(*k as usize)),
            CacheOp::Tick => cache.tick(&engine),
        }
    }
    observations.push(Some(cache.item_count(&engine)));
    observations
}

#[derive(Clone, Debug)]
enum SetOp {
    Add(u16),
    Remove(u16),
    Exists(u16),
    Len,
    Flatten,
    Clear,
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        5 => any::<u16>().prop_map(|v| SetOp::Add(v % 512)),
        2 => any::<u16>().prop_map(|v| SetOp::Remove(v % 512)),
        3 => any::<u16>().prop_map(|v| SetOp::Exists(v % 512)),
        1 => Just(SetOp::Len),
        1 => Just(SetOp::Flatten),
        1 => Just(SetOp::Clear),
    ]
}

fn run_set(mode: Mode, ops: &[SetOp]) -> Vec<u64> {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let set = Set::new(rt.htm(), 0);
    let engine = Engine::new(&rt, mode);
    let mut observations = Vec::new();
    for op in ops {
        match op {
            SetOp::Add(v) => observations.push(u64::from(set.add(&engine, u64::from(*v)))),
            SetOp::Remove(v) => observations.push(u64::from(set.remove(&engine, u64::from(*v)))),
            SetOp::Exists(v) => observations.push(u64::from(set.exists(&engine, u64::from(*v)))),
            SetOp::Len => observations.push(set.len(&engine)),
            SetOp::Flatten => {
                let mut flat = set.flatten(&engine);
                flat.sort_unstable();
                observations.push(flat.len() as u64);
                observations.extend(flat);
            }
            SetOp::Clear => set.clear(&engine),
        }
    }
    observations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_modes_agree(ops in proptest::collection::vec(cache_op(), 1..60)) {
        prop_assert_eq!(run_cache(Mode::Lock, &ops), run_cache(Mode::Gocc, &ops));
    }

    #[test]
    fn set_modes_agree(ops in proptest::collection::vec(set_op(), 1..60)) {
        prop_assert_eq!(run_set(Mode::Lock, &ops), run_set(Mode::Gocc, &ops));
    }
}
