//! Serializability stress: concurrent transactional transfers must
//! preserve the bank invariant (total balance constant), and read-only
//! audits must always observe a consistent snapshot — no zombies, no torn
//! reads, no lost updates.

use gocc_repro::htm::{Tx, TxVar};
use gocc_repro::optilock::{call_site, critical_mutex, ElidableMutex, GoccRuntime};

const ACCOUNTS: usize = 32;
const INITIAL: u64 = 1_000;

#[test]
fn transfers_preserve_total_balance() {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let bank = ElidableMutex::new();
    let accounts: Vec<TxVar<u64>> = (0..ACCOUNTS).map(|_| TxVar::new(INITIAL)).collect();
    let audits_ok = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        // Transfer threads.
        for t in 0..3usize {
            let (rt, bank, accounts) = (&rt, &bank, &accounts);
            s.spawn(move || {
                let site = call_site!();
                let mut x = (t as u64 + 1) * 0x9E37_79B9;
                for _ in 0..2_000 {
                    // Cheap xorshift for account selection.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x as usize) % ACCOUNTS;
                    let to = ((x >> 16) as usize) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    critical_mutex(rt, site, bank, |tx| {
                        let a = tx.read(&accounts[from])?;
                        if a == 0 {
                            return Ok(());
                        }
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - 1)?;
                        tx.write(&accounts[to], b + 1)?;
                        Ok(())
                    });
                }
            });
        }
        // Audit thread: read-only snapshots must always sum exactly.
        let (rt, bank, accounts, audits_ok) = (&rt, &bank, &accounts, &audits_ok);
        s.spawn(move || {
            let site = call_site!();
            for _ in 0..500 {
                let total = critical_mutex(rt, site, bank, |tx| {
                    let mut sum = 0u64;
                    for a in accounts.iter() {
                        sum += tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total,
                    (ACCOUNTS as u64) * INITIAL,
                    "audit observed an inconsistent snapshot"
                );
                audits_ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
    });

    // Final exact check.
    let mut tx = Tx::direct(rt.htm());
    let total: u64 = accounts.iter().map(|a| tx.read(a).unwrap()).sum();
    tx.commit().unwrap();
    assert_eq!(
        total,
        (ACCOUNTS as u64) * INITIAL,
        "money was created or destroyed"
    );
    assert_eq!(audits_ok.load(std::sync::atomic::Ordering::Relaxed), 500);

    let stats = rt.stats().snapshot();
    // Transfer loops skip `from == to` draws before entering a section, so
    // the exact count varies; every executed section completed exactly once
    // on one of the two paths, and at minimum the 500 audits ran.
    assert!(stats.fast_commits + stats.slow_sections >= 500);
    assert!(stats.fast_commits + stats.slow_sections <= 3 * 2_000 + 500);
}

#[test]
fn mixed_slow_and_fast_paths_preserve_invariant() {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let bank = ElidableMutex::new();
    let accounts: Vec<TxVar<u64>> = (0..8).map(|_| TxVar::new(INITIAL)).collect();

    std::thread::scope(|s| {
        // Elided movers.
        for _ in 0..2 {
            let (rt, bank, accounts) = (&rt, &bank, &accounts);
            s.spawn(move || {
                let site = call_site!();
                for i in 0..1_500usize {
                    critical_mutex(rt, site, bank, |tx| {
                        let from = i % 8;
                        let to = (i + 3) % 8;
                        let a = tx.read(&accounts[from])?;
                        if a == 0 {
                            return Ok(());
                        }
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - 1)?;
                        tx.write(&accounts[to], b + 1)?;
                        Ok(())
                    });
                }
            });
        }
        // A pessimistic interloper using the untransformed lock API.
        let (rt, bank, accounts) = (&rt, &bank, &accounts);
        s.spawn(move || {
            for i in 0..1_500usize {
                bank.lock_raw();
                let mut tx = Tx::direct(rt.htm());
                let from = (i + 1) % 8;
                let to = (i + 5) % 8;
                let a = tx.read(&accounts[from]).unwrap();
                if a > 0 {
                    let b = tx.read(&accounts[to]).unwrap();
                    tx.write(&accounts[from], a - 1).unwrap();
                    tx.write(&accounts[to], b + 1).unwrap();
                }
                tx.commit().unwrap();
                bank.unlock_raw();
            }
        });
    });

    let mut tx = Tx::direct(rt.htm());
    let total: u64 = accounts.iter().map(|a| tx.read(a).unwrap()).sum();
    tx.commit().unwrap();
    assert_eq!(
        total,
        8 * INITIAL,
        "slow/fast interop lost or duplicated money"
    );
}
