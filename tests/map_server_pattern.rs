//! `txds::map` under goccd's access pattern: many threads hammering one
//! `Cache` shard with the server's verb mix (GET/SET/DEL/INCR plus
//! periodic full-table SCANs), in both execution modes.
//!
//! Threads own disjoint key partitions, so the final store contents are a
//! deterministic function of the per-thread seeded op streams no matter
//! how the scheduler interleaves them — which lets us check the
//! concurrent outcome of each mode against a sequential `HashMap` oracle,
//! and the two modes against each other. SCANs walk the whole table
//! (every slot is in the read set) while writers mutate other partitions;
//! under GOCC that is exactly the capacity-abort/conflict shape the
//! server's SCAN verb produces.

use std::collections::HashMap;

use gocc_repro::optilock::GoccRuntime;
use gocc_repro::telemetry::SplitMix64;
use gocc_repro::workloads::gocache::{Cache, RwMap};
use gocc_repro::workloads::{Engine, Mode};

const THREADS: usize = 4;
const KEYS_PER_THREAD: usize = 64;
const OPS_PER_THREAD: usize = 400;
const SCAN_EVERY: usize = 32;

#[derive(Clone, Debug)]
enum Op {
    Get(usize),
    Set(usize, u64, u64),
    Del(usize),
    Incr(usize, u64),
    Scan,
}

/// The seeded op stream for one thread, over its own key partition.
fn thread_ops(t: usize, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let base = t * KEYS_PER_THREAD;
    (0..OPS_PER_THREAD)
        .map(|i| {
            let key = base + rng.below_usize(KEYS_PER_THREAD);
            if (i + 1) % SCAN_EVERY == 0 {
                return Op::Scan;
            }
            // Server-ish mix: half reads, writes split between blind
            // stores, deletes, and read-modify-write increments.
            match rng.below(10) {
                0..=4 => Op::Get(key),
                5..=7 => Op::Set(key, rng.next_u64(), rng.below(4)),
                8 => Op::Del(key),
                _ => Op::Incr(key, rng.below(100)),
            }
        })
        .collect()
}

/// Runs all threads' streams concurrently against one shared cache and
/// returns its final contents.
fn run_concurrent(mode: Mode, streams: &[Vec<Op>]) -> HashMap<u64, u64> {
    gocc_repro::gosync::set_procs(8);
    let rt = GoccRuntime::new_default();
    let cache = Cache::with_capacity(2 * THREADS * KEYS_PER_THREAD);
    let engine = Engine::new(&rt, mode);
    std::thread::scope(|s| {
        for ops in streams {
            let (engine, cache) = (&engine, &cache);
            s.spawn(move || {
                for op in ops {
                    match *op {
                        Op::Get(k) => {
                            cache.get(engine, RwMap::key(k));
                        }
                        Op::Set(k, v, ttl) => cache.set(engine, RwMap::key(k), v, ttl),
                        Op::Del(k) => {
                            cache.delete(engine, RwMap::key(k));
                        }
                        Op::Incr(k, d) => {
                            cache.incr(engine, RwMap::key(k), d);
                        }
                        Op::Scan => {
                            // Whole-table read set racing other threads'
                            // writes; the result is interleaving-dependent
                            // so only its bound is checkable.
                            let dump = cache.scan(engine, usize::MAX);
                            assert!(dump.len() <= THREADS * KEYS_PER_THREAD);
                        }
                    }
                }
            });
        }
    });
    cache.scan(&engine, usize::MAX).into_iter().collect()
}

/// Replays the same streams sequentially into a plain `HashMap`. Partition
/// disjointness makes stream order irrelevant to the final state.
fn oracle(streams: &[Vec<Op>]) -> HashMap<u64, u64> {
    let mut map = HashMap::new();
    for ops in streams {
        for op in ops {
            match *op {
                Op::Get(_) | Op::Scan => {}
                Op::Set(k, v, _ttl) => {
                    // No clock ticks are issued, so TTL entries never
                    // expire and the oracle can ignore expirations.
                    map.insert(RwMap::key(k), v);
                }
                Op::Del(k) => {
                    map.remove(&RwMap::key(k));
                }
                Op::Incr(k, d) => {
                    let e = map.entry(RwMap::key(k)).or_insert(0);
                    *e = e.wrapping_add(d);
                }
            }
        }
    }
    map
}

#[test]
fn server_verb_mix_converges_to_the_oracle_in_both_modes() {
    for seed in [0xD15C0_u64, 0xBEEF, 7] {
        let streams: Vec<Vec<Op>> = (0..THREADS).map(|t| thread_ops(t, seed)).collect();
        let expected = oracle(&streams);
        for mode in [Mode::Lock, Mode::Gocc] {
            let got = run_concurrent(mode, &streams);
            assert_eq!(got, expected, "seed {seed:#x} mode {mode:?}");
        }
    }
}
