//! Cross-crate integration: the full GOCC pipeline, source to patch.

use gocc_repro::gocc::{analyze_package, transform_file, unified_diff, AnalysisOptions, Package};
use gocc_repro::golite::parser::parse_file;
use gocc_repro::golite::printer::print_file;
use gocc_repro::profile::Profile;

const SAMPLE: &str = r#"
package sample

import "sync"

type Store struct {
	mu    sync.RWMutex
	data  map[string]int
	count int
}

func (s *Store) Get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[k]
	return v, ok
}

func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	s.data[k] = v
	s.count++
	s.mu.Unlock()
}

func (s *Store) Dump() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.data {
		fmt.Println(k, v)
	}
}

func (s *Store) Size() int {
	s.mu.RLock()
	n := s.count
	s.mu.RUnlock()
	return n
}
"#;

#[test]
fn analyze_transform_patch_roundtrip() {
    let mut pkg = Package::from_source(SAMPLE).unwrap();
    let report = analyze_package(&mut pkg, &AnalysisOptions::default());

    // Get, Put, Size transform; Dump is IO-unfit.
    assert_eq!(report.funnel.transformed, 3, "funnel: {:?}", report.funnel);
    assert_eq!(report.funnel.unfit_intra, 1);

    let transformed = transform_file(&pkg.files[0], &pkg.info, 0, &report.plans);
    let patched = print_file(&transformed);

    // The patch parses as valid source again (idempotent frontend).
    let reparsed = parse_file(&patched).expect("transformed output must reparse");
    assert_eq!(reparsed.funcs().count(), 4);

    // Structure checks on the output program.
    assert!(patched.contains("optiLock1 := optilib.OptiLock{}"));
    assert!(
        patched.contains("defer optiLock1.FastRUnlock(&s.mu)"),
        "{patched}"
    );
    assert!(patched.contains("optiLock1.FastRLock(&s.mu)"));
    assert!(patched.contains("\"optilib\""), "import must be added");
    // Dump unchanged.
    assert!(
        patched.contains("s.mu.RLock()"),
        "the unfit section keeps its lock"
    );

    let diff = unified_diff(
        "sample.go",
        "sample.go.gocc",
        &print_file(&pkg.files[0]),
        &patched,
    );
    assert!(diff.contains("+++ sample.go.gocc"));
    assert!(diff.matches("FastLock").count() >= 1);
}

#[test]
fn profile_filter_reduces_patch_size() {
    let hot_only = Profile::parse(
        "total 1000000\nfunc Store.Get 100 500000\nfunc Store.Put 10 500\nfunc Store.Size 10 400\n",
    )
    .unwrap();
    let mut pkg = Package::from_source(SAMPLE).unwrap();
    let report = analyze_package(
        &mut pkg,
        &AnalysisOptions {
            profile: Some(hot_only),
            hot_threshold: None,
        },
    );
    assert_eq!(report.funnel.transformed, 3);
    assert_eq!(report.funnel.transformed_hot, 1, "only Get is hot");
    let hot_plans: Vec<_> = report.plans.iter().filter(|p| p.hot).cloned().collect();
    let transformed = transform_file(&pkg.files[0], &pkg.info, 0, &hot_plans);
    let patched = print_file(&transformed);
    assert!(patched.contains("FastRLock"), "hot Get is rewritten");
    assert!(patched.contains("s.mu.Lock()"), "cold Put keeps its lock");
}

#[test]
fn multi_file_package_analysis() {
    let types_go = "package p\n\nimport \"sync\"\n\ntype T struct {\n\tmu sync.Mutex\n\tv int\n}\n";
    let ops_go = "package p\n\nfunc (t *T) Inc() {\n\tt.mu.Lock()\n\tt.v++\n\tt.mu.Unlock()\n}\n";
    let mut pkg = Package::load(&[("types.go", types_go), ("ops.go", ops_go)]).unwrap();
    let report = analyze_package(&mut pkg, &AnalysisOptions::default());
    assert_eq!(report.funnel.transformed, 1);
    assert_eq!(report.plans[0].file_idx, 1, "the pair lives in ops.go");
    // Transforming types.go is a no-op; ops.go gets the rewrite.
    let t0 = transform_file(&pkg.files[0], &pkg.info, 0, &report.plans);
    assert_eq!(print_file(&t0), print_file(&pkg.files[0]));
    let t1 = transform_file(&pkg.files[1], &pkg.info, 1, &report.plans);
    assert!(print_file(&t1).contains("FastLock"));
}

#[test]
fn corpus_packages_analyze_cleanly() {
    for name in ["tally", "zap", "gocache", "fastcache", "set"] {
        let path = format!("corpus/{name}/{name}.go");
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let mut pkg = Package::from_source(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = analyze_package(&mut pkg, &AnalysisOptions::default());
        assert!(report.funnel.lock_points > 0, "{name} must contain locks");
        assert!(
            report.funnel.transformed > 0,
            "{name} must have transformable pairs"
        );
        // The transformed corpus file must still parse.
        let out = transform_file(&pkg.files[0], &pkg.info, 0, &report.plans);
        let printed = print_file(&out);
        parse_file(&printed).unwrap_or_else(|e| panic!("{name} output reparse: {e}\n{printed}"));
    }
}
