//! Cross-crate integration: the transformed program is observationally
//! equivalent to the pessimistic one (the paper's core guarantee, §4.1).

use gocc_repro::htm::Tx;
use gocc_repro::optilock::GoccRuntime;
use gocc_repro::telemetry::SplitMix64;
use gocc_repro::workloads::fastcache::FastCache;
use gocc_repro::workloads::gocache::{Cache, RwMap};
use gocc_repro::workloads::set::Set;
use gocc_repro::workloads::tally::Scope;
use gocc_repro::workloads::{Engine, Mode};

fn procs8() {
    gocc_repro::gosync::set_procs(8);
}

/// Runs the same seeded op mix in both modes and compares final state.
#[test]
fn gocache_final_state_matches_across_modes() {
    procs8();
    const KEYS: usize = 64;
    let final_state = |mode: Mode| -> Vec<Option<u64>> {
        let rt = GoccRuntime::new_default();
        let map = RwMap::new(rt.htm(), KEYS);
        let engine = Engine::new(&rt, mode);
        // Deterministic per-thread op streams; disjoint key ranges per
        // thread make the final state independent of interleaving.
        std::thread::scope(|s| {
            for t in 0..4usize {
                let (engine, map) = (&engine, &map);
                s.spawn(move || {
                    let mut rng = SplitMix64::new(42 + t as u64);
                    let lo = t * (KEYS / 4);
                    let hi = lo + KEYS / 4;
                    for _ in 0..500 {
                        let k = rng.range(lo as u64, hi as u64) as usize;
                        if rng.chance(0.3) {
                            map.set(engine, RwMap::key(k), rng.below(1000));
                        } else {
                            let _ = map.get(engine, RwMap::key(k));
                        }
                    }
                    // Deterministic tail write so the final value is fixed.
                    for k in lo..hi {
                        map.set(engine, RwMap::key(k), (k * 7) as u64);
                    }
                });
            }
        });
        (0..KEYS).map(|k| map.get(&engine, RwMap::key(k))).collect()
    };
    assert_eq!(final_state(Mode::Lock), final_state(Mode::Gocc));
}

#[test]
fn set_invariants_hold_under_mixed_concurrency() {
    procs8();
    let rt = GoccRuntime::new_default();
    let set = Set::new(rt.htm(), 0);
    let engine = Engine::new(&rt, Mode::Gocc);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let (engine, set) = (&engine, &set);
            s.spawn(move || {
                for i in 0..200 {
                    let item = t * 10_000 + i;
                    set.add(engine, item);
                    assert!(set.exists(engine, item), "immediately visible after add");
                    let _ = set.len(engine);
                    if i % 10 == 9 {
                        let flat = set.flatten(engine);
                        assert!(flat.len() as u64 <= 4 * 200, "flatten never over-reports");
                    }
                }
            });
        }
    });
    assert_eq!(set.len(&engine), 800);
    let mut flat = set.flatten(&engine);
    flat.sort_unstable();
    flat.dedup();
    assert_eq!(flat.len(), 800, "no duplicates, no losses");
}

#[test]
fn fastcache_stats_are_exact_despite_elision() {
    procs8();
    let rt = GoccRuntime::new_default();
    let cache = FastCache::new(512);
    cache.preload(rt.htm(), 32, b"seed");
    let engine = Engine::new(&rt, Mode::Gocc);
    const GETS_PER_THREAD: u64 = 300;
    std::thread::scope(|s| {
        for t in 0..3usize {
            let (engine, cache) = (&engine, &cache);
            s.spawn(move || {
                for i in 0..GETS_PER_THREAD {
                    // Half hits, half misses.
                    let k = if i % 2 == 0 {
                        (t as u64 + i) % 32
                    } else {
                        1000 + i
                    };
                    let _ = cache.get(engine, FastCache::key(k as usize));
                }
            });
        }
    });
    let (gets, _sets, misses) = cache.stats(&engine);
    assert_eq!(
        gets,
        3 * GETS_PER_THREAD,
        "the shared get counter must be exact"
    );
    assert_eq!(misses, 3 * GETS_PER_THREAD / 2, "half of the gets miss");
}

#[test]
fn tally_registry_is_exact_under_allocation_storm() {
    procs8();
    let rt = GoccRuntime::new_default();
    let scope = Scope::new(rt.htm(), 0);
    let engine = Engine::new(&rt, Mode::Gocc);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let (engine, scope) = (&engine, &scope);
            s.spawn(move || {
                for i in 0..100 {
                    // Unique names per thread: every allocation is fresh.
                    let _ = scope.counter_allocation(engine, Scope::name_hash(t * 1000 + i));
                }
            });
        }
    });
    // Every name resolves to a stable slot afterwards.
    for t in 0..4usize {
        for i in 0..100 {
            let a = scope.counter_allocation(&engine, Scope::name_hash(t * 1000 + i));
            let b = scope.counter_allocation(&engine, Scope::name_hash(t * 1000 + i));
            assert_eq!(a, b);
        }
    }
}

#[test]
fn expiring_cache_equivalence() {
    procs8();
    for mode in [Mode::Lock, Mode::Gocc] {
        let rt = GoccRuntime::new_default();
        let cache = Cache::new(rt.htm(), 8);
        let engine = Engine::new(&rt, mode);
        cache.set(&engine, RwMap::key(100), 1, 1);
        cache.set(&engine, RwMap::key(101), 2, 0);
        cache.tick(&engine);
        cache.tick(&engine);
        assert_eq!(cache.get(&engine, RwMap::key(100)), None, "mode {mode:?}");
        assert_eq!(
            cache.get(&engine, RwMap::key(101)),
            Some(2),
            "mode {mode:?}"
        );
    }
}

#[test]
fn global_runtime_stats_accumulate() {
    procs8();
    let rt = GoccRuntime::new_default();
    let engine = Engine::new(&rt, Mode::Gocc);
    let m = gocc_repro::optilock::ElidableMutex::new();
    let v = gocc_repro::txds::TxCounter::new(0);
    for _ in 0..10 {
        engine.section(
            gocc_repro::optilock::call_site!(),
            gocc_repro::optilock::LockRef::Mutex(&m),
            |tx| v.add(tx, 1),
        );
    }
    let mut tx = Tx::direct(rt.htm());
    assert_eq!(v.get(&mut tx).unwrap(), 10);
    tx.commit().unwrap();
    let s = rt.stats().snapshot();
    assert_eq!(s.fast_commits + s.slow_sections, 10);
}
