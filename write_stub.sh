#!/bin/sh
# restore stubs for any crate missing lib.rs so the workspace always parses
for c in gosync optilock txds golite flowgraph pointsto profile gocc workloads bench; do
  [ -f "crates/$c/src/lib.rs" ] || echo '//! Placeholder module; implemented later in this build.' > "crates/$c/src/lib.rs"
done
